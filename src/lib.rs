//! Umbrella crate for the NVTraverse reproduction: re-exports every
//! sub-crate so integration tests and examples have a single dependency.

pub use nvtraverse as core;
pub use nvtraverse_ebr as ebr;
pub use nvtraverse_obs as obs;
pub use nvtraverse_onefile as onefile;
pub use nvtraverse_pmem as pmem;
pub use nvtraverse_server as server;
pub use nvtraverse_structures as structures;
