//! SIGKILL the KV *server* mid-load, restart it, and hold it to its acks:
//! every reply a client received before the kill must name durable state,
//! and every operation a client logged must be answerable by id through
//! the wire `OP_OUTCOME` protocol after the restart.
//!
//! The server runs as a child process (re-exec of this test binary, same
//! trick as `tests/crash_process.rs`); the clients are threads in the
//! parent, each keeping a write-ahead intent/ack log (`fsync`ed line by
//! line) of its detectable operations:
//!
//! * `i <k> <shard> <predicted-opid|->` — a detectable insert is about to
//!   be sent. The predicted id is `(slot, last acked seq + 1)` for the
//!   key's shard — computable because the client learned the shard's slot
//!   from its first ack and shard routing (`shard_route`) is a stable
//!   function of the key.
//! * `I <k> <shard> <opid>` — the insert's reply arrived (applied).
//! * `r`/`R` — same pair for detectable removes.
//! * `B <k>` — a *plain* insert acked inside a BATCH frame: group commit
//!   promises the batch fence ran before this ack escaped, so the key
//!   must survive the kill exactly like a detectable ack.
//!
//! After each kill the parent restarts the server (`open_or_create` ⇒
//! full per-shard recovery + op-table classification) and asserts, for
//! the union of all rounds so far:
//!
//! * acked insert, no remove intent ⇒ key present with its value;
//! * acked remove ⇒ key absent;
//! * remove intent without ack ⇒ either outcome (in flight at the kill);
//! * every logged OpId — acked or predicted-in-flight — answers
//!   something other than `Unknown` via `OP_OUTCOME`, and acked ops never
//!   answer `NotApplied`.
//!
//! Three consecutive rounds (the ISSUE 9 acceptance bar), same store
//! directory throughout, so each restart also re-recovers the previous
//! rounds' state.

use nvtraverse_server::{Client, OutcomeAnswer, Request};
use nvtraverse_structures::sharded::shard_route;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const CLIENTS: usize = 2;
const ROUNDS: u64 = 3;
/// Acks (of any kind) each client must bank before the round's kill.
const MIN_ACKS_PER_CLIENT: usize = 120;

fn base_paths() -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir();
    let dir = base.join(format!("nvt-crash-srv-{}", std::process::id()));
    let sock = base.join(format!("nvt-crash-srv-{}.sock", std::process::id()));
    (dir, sock)
}

// ---- server child ----------------------------------------------------------

/// Child-process entry point (no-op in a normal test run): opens or
/// creates the store — open *is* recovery — serves it on the UDS from the
/// environment, and parks until the parent SIGKILLs it.
#[test]
fn child_entry() {
    let Ok(kind) = std::env::var("NVT_SRV_CHILD") else {
        return;
    };
    assert_eq!(kind, "server", "unknown NVT_SRV_CHILD kind {kind:?}");
    let dir = std::env::var("NVT_SRV_DIR").unwrap();
    let sock = std::env::var("NVT_SRV_SOCK").unwrap();
    let store = nvtraverse_server::KvStore::open_or_create(
        &dir,
        nvtraverse_server::PolicyKind::NvTraverse,
        SHARDS,
        8 << 20,
    )
    .unwrap();
    let server =
        nvtraverse_server::Server::start_uds(&sock, store, Default::default()).unwrap();
    // Parked until the wire SHUTDOWN between rounds; the mid-round exit is
    // the parent's SIGKILL, which never reaches the graceful path below.
    server.wait_for_shutdown_request();
    server.shutdown().unwrap();
    std::process::exit(0);
}

fn spawn_server(dir: &Path, sock: &Path) -> std::process::Child {
    let exe = std::env::current_exe().unwrap();
    std::process::Command::new(exe)
        .args(["--exact", "child_entry", "--test-threads=1", "--nocapture"])
        .env("NVT_SRV_CHILD", "server")
        .env("NVT_SRV_DIR", dir)
        .env("NVT_SRV_SOCK", sock)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap()
}

fn await_server(sock: &Path, child: &mut std::process::Child) -> Client {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut c) = Client::connect_uds(sock) {
            // The socket file may predate the accept loops; prove liveness.
            if c.get(u64::MAX).is_ok() {
                return c;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("server child exited instead of serving: {status:?}");
        }
        assert!(Instant::now() < deadline, "server never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---- client workload -------------------------------------------------------

/// Runs detectable inserts/removes (plus periodic plain-insert BATCH
/// frames) against `sock`, fsync-logging intent before and ack after each
/// op, until the server dies (any transport error ends the run).
fn client_worker(sock: &Path, log_path: &Path, round: u64, tid: u64) {
    let Ok(mut c) = Client::connect_uds(sock) else {
        return;
    };
    let mut log = std::fs::OpenOptions::new().create(true).append(true).open(log_path).unwrap();
    let mut record = |line: String| {
        writeln!(log, "{line}").unwrap();
        log.sync_data().unwrap();
    };
    // Per-shard (slot, last acked seq), learned from acks: the next op on
    // that shard must arm as seq + 1.
    let mut slots: [Option<(u16, u64)>; SHARDS] = [None; SHARDS];
    let predict = |slots: &[Option<(u16, u64)>; SHARDS], shard: usize| -> String {
        match slots[shard] {
            Some((slot, seq)) => nvtraverse::OpId::new(slot, seq + 1).to_bits().to_string(),
            None => "-".to_string(),
        }
    };
    let learn = |slots: &mut [Option<(u16, u64)>; SHARDS], shard: usize, bits: u64| {
        let id = nvtraverse::OpId::from_bits(bits);
        slots[shard] = Some((id.slot(), id.seq()));
    };

    let mut i: u64 = 0;
    loop {
        let k = (round << 40) | (tid << 32) | i;
        let shard = shard_route(k, SHARDS);
        record(format!("i {k} {shard} {}", predict(&slots, shard)));
        let Ok(ack) = c.insert_detectable(k, k.wrapping_mul(7)) else {
            return; // server died mid-op: the intent line is the evidence
        };
        assert!(ack.applied, "keys are unique; every insert is fresh");
        assert_eq!(ack.shard as usize, shard, "client-side routing must agree");
        learn(&mut slots, shard, ack.op_id);
        record(format!("I {k} {shard} {}", ack.op_id));

        if i % 3 == 2 {
            let victim = (round << 40) | (tid << 32) | (i - 2);
            let vshard = shard_route(victim, SHARDS);
            record(format!("r {victim} {vshard} {}", predict(&slots, vshard)));
            let Ok(ack) = c.remove_detectable(victim) else {
                return;
            };
            assert!(ack.applied, "victims were acked-inserted and are only removed once");
            learn(&mut slots, vshard, ack.op_id);
            record(format!("R {victim} {vshard} {}", ack.op_id));
        }

        if i % 4 == 3 {
            // Group-commit check: plain inserts acked through a BATCH frame.
            let b0 = (round << 40) | (tid << 32) | (1 << 24) | i;
            let ops = [Request::Insert(b0, b0.wrapping_mul(7)), Request::Insert(b0 + 1, (b0 + 1).wrapping_mul(7))];
            let Ok(replies) = c.batch(&ops) else {
                return;
            };
            for (j, r) in replies.iter().enumerate() {
                assert_eq!(*r, nvtraverse_server::Reply::Applied);
                record(format!("B {}", b0 + j as u64));
            }
        }
        i += 1;
    }
}

// ---- the oracle ------------------------------------------------------------

#[derive(Default, Debug, Clone, Copy)]
struct KeyLog {
    acked_insert: bool,
    intent_remove: bool,
    acked_remove: bool,
    batch_acked: bool,
}

/// One logged OpId with the shard it lives in and whether a reply for it
/// was received before the kill.
#[derive(Debug, Clone, Copy)]
struct LoggedOp {
    shard: u32,
    bits: u64,
    acked: bool,
}

fn parse_log(path: &Path, keys: &mut BTreeMap<u64, KeyLog>, ops: &mut Vec<LoggedOp>) {
    let data = std::fs::read_to_string(path).unwrap_or_default();
    let mut acked_bits: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut predicted: Vec<(u32, u64)> = Vec::new();
    for line in data.lines() {
        // The last line can be torn by the kill; `sync_data` returns before
        // the operation runs, so a torn intent means the op never started.
        let mut p = line.split_whitespace();
        let (Some(tag), Some(k)) = (p.next(), p.next()) else { continue };
        let Ok(k) = k.parse::<u64>() else { continue };
        let e = keys.entry(k).or_default();
        match tag {
            "B" => e.batch_acked = true,
            "i" | "r" => {
                if tag == "r" {
                    e.intent_remove = true;
                }
                let (Some(shard), Some(bits)) = (p.next(), p.next()) else { continue };
                let Ok(shard) = shard.parse::<u32>() else { continue };
                if let Ok(bits) = bits.parse::<u64>() {
                    predicted.push((shard, bits));
                }
            }
            "I" | "R" => {
                if tag == "I" {
                    e.acked_insert = true;
                } else {
                    e.acked_remove = true;
                }
                let (Some(shard), Some(bits)) = (p.next(), p.next()) else { continue };
                let (Ok(shard), Ok(bits)) = (shard.parse::<u32>(), bits.parse::<u64>()) else {
                    continue;
                };
                acked_bits.insert(bits);
                ops.push(LoggedOp { shard, bits, acked: true });
            }
            _ => {}
        }
    }
    // Predicted ids that never acked were in flight at the kill.
    ops.extend(
        predicted
            .into_iter()
            .filter(|(_, bits)| !acked_bits.contains(bits))
            .map(|(shard, bits)| LoggedOp { shard, bits, acked: false }),
    );
}

fn verify(c: &mut Client, keys: &BTreeMap<u64, KeyLog>, ops: &[LoggedOp]) {
    for (&k, e) in keys {
        let got = c.get(k).unwrap();
        let want = k.wrapping_mul(7);
        if e.acked_remove {
            assert_eq!(got, None, "acked remove of {k} lost");
        } else if e.intent_remove {
            // In-flight remove: either outcome, but never a foreign value.
            assert!(got.is_none() || got == Some(want), "key {k}: {got:?}");
        } else if e.acked_insert || e.batch_acked {
            assert_eq!(got, Some(want), "acked insert of {k} lost");
        }
    }
    for op in ops {
        let answer = c.op_outcome(op.shard, op.bits).unwrap();
        assert_ne!(
            answer,
            OutcomeAnswer::Unknown,
            "logged op {:#x} on shard {} unanswerable",
            op.bits,
            op.shard
        );
        if op.acked {
            assert_ne!(
                answer,
                OutcomeAnswer::NotApplied,
                "acked op {:#x} on shard {} classified as never-applied",
                op.bits,
                op.shard
            );
        }
    }
}

// ---- the rounds ------------------------------------------------------------

#[test]
fn three_sigkill_restart_rounds_lose_no_acked_ops() {
    let (dir, sock) = base_paths();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sock);

    // Keyed state accumulates across rounds: every restart must
    // re-recover all previous rounds' survivors too.
    let mut keys: BTreeMap<u64, KeyLog> = BTreeMap::new();

    for round in 0..ROUNDS {
        let mut server = spawn_server(&dir, &sock);
        drop(await_server(&sock, &mut server));

        let log_paths: Vec<PathBuf> = (0..CLIENTS as u64)
            .map(|t| std::env::temp_dir().join(format!(
                "nvt-crash-srv-{}-r{round}-t{t}.log",
                std::process::id()
            )))
            .collect();
        for p in &log_paths {
            let _ = std::fs::remove_file(p);
        }

        std::thread::scope(|s| {
            let workers: Vec<_> = log_paths
                .iter()
                .enumerate()
                .map(|(t, log)| {
                    let sock = &sock;
                    s.spawn(move || client_worker(sock, log, round, t as u64))
                })
                .collect();

            // Kill once every client banked enough acks.
            let deadline = Instant::now() + Duration::from_secs(120);
            loop {
                let done = log_paths.iter().all(|p| {
                    std::fs::read_to_string(p)
                        .unwrap_or_default()
                        .lines()
                        .filter(|l| l.starts_with(|c: char| c.is_ascii_uppercase()))
                        .count()
                        >= MIN_ACKS_PER_CLIENT
                });
                if done {
                    break;
                }
                assert!(Instant::now() < deadline, "clients never reached the ack quota");
                std::thread::sleep(Duration::from_millis(10));
            }
            server.kill().unwrap(); // SIGKILL on unix: no drain, no store close
            server.wait().unwrap();
            for w in workers {
                w.join().unwrap();
            }
        });

        // This round's ops; keys fold into the cumulative map.
        let mut ops = Vec::new();
        for p in &log_paths {
            parse_log(p, &mut keys, &mut ops);
        }
        assert!(
            ops.iter().filter(|o| o.acked).count() >= CLIENTS * MIN_ACKS_PER_CLIENT / 2,
            "round {round} banked too few detectable acks to mean anything"
        );

        // Restart: open_or_create runs every shard's recovery and op-table
        // classification; then the acks are held to account over the wire.
        let mut server = spawn_server(&dir, &sock);
        let mut c = await_server(&sock, &mut server);
        verify(&mut c, &keys, &ops);

        // Clean stop between rounds (next round re-spawns).
        c.shutdown_server().unwrap();
        drop(c);
        let status = server.wait().unwrap();
        assert!(status.success(), "server child failed its graceful shutdown: {status:?}");

        for p in &log_paths {
            let _ = std::fs::remove_file(p);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sock);
}
