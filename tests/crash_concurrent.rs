//! Concurrent crash tests: several threads mutate disjoint key ranges while
//! a crash is triggered at a random moment; after rollback and recovery,
//! every thread's completed operations must have survived and each in-flight
//! operation must be atomic (all-or-nothing) — durable linearizability under
//! real concurrency, not just sequential replay.

use nvtraverse::model::{key_verdict, MutOp};
use nvtraverse::policy::NvTraverse;
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_pmem::Sim;
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::skiplist::SkipList;

const THREADS: u64 = 3;
const KEYS_PER_THREAD: u64 = 16;
const ROUNDS: usize = 6;

/// Per-thread log: completed mutating ops (in program order) plus the op in
/// flight when the crash hit.
struct ThreadLog {
    completed: Vec<MutOp>,
    in_flight: Option<MutOp>,
}

#[allow(unused_assignments)] // `in_flight` is read after the crash unwind
fn worker<S: DurableSet<u64, u64>>(s: &S, sim: SimHandle, tid: u64, seed: u64) -> ThreadLog {
    use rand::prelude::*;
    let _g = sim.enter();
    let mut rng = SmallRng::seed_from_u64(seed ^ tid.wrapping_mul(0xABCD));
    let base = tid * KEYS_PER_THREAD;
    let mut completed = Vec::new();
    let mut in_flight: Option<MutOp> = None;
    let _ = run_crashable(|| loop {
        let k = base + rng.random_range(0..KEYS_PER_THREAD);
        match rng.random_range(0..3u32) {
            0 => {
                in_flight = Some(MutOp::Insert {
                    key: k,
                    succeeded: false,
                });
                let ok = s.insert(k, k + 1000);
                completed.push(MutOp::Insert {
                    key: k,
                    succeeded: ok,
                });
            }
            1 => {
                in_flight = Some(MutOp::Remove {
                    key: k,
                    succeeded: false,
                });
                let ok = s.remove(k);
                completed.push(MutOp::Remove {
                    key: k,
                    succeeded: ok,
                });
            }
            _ => {
                in_flight = None;
                s.get(k);
            }
        }
        in_flight = None;
    });
    ThreadLog {
        completed,
        in_flight,
    }
}

fn concurrent_crash_round<S, F, C>(factory: F, check: C, round: usize)
where
    S: DurableSet<u64, u64>,
    F: FnOnce() -> S,
    C: FnOnce(&S) -> Result<usize, String>,
{
    install_quiet_panic_hook();
    let sim = SimHandle::new();

    // Build + prefill even keys inside a context, then release it.
    let g = sim.enter();
    let s = factory();
    for t in 0..THREADS {
        for k in (t * KEYS_PER_THREAD..(t + 1) * KEYS_PER_THREAD).step_by(2) {
            s.insert(k, k);
        }
    }
    drop(g);

    let logs: Vec<ThreadLog> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let s = &s;
            let sim = sim.clone();
            handles.push(scope.spawn(move || worker(s, sim, t, round as u64 * 7919)));
        }
        // Let them run briefly, then pull the plug.
        std::thread::sleep(std::time::Duration::from_millis(8 + (round as u64 % 3) * 7));
        sim.trigger_crash();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Post-crash: rollback, recover, validate.
    let g = sim.enter();
    let report = unsafe { sim.crash_and_rollback() };
    let _ = report;
    s.recover();
    check(&s).unwrap_or_else(|e| panic!("invariants broken after concurrent crash: {e}"));

    for (t, log) in logs.iter().enumerate() {
        let base = t as u64 * KEYS_PER_THREAD;
        for k in base..base + KEYS_PER_THREAD {
            let history: Vec<MutOp> = log
                .completed
                .iter()
                .copied()
                .filter(|op| op.key() == k)
                .collect();
            let fl = log.in_flight.filter(|op| op.key() == k);
            let initially = k % 2 == 0;
            let verdict = key_verdict(initially, &history, fl);
            let present = s.contains(k);
            assert!(
                verdict.allows(present),
                "thread {t} key {k}: present={present} but verdict={verdict:?} \
                 (history={history:?}, in_flight={fl:?})"
            );
        }
    }
    drop(s);
    drop(g);
}

#[test]
fn list_survives_concurrent_crashes() {
    for round in 0..ROUNDS {
        concurrent_crash_round(
            || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            |l| l.check_consistency(false),
            round,
        );
    }
}

#[test]
fn hash_survives_concurrent_crashes() {
    for round in 0..ROUNDS {
        concurrent_crash_round(
            || HashMapDs::<u64, u64, NvTraverse<Sim>>::with_collector(4, Collector::leaking()),
            |m| m.check_consistency(false),
            round,
        );
    }
}

#[test]
fn ellen_bst_survives_concurrent_crashes() {
    for round in 0..ROUNDS {
        concurrent_crash_round(
            || EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            |t| t.check_consistency(true),
            round,
        );
    }
}

#[test]
fn nm_bst_survives_concurrent_crashes() {
    for round in 0..ROUNDS {
        concurrent_crash_round(
            || NmBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            |t| t.check_consistency(true),
            round,
        );
    }
}

#[test]
fn skiplist_survives_concurrent_crashes() {
    for round in 0..ROUNDS {
        concurrent_crash_round(
            || SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            |s| s.check_consistency(false),
            round,
        );
    }
}
