//! Shared crash-test harness.
#![allow(dead_code)] // each test binary uses a different subset

//!
//! Implements the validation strategy described in DESIGN.md: run a
//! deterministic workload against a structure on the simulated NVRAM, crash
//! it at an injected step, roll back to persisted state, run the structure's
//! recovery, and check **durable linearizability** key by key
//! (`nvtraverse::model::key_verdict`), plus structural invariants, plus
//! post-recovery usability.

use nvtraverse::model::{key_verdict, MutOp};
use nvtraverse::DurableSet;
use nvtraverse_pmem::sim::{run_crashable, SimHandle};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// A deterministic workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `insert(key, value)`.
    Insert(u64, u64),
    /// `remove(key)`.
    Remove(u64),
    /// `get(key)`.
    Get(u64),
}

impl Step {
    pub fn key(&self) -> u64 {
        match *self {
            Step::Insert(k, _) | Step::Remove(k) | Step::Get(k) => k,
        }
    }
}

/// Outcome counters, so callers can sanity-check coverage.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrashStats {
    pub crash_points: usize,
    pub crashed_runs: usize,
    pub poisoned_cells_total: usize,
}

/// Runs `workload` to completion once to learn the step span, then replays
/// it with a crash injected at every selected step (exhaustively when the
/// span is small, evenly sampled otherwise), validating after each crash.
///
/// `factory` must build the structure with a `Sim`-backed policy. A
/// leaking collector gives the purest sweep (no block reuse between crash
/// points); a reclaiming collector additionally stresses the
/// free/rollback interactions (the structure must fence tombstones before
/// blocks reach the allocator). `check` is the structure's own invariant
/// checker (e.g. `check_consistency(false)` after recovery).
///
/// # Panics
///
/// Panics (failing the test) on any durable-linearizability violation,
/// invariant violation, or poison read.
pub fn exhaustive_crash_test<S, F, C>(
    factory: F,
    prefill: &[(u64, u64)],
    workload: &[Step],
    max_points: usize,
    check: C,
) -> CrashStats
where
    S: DurableSet<u64, u64>,
    F: Fn() -> S,
    C: Fn(&S) -> Result<usize, String>,
{
    // Pass 1: learn the deterministic step span of prefill and workload.
    let (steps_before, steps_total) = {
        let sim = SimHandle::new();
        let guard = sim.enter();
        let s = factory();
        for &(k, v) in prefill {
            s.insert(k, v);
        }
        let before = sim.steps();
        for op in workload {
            match *op {
                Step::Insert(k, v) => {
                    s.insert(k, v);
                }
                Step::Remove(k) => {
                    s.remove(k);
                }
                Step::Get(k) => {
                    s.get(k);
                }
            }
        }
        let total = sim.steps();
        drop(s);
        drop(guard);
        (before, total)
    };
    assert!(steps_total > steps_before, "workload performed no sim steps");

    let span = steps_total - steps_before;
    let points: Vec<u64> = if span as usize <= max_points {
        (steps_before + 1..=steps_total + 1).collect()
    } else {
        let stride = span as f64 / max_points as f64;
        (0..max_points)
            .map(|i| steps_before + 1 + (i as f64 * stride) as u64)
            .chain(std::iter::once(steps_total + 1))
            .collect()
    };

    let mut stats = CrashStats {
        crash_points: points.len(),
        ..Default::default()
    };
    for &crash_at in &points {
        let (crashed, poisoned) =
            run_one_crash(&factory, prefill, workload, crash_at, &check);
        stats.crashed_runs += crashed as usize;
        stats.poisoned_cells_total += poisoned;
    }
    stats
}

/// One crash-at-step run; returns (did it crash, poisoned cell count).
fn run_one_crash<S, F, C>(
    factory: &F,
    prefill: &[(u64, u64)],
    workload: &[Step],
    crash_at: u64,
    check: &C,
) -> (bool, usize)
where
    S: DurableSet<u64, u64>,
    F: Fn() -> S,
    C: Fn(&S) -> Result<usize, String>,
{
    let sim = SimHandle::new();
    let guard = sim.enter();
    let s = factory();
    for &(k, v) in prefill {
        s.insert(k, v);
    }
    let completed: RefCell<Vec<MutOp>> = RefCell::new(Vec::new());
    let in_flight: Cell<Option<MutOp>> = Cell::new(None);

    sim.arm_crash_at_step(crash_at);
    let result = run_crashable(|| {
        for op in workload {
            match *op {
                Step::Insert(k, v) => {
                    in_flight.set(Some(MutOp::Insert {
                        key: k,
                        succeeded: false,
                    }));
                    let ok = s.insert(k, v);
                    completed.borrow_mut().push(MutOp::Insert {
                        key: k,
                        succeeded: ok,
                    });
                }
                Step::Remove(k) => {
                    in_flight.set(Some(MutOp::Remove {
                        key: k,
                        succeeded: false,
                    }));
                    let ok = s.remove(k);
                    completed.borrow_mut().push(MutOp::Remove {
                        key: k,
                        succeeded: ok,
                    });
                }
                Step::Get(k) => {
                    in_flight.set(None);
                    s.get(k);
                }
            }
            in_flight.set(None);
        }
    });
    let crashed = result.is_err();
    if !crashed {
        in_flight.set(None);
        sim.arm_crash_at_step(u64::MAX); // effectively disarm
    }

    // The crash: volatile state reverts to whatever was persisted.
    let report = unsafe { sim.crash_and_rollback() };

    // Recovery, then validation — any panic in here (e.g. a poison read) is
    // a durability bug and must fail the test loudly.
    s.recover();

    check(&s).unwrap_or_else(|e| {
        panic!("invariant violation after crash at step {crash_at}: {e}")
    });

    // Durable linearizability, key by key.
    let completed = completed.into_inner();
    let in_flight = in_flight.get();
    let mut initially: BTreeMap<u64, bool> = BTreeMap::new();
    for &(k, _) in prefill {
        initially.insert(k, true);
    }
    let mut keys: Vec<u64> = prefill.iter().map(|&(k, _)| k).collect();
    keys.extend(workload.iter().map(|op| op.key()));
    keys.sort_unstable();
    keys.dedup();
    for k in keys {
        let history: Vec<MutOp> = completed
            .iter()
            .copied()
            .filter(|op| op.key() == k)
            .collect();
        let fl = in_flight.filter(|op| op.key() == k);
        let verdict = key_verdict(initially.get(&k).copied().unwrap_or(false), &history, fl);
        let present = s.contains(k);
        assert!(
            verdict.allows(present),
            "durable linearizability violated for key {k} after crash at step \
             {crash_at}: present={present}, verdict={verdict:?}, \
             history={history:?}, in_flight={fl:?}"
        );
    }

    // The structure must be fully usable after recovery.
    let probe = 0xFFFF_0000u64;
    assert!(s.insert(probe, 1), "post-recovery insert failed");
    assert_eq!(s.get(probe), Some(1), "post-recovery get failed");
    assert!(s.remove(probe), "post-recovery remove failed");

    drop(s);
    drop(guard);
    (crashed, report.poisoned)
}

/// A compact mixed workload over a small key universe: duplicate inserts,
/// removes of absent keys, reinsertion after removal — the interesting
/// transitions.
pub fn standard_workload() -> (Vec<(u64, u64)>, Vec<Step>) {
    let prefill = vec![(2, 20), (4, 40), (6, 60), (8, 80)];
    let workload = vec![
        Step::Insert(1, 11),
        Step::Get(2),
        Step::Remove(4),
        Step::Insert(5, 55),
        Step::Insert(2, 99), // duplicate: must fail and change nothing
        Step::Remove(3),     // absent: must fail
        Step::Remove(2),
        Step::Insert(4, 44), // reinsert a removed key
        Step::Get(5),
        Step::Remove(8),
        Step::Insert(3, 33),
        Step::Remove(1),
    ];
    (prefill, workload)
}

/// `Pool::builder().create()` + typed root in one call — the composition
/// the pool-lifecycle and crash tests repeat constantly. (The returned
/// handle keeps the pool mapped; closing it releases the file.)
#[allow(dead_code)] // not every test binary uses every helper
pub fn create_pooled<S: nvtraverse::PoolTrace>(
    path: impl AsRef<std::path::Path>,
    capacity: u64,
    name: &str,
) -> std::io::Result<nvtraverse::PooledHandle<S>> {
    use nvtraverse::TypedRoots;
    nvtraverse::pool::Pool::builder()
        .path(path)
        .capacity(capacity)
        .create()?
        .create_root::<S>(name)
}

/// `Pool::builder().open()` + typed root in one call.
#[allow(dead_code)]
pub fn open_pooled<S: nvtraverse::PoolTrace>(
    path: impl AsRef<std::path::Path>,
    name: &str,
) -> std::io::Result<nvtraverse::PooledHandle<S>> {
    use nvtraverse::TypedRoots;
    nvtraverse::pool::Pool::builder().path(path).open()?.root::<S>(name)
}

/// The restart-loop form: heal whatever is missing.
#[allow(dead_code)]
pub fn open_or_create_pooled<S: nvtraverse::PoolTrace>(
    path: impl AsRef<std::path::Path>,
    capacity: u64,
    name: &str,
) -> std::io::Result<nvtraverse::PooledHandle<S>> {
    use nvtraverse::TypedRoots;
    nvtraverse::pool::Pool::builder()
        .path(path)
        .capacity(capacity)
        .open_or_create()?
        .root_or_create::<S>(name)
}
