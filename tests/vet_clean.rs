//! Positive sanitizer tests: every structure × every applicable real policy
//! runs a full mixed workload under the `nvtraverse-vet` dynamic sanitizer
//! with **zero error-level findings** — in one run, no crash enumeration.
//!
//! This is the counterpart of `checker_detects_bugs.rs`: that file proves
//! the sanitizer (and the crash sweep) flags broken policies; this one
//! proves the real policies are clean, so a future regression shows up as
//! a named finding (`unpersisted-publish`, `dirty-at-return`,
//! `flush-after-free`) pointing at the offending word.
//!
//! Policy coverage follows the paper's tiers: the seven NVTraverse-suite
//! structures run under `NvTraverse` and `Izraelevitz`; the two SOFT
//! structures run under `Soft`. `LinkPersist` is deliberately absent: its
//! dirty-bit protocol leaves the tag-bit clear unpersisted *by design*
//! (a crash just re-runs the helping flush), which the word-granular
//! sanitizer cannot distinguish from a real durability leak.
//!
//! Structures are built with a **reclaiming** collector on purpose: EBR
//! reclamation must deregister every node word before the memory is
//! returned, and any ordering bug there surfaces as `flush-after-free`.
//!
//! CI runs this binary twice, once with `NVT_OBS=off` (findings then carry
//! `Phase::Unattributed`, and the sanitizer must still classify correctly).

mod common;

use common::{standard_workload, Step};
use nvtraverse::policy::{Izraelevitz, NvTraverse, Soft};
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::SimHandle;
use nvtraverse_pmem::Sim;
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::queue::MsQueue;
use nvtraverse_structures::skiplist::SkipList;
use nvtraverse_structures::soft_hash::SoftHash;
use nvtraverse_structures::soft_list::SoftList;
use nvtraverse_structures::stack::TreiberStack;
use nvtraverse_vet::{Vet, VetReport};

/// Runs the standard mixed workload against a set under the sanitizer and
/// returns the report. The structure is built *after* `Vet::install` (so
/// every node registration is observed) and dropped *before* `finish` (so
/// teardown frees are checked for dangling registrations too).
fn vet_set<S: DurableSet<u64, u64>>(make: impl FnOnce() -> S) -> VetReport {
    let sim = SimHandle::new();
    let _g = sim.enter();
    let vet = Vet::install(&sim);
    {
        let s = make();
        let (prefill, workload) = standard_workload();
        for &(k, v) in &prefill {
            vet.op("prefill", || s.insert(k, v));
        }
        for op in &workload {
            match *op {
                Step::Insert(k, v) => {
                    vet.op("insert", || s.insert(k, v));
                }
                Step::Remove(k) => {
                    vet.op("remove", || s.remove(k));
                }
                Step::Get(k) => {
                    vet.op("get", || s.get(k));
                }
            }
        }
    }
    vet.finish(&sim)
}

fn assert_clean(report: &VetReport, what: &str) {
    assert_eq!(
        report.errors(),
        0,
        "{what} must be sanitizer-clean, found: {:#?}",
        report.findings
    );
    assert!(report.ops > 0, "{what}: no operations were delimited");
}

macro_rules! vet_clean_set {
    ($name:ident, $make:expr) => {
        #[test]
        fn $name() {
            let report = vet_set(|| $make);
            assert_clean(&report, stringify!($name));
        }
    };
}

// The seven NVTraverse-suite structures under the paper's transformation.
vet_clean_set!(
    harris_list_nvtraverse,
    HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    hash_map_nvtraverse,
    HashMapDs::<u64, u64, NvTraverse<Sim>>::with_collector(4, Collector::new())
);
vet_clean_set!(
    skiplist_nvtraverse,
    SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    ellen_bst_nvtraverse,
    EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    nm_bst_nvtraverse,
    NmBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::new())
);

// The same structures under the general transformation of Izraelevitz et
// al. (flush+fence on every shared access — slow, but maximally eager, so
// any sanitizer error here would mean a tracking bug, not a policy bug).
vet_clean_set!(
    harris_list_izraelevitz,
    HarrisList::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    hash_map_izraelevitz,
    HashMapDs::<u64, u64, Izraelevitz<Sim>>::with_collector(4, Collector::new())
);
vet_clean_set!(
    skiplist_izraelevitz,
    SkipList::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    ellen_bst_izraelevitz,
    EllenBst::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    nm_bst_izraelevitz,
    NmBst::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::new())
);

// The SOFT tier: volatile links, one header flush per update.
vet_clean_set!(
    soft_list_soft,
    SoftList::<u64, u64, Soft<Sim>>::with_collector(Collector::new())
);
vet_clean_set!(
    soft_hash_soft,
    SoftHash::<u64, u64, Soft<Sim>>::with_collector(4, Collector::new())
);

/// Queue workload: interleaved enqueues and dequeues, each delimited.
fn vet_queue<D: nvtraverse::policy::Durability<B = Sim>>() -> VetReport {
    let sim = SimHandle::new();
    let _g = sim.enter();
    let vet = Vet::install(&sim);
    {
        let q: MsQueue<u64, D> = MsQueue::with_collector(Collector::new());
        for v in 1..=6u64 {
            vet.op("enqueue", || q.enqueue(v));
        }
        for _ in 0..4 {
            vet.op("dequeue", || q.dequeue());
        }
        for v in 7..=9u64 {
            vet.op("enqueue", || q.enqueue(v));
        }
        while vet.op("dequeue", || q.dequeue()).is_some() {}
    }
    vet.finish(&sim)
}

/// Stack workload: pushes and pops, each delimited.
fn vet_stack<D: nvtraverse::policy::Durability<B = Sim>>() -> VetReport {
    let sim = SimHandle::new();
    let _g = sim.enter();
    let vet = Vet::install(&sim);
    {
        let s: TreiberStack<u64, D> = TreiberStack::with_collector(Collector::new());
        for v in 1..=6u64 {
            vet.op("push", || s.push(v));
        }
        for _ in 0..4 {
            vet.op("pop", || s.pop());
        }
        for v in 7..=9u64 {
            vet.op("push", || s.push(v));
        }
        while vet.op("pop", || s.pop()).is_some() {}
    }
    vet.finish(&sim)
}

#[test]
fn ms_queue_nvtraverse() {
    assert_clean(&vet_queue::<NvTraverse<Sim>>(), "ms_queue_nvtraverse");
}

#[test]
fn ms_queue_izraelevitz() {
    assert_clean(&vet_queue::<Izraelevitz<Sim>>(), "ms_queue_izraelevitz");
}

#[test]
fn treiber_stack_nvtraverse() {
    assert_clean(&vet_stack::<NvTraverse<Sim>>(), "treiber_stack_nvtraverse");
}

#[test]
fn treiber_stack_izraelevitz() {
    assert_clean(&vet_stack::<Izraelevitz<Sim>>(), "treiber_stack_izraelevitz");
}

/// The report survives serialization: a clean run exports valid JSON with
/// zeroed error counts (this is what CI uploads as an artifact).
#[test]
fn clean_report_serializes() {
    let report = vet_set(|| {
        HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::new())
    });
    let json = report.to_json();
    assert!(json.contains("\"unpersisted-publish\":0"), "{json}");
    assert!(json.contains("\"dirty-at-return\":0"), "{json}");
    assert!(json.contains("\"flush-after-free\":0"), "{json}");
}
