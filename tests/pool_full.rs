//! Graceful degradation on pool exhaustion: a structure whose tiny pool
//! runs out of blocks must surface a recoverable [`OpError::PoolFull`] —
//! never a panic, never a silent volatile fallback — bump the pool's
//! `pool_full` obs counter, and stay fully usable for reads, removes, and
//! detectable operations afterwards.

mod common;

use common::create_pooled;
use nvtraverse::detect::{DetectablePool, OpError};
use nvtraverse::policy::NvTraverse;
use nvtraverse::pool::MIN_CAPACITY;
use nvtraverse::DurableSet;
use nvtraverse_obs as obs;
use nvtraverse_pmem::MmapBackend;
use nvtraverse_structures::list::HarrisList;

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;

#[test]
fn tiny_pool_exhaustion_is_recoverable() {
    let path = std::env::temp_dir().join(format!("nvt-poolfull-{}.pool", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // The smallest pool the builder accepts: headers + roots eat most of
    // it, so the list exhausts it within a few hundred inserts.
    let list = create_pooled::<PooledList>(&path, MIN_CAPACITY, "full").unwrap();
    // Register the detectable slot while blocks are still free (the
    // descriptor table itself needs an allocation).
    let mut tok = list.pool().op_token().unwrap();
    let before = list.pool().metrics().snapshot();

    let mut inserted = 0u64;
    let full_at = loop {
        match list.try_insert(inserted, inserted * 10) {
            Ok(fresh) => {
                assert!(fresh, "keys are unique");
                inserted += 1;
                assert!(inserted < 100_000, "tiny pool never filled up");
            }
            Err(OpError::PoolFull) => break inserted,
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    assert!(full_at > 0, "not even one insert fit");

    // The refusal was observed and attributed to this pool.
    let after = list.pool().metrics().snapshot();
    assert!(
        after.counter(obs::Counter::PoolFull) > before.counter(obs::Counter::PoolFull),
        "pool_full counter did not move"
    );

    // The structure survives the refusal: everything inserted is intact...
    for k in 0..full_at {
        assert_eq!(list.get(k), Some(k * 10), "key {k} lost after pool-full");
    }
    // ...further full inserts keep failing recoverably (not panicking)...
    assert_eq!(list.try_insert(u64::MAX - 1, 1), Err(OpError::PoolFull));
    // ...and removes still work (they allocate nothing).
    assert!(list.remove(0));
    assert_eq!(list.get(0), None);

    // The detectable path degrades the same way: arming uses the
    // pre-registered descriptor slot, so exhaustion still reports PoolFull
    // without burning the sequence number on a panic.
    assert_eq!(
        list.insert_detectable(&mut tok, u64::MAX - 2, 1),
        Err(OpError::PoolFull)
    );
    // A detectable remove allocates nothing and must still succeed.
    let (_, hit) = list.remove_detectable(&mut tok, 1).unwrap();
    assert!(hit);

    list.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}
