//! Crash-point tests for the queue and stack (the paper's §3 claim that
//! traversal data structures capture more than sets).
//!
//! Durable linearizability for a queue: after recovery the queue must hold
//! exactly the completed enqueues minus the completed dequeues, in FIFO
//! order, with the in-flight operation (if any) applied or not. Same idea
//! for the stack with LIFO order.

use nvtraverse::policy::NvTraverse;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_pmem::Sim;
use nvtraverse_structures::queue::MsQueue;
use nvtraverse_structures::stack::TreiberStack;
use std::cell::{Cell, RefCell};

const ENQS: u64 = 8;
const DEQS: u64 = 4;

/// Enumerate crash points across a mixed enqueue/dequeue run.
#[test]
fn queue_survives_every_crash_point() {
    install_quiet_panic_hook();
    // Pass 1: step span.
    let total = {
        let sim = SimHandle::new();
        let g = sim.enter();
        let q: MsQueue<u64, NvTraverse<Sim>> = MsQueue::with_collector(Collector::leaking());
        run_queue_workload(&q, &RefCell::new(Vec::new()), &Cell::new(None));
        let t = sim.steps();
        drop(q);
        drop(g);
        t
    };

    for crash_at in 1..=total + 1 {
        let sim = SimHandle::new();
        let g = sim.enter();
        let q: MsQueue<u64, NvTraverse<Sim>> = MsQueue::with_collector(Collector::leaking());
        let enq_done: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        let deq_done: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        let in_flight: Cell<Option<&'static str>> = Cell::new(None);
        sim.arm_crash_at_step(crash_at);
        let _ = run_crashable(|| {
            for v in 1..=ENQS {
                in_flight.set(Some("enq"));
                q.enqueue(v);
                enq_done.borrow_mut().push(v);
                in_flight.set(None);
            }
            for _ in 0..DEQS {
                in_flight.set(Some("deq"));
                if let Some(v) = q.dequeue() {
                    deq_done.borrow_mut().push(v);
                }
                in_flight.set(None);
            }
        });
        unsafe { sim.crash_and_rollback() };
        q.recover();

        let enq_done = enq_done.into_inner();
        let deq_done = deq_done.into_inner();
        let in_flight = in_flight.get();

        // Dequeues must have come off the front in order.
        let expect_prefix: Vec<u64> = (1..=deq_done.len() as u64).collect();
        assert_eq!(deq_done, expect_prefix, "completed dequeues out of order");

        // Surviving content must be a FIFO-consistent window:
        // values (deq_done.len() [+1 if an in-flight dequeue applied]) + 1
        // ..= enq_done.len() [+1 if an in-flight enqueue applied].
        let mut rest = Vec::new();
        while let Some(v) = q.dequeue() {
            rest.push(v);
        }
        let n_deq = deq_done.len() as u64;
        let n_enq = enq_done.len() as u64;
        let start_ok = |s: u64| {
            s == n_deq + 1 || (in_flight == Some("deq") && s == n_deq + 2)
        };
        let end_ok = |e: u64| {
            e == n_enq || (in_flight == Some("enq") && e == n_enq + 1)
        };
        if rest.is_empty() {
            assert!(
                n_enq == n_deq
                    || (in_flight == Some("deq") && n_enq == n_deq + 1)
                    || (n_enq == 0),
                "queue empty after crash at {crash_at} but {n_enq} enqueued, {n_deq} dequeued"
            );
        } else {
            assert!(
                rest.windows(2).all(|w| w[1] == w[0] + 1),
                "queue contents not contiguous after crash at {crash_at}: {rest:?}"
            );
            assert!(
                start_ok(rest[0]),
                "queue head {} wrong after crash at {crash_at} (deq_done={n_deq}, in_flight={in_flight:?})",
                rest[0]
            );
            assert!(
                end_ok(*rest.last().unwrap()),
                "queue tail {} wrong after crash at {crash_at} (enq_done={n_enq}, in_flight={in_flight:?})",
                rest.last().unwrap()
            );
        }
        // Post-recovery usability.
        q.enqueue(99);
        assert_eq!(q.dequeue(), Some(99));
        drop(q);
        drop(g);
    }
}

fn run_queue_workload(
    q: &MsQueue<u64, NvTraverse<Sim>>,
    _enq_done: &RefCell<Vec<u64>>,
    _in_flight: &Cell<Option<&'static str>>,
) {
    for v in 1..=ENQS {
        q.enqueue(v);
    }
    for _ in 0..DEQS {
        q.dequeue();
    }
}

#[test]
fn stack_survives_every_crash_point() {
    install_quiet_panic_hook();
    const PUSHES: u64 = 6;
    const POPS: u64 = 3;
    let total = {
        let sim = SimHandle::new();
        let g = sim.enter();
        let s: TreiberStack<u64, NvTraverse<Sim>> =
            TreiberStack::with_collector(Collector::leaking());
        for v in 1..=PUSHES {
            s.push(v);
        }
        for _ in 0..POPS {
            s.pop();
        }
        let t = sim.steps();
        drop(s);
        drop(g);
        t
    };

    for crash_at in 1..=total + 1 {
        let sim = SimHandle::new();
        let g = sim.enter();
        let s: TreiberStack<u64, NvTraverse<Sim>> =
            TreiberStack::with_collector(Collector::leaking());
        let pushes_done: Cell<u64> = Cell::new(0);
        let pops_done: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        let in_flight: Cell<Option<&'static str>> = Cell::new(None);
        sim.arm_crash_at_step(crash_at);
        let _ = run_crashable(|| {
            for v in 1..=PUSHES {
                in_flight.set(Some("push"));
                s.push(v);
                pushes_done.set(v);
                in_flight.set(None);
            }
            for _ in 0..POPS {
                in_flight.set(Some("pop"));
                if let Some(v) = s.pop() {
                    pops_done.borrow_mut().push(v);
                }
                in_flight.set(None);
            }
        });
        unsafe { sim.crash_and_rollback() };
        s.recover();

        let n_push = pushes_done.get();
        let pops = pops_done.into_inner();
        let in_flight = in_flight.get();

        // Completed pops must be the top elements in LIFO order.
        for (i, v) in pops.iter().enumerate() {
            assert_eq!(*v, n_push - i as u64, "pop order wrong");
        }
        let mut rest = Vec::new();
        while let Some(v) = s.pop() {
            rest.push(v);
        }
        // Remaining must be n_push - pops [- maybe in-flight pop]
        // [+ maybe in-flight push], descending contiguous from the top.
        let expected_top_base = n_push - pops.len() as u64;
        if !rest.is_empty() {
            let top = rest[0];
            let top_ok = top == expected_top_base
                || (in_flight == Some("push") && top == expected_top_base + 1)
                || (in_flight == Some("pop") && top + 1 == expected_top_base);
            assert!(
                top_ok,
                "stack top {top} unexpected after crash at {crash_at} \
                 (pushes={n_push}, pops={}, in_flight={in_flight:?})",
                pops.len()
            );
            assert!(
                rest.windows(2).all(|w| w[1] + 1 == w[0]),
                "stack not contiguous after crash at {crash_at}: {rest:?}"
            );
        }
        s.push(42);
        assert_eq!(s.pop(), Some(42), "stack unusable after recovery");
        drop(s);
        drop(g);
    }
}
