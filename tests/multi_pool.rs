//! Multi-pool isolation: several pools open concurrently in one process
//! must stay fully independent — allocation routing, cross-pool misuse
//! detection, and per-pool recovery GC.
//!
//! These are the tests ISSUE 5's per-pool-context redesign makes possible:
//! under the old process-global installed pool, two concurrently *used*
//! pools could not even exist.

use nvtraverse::policy::NvTraverse;
use nvtraverse::pool::{POff, Pool};
use nvtraverse::{DurableSet, TypedRoots};
use nvtraverse_pmem::MmapBackend;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::queue::MsQueue;
use std::path::PathBuf;

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
type PooledQueue = MsQueue<u64, NvTraverse<MmapBackend>>;

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nvt-multipool-{}-{}.pool",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Two pools, two structures, mutated **concurrently from several threads**
/// — every node must land in its own structure's pool file, proven by
/// closing both and reopening each in isolation.
#[test]
fn two_pools_used_concurrently_stay_disjoint() {
    let (path_a, path_b) = (tmp("conc-a"), tmp("conc-b"));
    {
        let pool_a = Pool::builder().path(&path_a).capacity(8 << 20).create().unwrap();
        let pool_b = Pool::builder().path(&path_b).capacity(8 << 20).create().unwrap();
        let list = pool_a.create_root::<PooledList>("list").unwrap();
        let queue = pool_b.create_root::<PooledQueue>("queue").unwrap();

        std::thread::scope(|s| {
            for t in 0..2u64 {
                let list = &list;
                let queue = &queue;
                s.spawn(move || {
                    for k in (t * 500)..(t * 500 + 500) {
                        assert!(list.insert(k, k * 3));
                        queue.enqueue(k);
                        if k % 4 == 0 {
                            list.remove(k);
                            queue.dequeue();
                        }
                    }
                });
            }
        });

        // Interleaved allocations went to the right files: both heaps
        // verify block by block (contents are checked after the reopen).
        list.pool().verify_heap().unwrap();
        queue.pool().verify_heap().unwrap();
        queue.close().unwrap();
        list.close().unwrap();
        drop(pool_a);
        drop(pool_b);
    }

    // Reopen each pool on its own: contents are complete and disjoint.
    let pool_a = Pool::builder().path(&path_a).open().unwrap();
    let list = pool_a.root::<PooledList>("list").unwrap();
    assert_eq!(list.len(), 750, "list lost or gained keys across pools");
    list.check_consistency(false).unwrap();
    drop(list);
    drop(pool_a);

    let pool_b = Pool::builder().path(&path_b).open().unwrap();
    let queue = pool_b.root::<PooledQueue>("queue").unwrap();
    assert_eq!(queue.len(), 750, "queue lost or gained values across pools");
    drop(queue);
    drop(pool_b);

    std::fs::remove_file(&path_a).unwrap();
    std::fs::remove_file(&path_b).unwrap();
}

/// A `POff` minted against pool A and dereferenced against pool B must be
/// rejected loudly (panic with a cross-pool message), not silently resolve
/// to unrelated memory.
#[test]
fn cross_pool_poff_dereference_is_rejected_loudly() {
    let (path_a, path_b) = (tmp("poff-a"), tmp("poff-b"));
    let pool_a = Pool::builder().path(&path_a).capacity(1 << 20).create().unwrap();
    // B is freshly created: it has no allocated block anywhere, so A's
    // offset can never name an allocated payload in it.
    let pool_b = Pool::builder().path(&path_b).capacity(1 << 20).create().unwrap();

    let off: POff<u64> = pool_a.alloc_value(123u64).unwrap();
    assert_eq!(unsafe { off.as_ref(&pool_a) }, Some(&123));
    // The graceful form rejects with None…
    assert_eq!(off.try_resolve(&pool_b), None);
    // …and the panicking form names the offending pool.
    let err = std::panic::catch_unwind(|| off.resolve(&pool_b))
        .expect_err("cross-pool POff::resolve must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("does not name an allocated block"),
        "unexpected panic message: {msg}"
    );

    drop(pool_a);
    drop(pool_b);
    std::fs::remove_file(&path_a).unwrap();
    std::fs::remove_file(&path_b).unwrap();
}

/// A pointer allocated from pool A handed to pool B's `dealloc` must be
/// rejected loudly (the block-ownership assert), never linked into B's
/// free lists.
#[test]
fn cross_pool_free_is_rejected_loudly() {
    let (path_a, path_b) = (tmp("free-a"), tmp("free-b"));
    let pool_a = Pool::builder().path(&path_a).capacity(1 << 20).create().unwrap();
    let pool_b = Pool::builder().path(&path_b).capacity(1 << 20).create().unwrap();

    let p = pool_a.alloc(64, 8).unwrap();
    let err = std::panic::catch_unwind(|| unsafe { pool_b.dealloc(p) })
        .expect_err("cross-pool dealloc must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("not in pool"), "unexpected panic message: {msg}");

    // Both pools are unharmed: A still owns the block, B's heap verifies.
    unsafe { pool_a.dealloc(p) };
    pool_a.verify_heap().unwrap();
    pool_b.verify_heap().unwrap();

    drop(pool_a);
    drop(pool_b);
    std::fs::remove_file(&path_a).unwrap();
    std::fs::remove_file(&path_b).unwrap();
}

/// Recovery GC runs per pool: stranding garbage in one pool is invisible
/// to the other's reopen.
#[test]
fn per_pool_gc_runs_independently() {
    let (path_a, path_b) = (tmp("gc-a"), tmp("gc-b"));
    {
        let pool_a = Pool::builder().path(&path_a).capacity(2 << 20).create().unwrap();
        let pool_b = Pool::builder().path(&path_b).capacity(2 << 20).create().unwrap();
        let list_a = pool_a.create_root::<PooledList>("set").unwrap();
        let list_b = pool_b.create_root::<PooledList>("set").unwrap();
        for k in 0..20u64 {
            list_a.insert(k, k);
            list_b.insert(k, k);
        }
        // Strand two blocks in A only (what a crash mid-operation leaves).
        pool_a.alloc(64, 8).unwrap();
        pool_a.alloc(500, 8).unwrap();
        list_a.close().unwrap();
        list_b.close().unwrap();
        drop(pool_a);
        drop(pool_b);
    }

    let pool_a = Pool::builder().path(&path_a).open().unwrap();
    let pool_b = Pool::builder().path(&path_b).open().unwrap();
    let list_a = pool_a.root::<PooledList>("set").unwrap();
    let list_b = pool_b.root::<PooledList>("set").unwrap();
    let (ra, rb) = (pool_a.recovery_report(), pool_b.recovery_report());
    assert!(ra.gc_ran && rb.gc_ran);
    assert_eq!(ra.reclaimed_blocks, 2, "A's sweep must reclaim exactly A's orphans");
    assert_eq!(rb.reclaimed_blocks, 0, "B had no garbage — its sweep must find none");
    assert_eq!(list_a.len(), 20);
    assert_eq!(list_b.len(), 20);

    drop((list_a, list_b, pool_a, pool_b));
    std::fs::remove_file(&path_a).unwrap();
    std::fs::remove_file(&path_b).unwrap();
}
