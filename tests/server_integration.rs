//! End-to-end tests of the KV service over a Unix-domain socket: wire
//! round-trips, pipelining, batch group commit, malformed-frame
//! rejection, concurrent clients, STATS, and durable shutdown/reopen.
//!
//! Everything runs against a real `Server` with real `MmapBackend` shard
//! pools under a temp directory — the full stack the `kv_service` figure
//! measures, minus the clock.

use nvtraverse_server::{
    Client, KvStore, OutcomeAnswer, PolicyKind, Reply, Request, Server, ServerConfig,
};
use std::path::PathBuf;

const SHARDS: usize = 3;
const SHARD_CAP: u64 = 4 << 20;

fn temp_paths(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir();
    let dir = base.join(format!("nvt-srv-it-{}-{tag}", std::process::id()));
    let sock = base.join(format!("nvt-srv-it-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sock);
    (dir, sock)
}

fn start(tag: &str, policy: PolicyKind) -> (Server, PathBuf, PathBuf) {
    let (dir, sock) = temp_paths(tag);
    let store = KvStore::create(&dir, policy, SHARDS, SHARD_CAP).unwrap();
    let server = Server::start_uds(&sock, store, ServerConfig { workers: 2, ..Default::default() })
        .unwrap();
    (server, dir, sock)
}

fn cleanup(dir: &PathBuf, sock: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_file(sock);
}

/// Minimal JSON validity checker (no dependencies): consumes one value,
/// returns the rest of the input. Panics with context on malformed input.
fn json_value(s: &[u8]) -> &[u8] {
    let s = skip_ws(s);
    match s.first() {
        Some(b'{') => {
            let mut s = skip_ws(&s[1..]);
            if s.first() == Some(&b'}') {
                return &s[1..];
            }
            loop {
                s = json_string(skip_ws(s));
                s = skip_ws(s);
                assert_eq!(s.first(), Some(&b':'), "expected ':' in object");
                s = json_value(&s[1..]);
                s = skip_ws(s);
                match s.first() {
                    Some(b',') => s = &s[1..],
                    Some(b'}') => return &s[1..],
                    other => panic!("expected ',' or '}}', got {other:?}"),
                }
            }
        }
        Some(b'[') => {
            let mut s = skip_ws(&s[1..]);
            if s.first() == Some(&b']') {
                return &s[1..];
            }
            loop {
                s = json_value(s);
                s = skip_ws(s);
                match s.first() {
                    Some(b',') => s = &s[1..],
                    Some(b']') => return &s[1..],
                    other => panic!("expected ',' or ']', got {other:?}"),
                }
            }
        }
        Some(b'"') => json_string(s),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = s
                .iter()
                .position(|c| !c.is_ascii_digit() && !b"-+.eE".contains(c))
                .unwrap_or(s.len());
            assert!(end > 0, "empty number");
            &s[end..]
        }
        Some(b't') => s.strip_prefix(b"true".as_slice()).expect("bad literal"),
        Some(b'f') => s.strip_prefix(b"false".as_slice()).expect("bad literal"),
        Some(b'n') => s.strip_prefix(b"null".as_slice()).expect("bad literal"),
        other => panic!("unexpected JSON byte {other:?}"),
    }
}

fn json_string(s: &[u8]) -> &[u8] {
    assert_eq!(s.first(), Some(&b'"'), "expected string");
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            b'"' => return &s[i + 1..],
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    panic!("unterminated string");
}

fn skip_ws(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|c| c.is_ascii_whitespace()).count();
    &s[n..]
}

fn assert_valid_json(doc: &str) {
    let rest = json_value(doc.as_bytes());
    assert!(skip_ws(rest).is_empty(), "trailing bytes after JSON document");
}

#[test]
fn insert_get_remove_round_trips() {
    for policy in [PolicyKind::NvTraverse, PolicyKind::Soft] {
        let (server, dir, sock) = start(&format!("rt-{}", policy.name()), policy);
        let mut c = Client::connect_uds(&sock).unwrap();

        assert_eq!(c.get(1).unwrap(), None);
        assert!(c.insert(1, 10).unwrap());
        assert!(!c.insert(1, 11).unwrap(), "duplicate insert is a no-op");
        assert_eq!(c.get(1).unwrap(), Some(10));
        assert!(c.remove(1).unwrap());
        assert!(!c.remove(1).unwrap(), "second remove misses");
        assert_eq!(c.get(1).unwrap(), None);

        // Keys spanning all shards.
        for k in 0..64u64 {
            assert!(c.insert(k, k * 3).unwrap());
        }
        for k in 0..64u64 {
            assert_eq!(c.get(k).unwrap(), Some(k * 3));
        }

        server.shutdown().unwrap();
        cleanup(&dir, &sock);
    }
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (server, dir, sock) = start("pipeline", PolicyKind::NvTraverse);
    let mut c = Client::connect_uds(&sock).unwrap();

    // Write a window of frames before reading any reply; the server must
    // answer strictly in order.
    let reqs: Vec<Request> = (0..32u64)
        .map(|k| Request::Insert(k, k + 100))
        .chain((0..32u64).map(Request::Get))
        .collect();
    for r in &reqs {
        c.send(r).unwrap();
    }
    for (i, r) in reqs.iter().enumerate() {
        let reply = c.recv(r).unwrap();
        if i < 32 {
            assert_eq!(reply, Reply::Applied, "insert #{i}");
        } else {
            assert_eq!(reply, Reply::Value(i as u64 - 32 + 100), "get #{i}");
        }
    }

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn batches_group_commit_and_report_per_op_replies() {
    let (server, dir, sock) = start("batch", PolicyKind::NvTraverse);
    let mut c = Client::connect_uds(&sock).unwrap();

    let ops: Vec<Request> = (0..50u64)
        .map(|k| Request::Insert(k, k))
        .chain([Request::Get(7), Request::Remove(3), Request::Get(3)])
        .collect();
    let replies = c.batch(&ops).unwrap();
    assert_eq!(replies.len(), 53);
    assert!(replies[..50].iter().all(|r| *r == Reply::Applied));
    assert_eq!(replies[50], Reply::Value(7));
    assert_eq!(replies[51], Reply::Applied);
    assert_eq!(replies[52], Reply::Miss);

    let (batches, batched_ops, deferred, closing) = server.batch_counters();
    assert_eq!(batches, 1);
    assert_eq!(batched_ops, 53);
    assert!(deferred >= 51, "every update defers its closing fence; got {deferred}");
    assert_eq!(closing, 1, "one shared fence at the batch durability point");

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn malformed_frames_get_bad_request_then_close() {
    let (server, dir, sock) = start("malformed", PolicyKind::NvTraverse);

    // Unknown opcode: framed correctly, body garbage.
    let mut c = Client::connect_uds(&sock).unwrap();
    c.send_raw(&[1, 0, 0, 0, 0xAB]).unwrap();
    let reply = c.recv_raw_frame().unwrap().expect("a BAD_REQUEST reply frame");
    assert_eq!(reply[0], nvtraverse_server::proto::ST_BAD_REQUEST);
    assert_eq!(c.drain_to_eof().unwrap(), 0, "server closes after BAD_REQUEST");

    // Oversized length prefix: connection is cut without a reply.
    let mut c = Client::connect_uds(&sock).unwrap();
    c.send_raw(&(u32::MAX).to_le_bytes()).unwrap();
    assert_eq!(c.drain_to_eof().unwrap(), 0);

    // Control op smuggled into a batch: BAD_REQUEST.
    let mut c = Client::connect_uds(&sock).unwrap();
    c.send_raw(&[6, 0, 0, 0, 0x10, 1, 0, 0, 0, 0x07]).unwrap();
    let reply = c.recv_raw_frame().unwrap().expect("a BAD_REQUEST reply frame");
    assert_eq!(reply[0], nvtraverse_server::proto::ST_BAD_REQUEST);

    // A malformed connection must not poison a healthy one.
    let mut healthy = Client::connect_uds(&sock).unwrap();
    assert!(healthy.insert(9, 90).unwrap());
    assert_eq!(healthy.get(9).unwrap(), Some(90));

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn concurrent_clients_on_disjoint_and_overlapping_keys() {
    let (server, dir, sock) = start("concurrent", PolicyKind::NvTraverse);
    const PER: u64 = 200;

    std::thread::scope(|s| {
        // Disjoint ranges: every thread owns its keys outright.
        for t in 0..3u64 {
            let sock = &sock;
            s.spawn(move || {
                let mut c = Client::connect_uds(sock).unwrap();
                let base = 1_000 + t * PER;
                for k in base..base + PER {
                    assert!(c.insert(k, k * 2).unwrap());
                }
                for k in base..base + PER {
                    assert_eq!(c.get(k).unwrap(), Some(k * 2));
                }
            });
        }
        // Overlapping range: everyone inserts the same (key, value) pairs;
        // exactly the set semantics decide who wins, values all agree.
        for _ in 0..3 {
            let sock = &sock;
            s.spawn(move || {
                let mut c = Client::connect_uds(sock).unwrap();
                for k in 0..PER {
                    c.insert(k, k * 7).unwrap(); // true for exactly one client
                }
                for k in 0..PER {
                    assert_eq!(c.get(k).unwrap(), Some(k * 7));
                }
            });
        }
    });

    // Every key present exactly once.
    let mut c = Client::connect_uds(&sock).unwrap();
    for k in 0..PER {
        assert_eq!(c.get(k).unwrap(), Some(k * 7));
    }

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn stats_is_valid_json_with_service_counters() {
    let (server, dir, sock) = start("stats", PolicyKind::Soft);
    let mut c = Client::connect_uds(&sock).unwrap();
    for k in 0..10u64 {
        c.insert(k, k).unwrap();
    }
    c.batch(&[Request::Get(1), Request::Insert(99, 1)]).unwrap();

    let doc = c.stats_json().unwrap();
    assert_valid_json(&doc);
    assert!(doc.contains("\"policy\":\"soft\""), "{doc}");
    assert!(doc.contains(&format!("\"shards\":{SHARDS}")), "{doc}");
    assert!(doc.contains("\"batches\":1"), "{doc}");
    assert!(doc.contains("\"obs\":"), "{doc}");
    assert!(doc.contains("\"pools\":"), "{doc}");

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn shutdown_is_durable_and_reopen_serves_the_same_data() {
    let (server, dir, sock) = start("durable", PolicyKind::NvTraverse);
    let mut c = Client::connect_uds(&sock).unwrap();
    for k in 0..128u64 {
        assert!(c.insert(k, k ^ 0xAA).unwrap());
    }
    let ack = c.insert_detectable(500, 1).unwrap();
    assert!(ack.applied);
    drop(c);
    server.shutdown().unwrap();

    // Reopen = full recovery; the same socket path is reusable.
    let store = KvStore::open(&dir).unwrap();
    assert_eq!(store.policy(), PolicyKind::NvTraverse);
    let server = Server::start_uds(&sock, store, ServerConfig::default()).unwrap();
    let mut c = Client::connect_uds(&sock).unwrap();
    for k in 0..128u64 {
        assert_eq!(c.get(k).unwrap(), Some(k ^ 0xAA), "key {k} lost across restart");
    }
    // The pre-restart detectable op is answerable by id now.
    assert_eq!(c.op_outcome(ack.shard, ack.op_id).unwrap(), OutcomeAnswer::Committed);

    // Wire shutdown: the SHUTDOWN request acks, then the server drains.
    c.shutdown_server().unwrap();
    assert!(server.shutdown_requested());
    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}

#[test]
fn tcp_transport_speaks_the_same_protocol() {
    let (dir, sock) = temp_paths("tcp");
    let store = KvStore::create(&dir, PolicyKind::NvTraverse, SHARDS, SHARD_CAP).unwrap();
    let server = Server::start_tcp("127.0.0.1:0", store, ServerConfig::default()).unwrap();
    let addr = server.tcp_addr().expect("bound TCP address");

    let mut c = Client::connect_tcp(addr).unwrap();
    assert!(c.insert(1, 2).unwrap());
    assert_eq!(c.get(1).unwrap(), Some(2));
    let replies = c.batch(&[Request::Get(1), Request::Remove(1)]).unwrap();
    assert_eq!(replies, vec![Reply::Value(2), Reply::Applied]);

    server.shutdown().unwrap();
    cleanup(&dir, &sock);
}
