//! Crash-point testing of every set structure under the NVTraverse
//! transformation: the executable counterpart of Theorem 4.2.
//!
//! Each test replays a deterministic workload on the simulated NVRAM with a
//! crash injected at (up to) every simulated memory event, then verifies
//! recovery restores a durably linearizable state. See `common/mod.rs`.

mod common;

use common::{exhaustive_crash_test, standard_workload, Step};
use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse};
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::install_quiet_panic_hook;
use nvtraverse_pmem::Sim;
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::{HarrisList, HarrisListOrigParent};
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::skiplist::SkipList;

const MAX_POINTS: usize = 500;

#[test]
fn list_nvtraverse_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    let stats = exhaustive_crash_test(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
    assert!(
        stats.poisoned_cells_total > 0,
        "the adversary never poisoned anything — the simulation is too tame"
    );
}

#[test]
fn list_orig_parent_variant_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || {
            HarrisListOrigParent::<u64, u64, NvTraverse<Sim>>::with_collector(
                Collector::leaking(),
            )
        },
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
}

#[test]
fn list_izraelevitz_survives_every_crash_point() {
    // The general transformation must also pass — it persists strictly more.
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || HarrisList::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
}

#[test]
fn list_link_persist_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || HarrisList::<u64, u64, LinkPersist<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
}

#[test]
fn hash_nvtraverse_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || HashMapDs::<u64, u64, NvTraverse<Sim>>::with_collector(4, Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |m| m.check_consistency(false),
    );
}

#[test]
fn ellen_bst_nvtraverse_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |t| t.check_consistency(true),
    );
}

#[test]
fn nm_bst_nvtraverse_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || NmBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |t| t.check_consistency(true),
    );
}

#[test]
fn skiplist_nvtraverse_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |s| s.check_consistency(false),
    );
}

#[test]
fn list_crash_during_heavy_deletion_phase() {
    // Deletion is where marks, trims and reclamation interact; focus there.
    install_quiet_panic_hook();
    let prefill: Vec<(u64, u64)> = (1..=10u64).map(|k| (k, k * 10)).collect();
    let workload: Vec<Step> = (1..=10u64).map(Step::Remove).collect();
    exhaustive_crash_test(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
}

#[test]
fn skiplist_crash_during_heavy_deletion_phase() {
    install_quiet_panic_hook();
    let prefill: Vec<(u64, u64)> = (1..=8u64).map(|k| (k, k * 10)).collect();
    let workload: Vec<Step> = (1..=8u64).map(Step::Remove).collect();
    exhaustive_crash_test(
        || SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |s| s.check_consistency(false),
    );
}

#[test]
fn ellen_bst_crash_during_heavy_deletion_phase() {
    install_quiet_panic_hook();
    let prefill: Vec<(u64, u64)> = (1..=8u64).map(|k| (k, k * 10)).collect();
    let workload: Vec<Step> = (1..=8u64).map(Step::Remove).collect();
    exhaustive_crash_test(
        || EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |t| t.check_consistency(true),
    );
}

#[test]
fn nm_bst_crash_during_heavy_deletion_phase() {
    install_quiet_panic_hook();
    let prefill: Vec<(u64, u64)> = (1..=8u64).map(|k| (k, k * 10)).collect();
    let workload: Vec<Step> = (1..=8u64).map(Step::Remove).collect();
    exhaustive_crash_test(
        || NmBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |t| t.check_consistency(true),
    );
}

#[test]
fn list_crash_on_empty_structure_growth() {
    // From empty: the very first inserts exercise root-link persistence.
    install_quiet_panic_hook();
    let workload: Vec<Step> = (1..=6u64).map(|k| Step::Insert(k, k)).collect();
    exhaustive_crash_test(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &[],
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
}
