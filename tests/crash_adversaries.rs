//! Crash tests under the *eviction* adversary: the paper's model (§2) allows
//! any value to be "persisted implicitly by the system, corresponding to an
//! automatic cache eviction". A durably linearizable structure must tolerate
//! both extremes — nothing evicts (the default adversary in `crash_sets.rs`)
//! and everything evicts eagerly — and the spectrum in between.

mod common;

use common::{exhaustive_crash_test, standard_workload};
use nvtraverse::model::{key_verdict, MutOp};
use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse};
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_pmem::Sim;
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::skiplist::SkipList;

/// Like the standard harness, but with background evictions persisting the
/// touched cell every `period` events.
fn crash_with_evictions<S, F, C>(factory: F, period: u64, check: C)
where
    S: DurableSet<u64, u64>,
    F: Fn() -> S,
    C: Fn(&S) -> Result<usize, String>,
{
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    // Learn the span with evictions enabled (they add no steps, only
    // persists, so the span matches the no-eviction one; still, compute it
    // the same way for clarity).
    let total = {
        let sim = SimHandle::new();
        sim.set_evict_period(period);
        let g = sim.enter();
        let s = factory();
        for &(k, v) in &prefill {
            s.insert(k, v);
        }
        for op in &workload {
            match *op {
                common::Step::Insert(k, v) => {
                    s.insert(k, v);
                }
                common::Step::Remove(k) => {
                    s.remove(k);
                }
                common::Step::Get(k) => {
                    s.get(k);
                }
            }
        }
        let t = sim.steps();
        drop(s);
        drop(g);
        t
    };

    // Sample crash points (evictions make runs non-identical in persisted
    // state but identical in step count).
    let stride = (total / 60).max(1);
    let mut crash_at = 1;
    while crash_at <= total {
        let sim = SimHandle::new();
        sim.set_evict_period(period);
        let g = sim.enter();
        let s = factory();
        for &(k, v) in &prefill {
            s.insert(k, v);
        }
        let mut completed: Vec<MutOp> = Vec::new();
        let mut in_flight: Option<MutOp> = None;
        sim.arm_crash_at_step(crash_at);
        let completed_ref = std::cell::RefCell::new(&mut completed);
        let in_flight_ref = std::cell::RefCell::new(&mut in_flight);
        let _ = run_crashable(|| {
            for op in &workload {
                match *op {
                    common::Step::Insert(k, v) => {
                        **in_flight_ref.borrow_mut() = Some(MutOp::Insert {
                            key: k,
                            succeeded: false,
                        });
                        let ok = s.insert(k, v);
                        completed_ref.borrow_mut().push(MutOp::Insert {
                            key: k,
                            succeeded: ok,
                        });
                    }
                    common::Step::Remove(k) => {
                        **in_flight_ref.borrow_mut() = Some(MutOp::Remove {
                            key: k,
                            succeeded: false,
                        });
                        let ok = s.remove(k);
                        completed_ref.borrow_mut().push(MutOp::Remove {
                            key: k,
                            succeeded: ok,
                        });
                    }
                    common::Step::Get(k) => {
                        s.get(k);
                    }
                }
                **in_flight_ref.borrow_mut() = None;
            }
        });
        unsafe { sim.crash_and_rollback() };
        s.recover();
        check(&s).unwrap_or_else(|e| panic!("invariants (evict={period}): {e}"));
        let mut keys: Vec<u64> = prefill.iter().map(|&(k, _)| k).collect();
        keys.extend(workload.iter().map(|op| op.key()));
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let history: Vec<MutOp> =
                completed.iter().copied().filter(|op| op.key() == k).collect();
            let fl = in_flight.filter(|op| op.key() == k);
            let initially = prefill.iter().any(|&(pk, _)| pk == k);
            let verdict = key_verdict(initially, &history, fl);
            assert!(
                verdict.allows(s.contains(k)),
                "evict={period}, crash@{crash_at}, key {k}: verdict {verdict:?} violated"
            );
        }
        drop(s);
        drop(g);
        crash_at += stride;
    }
}

#[test]
fn list_survives_crashes_under_eager_eviction() {
    crash_with_evictions(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        1, // evict on every access: maximally leaky caches
        |l| l.check_consistency(false),
    );
}

#[test]
fn list_survives_crashes_under_sparse_eviction() {
    crash_with_evictions(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        13,
        |l| l.check_consistency(false),
    );
}

#[test]
fn ellen_bst_survives_crashes_under_eviction() {
    crash_with_evictions(
        || EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        7,
        |t| t.check_consistency(true),
    );
}

#[test]
fn nm_bst_survives_crashes_under_eviction() {
    crash_with_evictions(
        || NmBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        7,
        |t| t.check_consistency(true),
    );
}

#[test]
fn skiplist_survives_crashes_under_eviction() {
    crash_with_evictions(
        || SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        7,
        |s| s.check_consistency(false),
    );
}

#[test]
fn izraelevitz_bsts_survive_every_crash_point() {
    // The baselines must be durable too (they persist strictly more).
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || EllenBst::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        250,
        |t| t.check_consistency(true),
    );
    exhaustive_crash_test(
        || NmBst::<u64, u64, Izraelevitz<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        250,
        |t| t.check_consistency(true),
    );
}

#[test]
fn link_persist_skiplist_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || SkipList::<u64, u64, LinkPersist<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        250,
        |s| s.check_consistency(false),
    );
}
