//! Per-structure persistence-instruction **bounds**: one durable insert and
//! one durable remove must cost at most a small, structure-specific
//! constant number of flushes and fences under `NvTraverse` — the paper's
//! central quantitative claim (the journey is free, the destination is a
//! constant), pinned as a regression test per structure.
//!
//! Counting goes through the [`Count`] backend, whose every flush/fence is
//! recorded both into the process-global `stats` counters **and** into the
//! thread's attributed `nvtraverse-obs` metric set. The tests attribute to
//! a **private** metric set per measurement, which is what makes the counts
//! exact even though the test binary runs other tests (and their flushes)
//! concurrently: attribution is thread-local, so only this thread's
//! instructions land in the private set. (The deprecated global
//! `stats::reset()` could never do this — see the `stats` module docs for
//! the interleaving hazard.)
//!
//! # The constants
//!
//! Measured single-threaded (no helping, no contention) after a 32-key
//! prefill. The exact uncontended costs observed when the bounds were set
//! are listed per test; each asserted bound adds only modest slack (under
//! 2× the observation, except where the structure itself is randomized —
//! the skiplist's tower-height draw — or where helping can legitimately
//! repeat work — the Ellen BST's descriptors). These are regression
//! tripwires, not estimates: a policy change that adds a few persistence
//! instructions per op trips them.

use nvtraverse::detect::OpTable;
use nvtraverse::policy::{NvTraverse, Soft};
use nvtraverse::DurableSet;
use nvtraverse_obs as obs;
use nvtraverse_pmem::batch::FenceBatch;
use nvtraverse_pmem::{Count, Noop};
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::queue::MsQueue;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::skiplist::SkipList;
use nvtraverse_structures::soft_hash::SoftHash;
use nvtraverse_structures::soft_list::SoftList;
use nvtraverse_structures::stack::TreiberStack;

type D = NvTraverse<Count<Noop>>;
type SD = Soft<Count<Noop>>;

/// Keys present before each measured operation (the structures should be
/// non-trivially populated — an empty-structure op can take shortcuts).
const PREFILL: u64 = 32;

/// Runs `f` with this thread's persistence instructions attributed to a
/// private metric set, returning the exact (flushes, fences) it issued.
fn counted(f: impl FnOnce()) -> (u64, u64) {
    let set: &'static obs::MetricSet = Box::leak(Box::new(obs::MetricSet::new(1)));
    {
        let _t = obs::attribute_to(Some(set));
        f();
    }
    let s = set.snapshot();
    (s.total_flushes(), s.total_fences())
}

/// Asserts an exact measurement against its documented bound. A durable
/// update must also issue at least one fence — zero would mean the op was
/// not persisted at all (a different bug than exceeding the bound).
fn assert_bound(what: &str, (fl, fe): (u64, u64), max_flushes: u64, max_fences: u64) {
    assert!(
        fe >= 1,
        "{what}: a durable operation must fence at least once (got 0)"
    );
    assert!(
        fl <= max_flushes && fe <= max_fences,
        "{what}: {fl} flushes (bound {max_flushes}), {fe} fences (bound {max_fences}) — \
         a policy or structure change raised the constant per-op persistence cost"
    );
}

/// Prefills a set with the even keys below `2 * PREFILL`, then measures one
/// insert of an absent key and one remove of a present key.
fn set_bounds<S: DurableSet<u64, u64>>(
    name: &str,
    make: impl FnOnce() -> S,
    max: (u64, u64, u64, u64),
) {
    let s = make();
    for k in 0..PREFILL {
        assert!(s.insert(k * 2, k));
    }
    let ins = counted(|| assert!(s.insert(33, 33)));
    let rem = counted(|| assert!(s.remove(16)));
    let (ins_fl, ins_fe, rem_fl, rem_fe) = max;
    assert_bound(&format!("{name} insert"), ins, ins_fl, ins_fe);
    assert_bound(&format!("{name} remove"), rem, rem_fl, rem_fe);
}

// Observed: insert 6/3 (new node + pred link; Protocol 1's parent flush
// dedupes into `makePersistent` when the parent is also a field), remove
// 6/4 (mark + unlink + retire bookkeeping). The flush count wobbles by one
// with allocator slab state.
#[test]
fn list_bounds() {
    set_bounds("list", HarrisList::<u64, u64, D>::new, (8, 4, 8, 5));
}

// Observed: insert 4/3, remove 5/4 — one bucket is one Harris list (the
// insert is cheaper than the list's because the bucket is near-empty).
#[test]
fn hash_bounds() {
    set_bounds("hash", || HashMapDs::<u64, u64, D>::new(64), (6, 4, 7, 5));
}

// Observed: insert 7/3, remove 6/4 — and, unlike the pre-sanitizer
// bounds, *independent* of the tower-height draw: only `next[0]` is
// durable, the upper tower links are volatile raw CASes that cost no
// persistence instructions (the vet sanitizer pins this — they are
// declared volatile-by-design at allocation).
#[test]
fn skiplist_bounds() {
    set_bounds("skiplist", SkipList::<u64, u64, D>::new, (12, 5, 12, 6));
}

// Observed: insert 15/5, remove 11/6 — internal+leaf node pair plus the
// Info descriptor, and the help path flushes descriptor state again while
// completing the operation it itself installed.
#[test]
fn ellen_bst_bounds() {
    set_bounds("ellen-bst", EllenBst::<u64, u64, D>::new, (18, 7, 15, 8));
}

// Observed: insert 7/3, remove 10/4 — internal+leaf pair, edge-CAS
// based deletion (no descriptors, but the two-step flag+prune remove
// persists both edges).
#[test]
fn nm_bst_bounds() {
    set_bounds("nm-bst", NmBst::<u64, u64, D>::new, (10, 5, 13, 6));
}

// Observed: enqueue 3/3, dequeue 3/2 (the tail shortcut is volatile — it
// costs nothing persistent — and enqueue no longer flushes the anchor head:
// the appended node is reachable through already-persisted links).
#[test]
fn queue_bounds() {
    let q: MsQueue<u64, D> = MsQueue::new();
    for v in 0..PREFILL {
        q.enqueue(v);
    }
    let enq = counted(|| q.enqueue(99));
    let deq = counted(|| assert!(q.dequeue().is_some()));
    assert_bound("queue enqueue", enq, 5, 4);
    assert_bound("queue dequeue", deq, 5, 4);
}

// Observed: push 3/3, pop 2/2.
#[test]
fn stack_bounds() {
    let s: TreiberStack<u64, D> = TreiberStack::new();
    for v in 0..PREFILL {
        s.push(v);
    }
    let push = counted(|| s.push(99));
    let pop = counted(|| assert!(s.pop().is_some()));
    assert_bound("stack push", push, 5, 4);
    assert_bound("stack pop", pop, 4, 4);
}

/// Asserts the detectable-vs-plain overhead of one operation: the entire
/// price of detectability is the descriptor — the arm (one cache line,
/// flushed as one range) and the result publish — so at most **+2 flushes
/// and at most `max_d_fences` fences**. On the effectful paths that is
/// **+0**: arming and publishing ride the operation's own fences. On the
/// no-op paths it is **+1**: the plain no-op has nothing pending at return
/// so its closing fence is elided entirely, while the detectable no-op
/// still needs one fence to make its arm+publish words durable. Signed,
/// because the allocator's slab state can wobble the plain insert by a
/// flush.
fn assert_detectable_delta(
    what: &str,
    plain: (u64, u64),
    detectable: (u64, u64),
    max_d_fences: i64,
) {
    let d_flushes = detectable.0 as i64 - plain.0 as i64;
    let d_fences = detectable.1 as i64 - plain.1 as i64;
    assert!(
        d_fences <= max_d_fences,
        "{what}: detectable path added {d_fences} fences (plain {plain:?}, \
         detectable {detectable:?}) — bound is {max_d_fences}"
    );
    assert!(
        d_flushes <= 2,
        "{what}: detectable path added {d_flushes} flushes (plain {plain:?}, \
         detectable {detectable:?}) — bound is arm + publish = 2"
    );
}

/// Elementwise minimum over a few samples of the same operation shape:
/// cancels the allocator's slab wobble (which only ever *adds* a flush), so
/// the plain/detectable comparison sees each path's floor cost.
fn min_counted(samples: impl Iterator<Item = (u64, u64)>) -> (u64, u64) {
    samples
        .reduce(|a, b| (a.0.min(b.0), a.1.min(b.1)))
        .expect("at least one sample")
}

/// Prefills a set, then measures matching plain/detectable insert and
/// remove pairs and pins the descriptor overhead of each.
fn detectable_delta_bounds<S: DurableSet<u64, u64>>(name: &str, make: impl FnOnce() -> S) {
    let table: OpTable<Count<Noop>> = OpTable::new(1);
    let mut tok = table.token(0);
    let s = make();
    for k in 0..PREFILL {
        assert!(s.insert(k * 2, k));
    }
    // Odd keys are absent; interleave the sample key ranges so neither path
    // systematically lands on a fresh allocator slab.
    let plain_ins = min_counted((0..4u64).map(|i| counted(|| assert!(s.insert(101 + 8 * i, 1)))));
    let det_ins = min_counted(
        (0..4u64).map(|i| counted(|| assert!(s.insert_detectable(&mut tok, 103 + 8 * i, 1).unwrap().1))),
    );
    let plain_rem = min_counted((0..4u64).map(|i| counted(|| assert!(s.remove(16 + 8 * i)))));
    let det_rem = min_counted(
        (0..4u64).map(|i| counted(|| assert!(s.remove_detectable(&mut tok, 18 + 8 * i).unwrap().1))),
    );
    assert_detectable_delta(&format!("{name} insert"), plain_ins, det_ins, 0);
    assert_detectable_delta(&format!("{name} remove"), plain_rem, det_rem, 0);
    // The no-op paths arm and publish together under the closing fence —
    // which only the detectable run issues (the plain no-op elides it).
    let plain_dup = counted(|| assert!(!s.insert(101, 9)));
    let det_dup = counted(|| assert!(!s.insert_detectable(&mut tok, 103, 9).unwrap().1));
    assert_detectable_delta(&format!("{name} duplicate insert"), plain_dup, det_dup, 1);
}

// Observed: +2 flushes / +0 fences on the effectful paths, +2/+1 on the
// duplicate-insert path (arm and publish share the slot's cache line but
// are separate flush instructions; the fence is the descriptor's own —
// the plain no-op doesn't pay one at all).
#[test]
fn list_detectable_delta() {
    detectable_delta_bounds("list", HarrisList::<u64, u64, D>::new);
}

#[test]
fn hash_detectable_delta() {
    detectable_delta_bounds("hash", || HashMapDs::<u64, u64, D>::new(64));
}

// ---- SOFT: the minimal-flushing bound is *exact*, not a tripwire ----------

/// Measures one SOFT insert, remove, hit-get and miss-get and pins their
/// **exact** persistence costs: an update is one flush (the node's validity
/// header, one 64-aligned cache line) plus the closing fence; a lookup or
/// no-op update costs **nothing** — it flushes nothing, and the closing
/// fence is elided because the thread has no flush pending. Unlike the
/// NvTraverse bounds above there is no slack — SOFT's whole claim is that
/// these are constants of the protocol, not of allocator state.
fn soft_exact_bounds<S: DurableSet<u64, u64>>(name: &str, make: impl FnOnce() -> S) {
    let s = make();
    for k in 0..PREFILL {
        assert!(s.insert(k * 2, k));
    }
    let ins = counted(|| assert!(s.insert(33, 33)));
    let rem = counted(|| assert!(s.remove(16)));
    let hit = counted(|| assert_eq!(s.get(14), Some(7)));
    let miss = counted(|| assert_eq!(s.get(15), None));
    let dup = counted(|| assert!(!s.insert(33, 99)));
    assert_eq!(ins, (1, 1), "{name} insert: must be exactly 1 flush + 1 fence");
    assert_eq!(rem, (1, 1), "{name} remove: must be exactly 1 flush + 1 fence");
    assert_eq!(hit, (0, 0), "{name} get(hit): zero persistence instructions");
    assert_eq!(miss, (0, 0), "{name} get(miss): zero persistence instructions");
    assert_eq!(dup, (0, 0), "{name} duplicate insert: no effect, no cost");
}

#[test]
fn soft_list_bounds() {
    soft_exact_bounds("soft-list", SoftList::<u64, u64, SD>::new);
}

#[test]
fn soft_hash_bounds() {
    soft_exact_bounds("soft-hash", || SoftHash::<u64, u64, SD>::new(64));
}

/// The `soft_vs_nvt` figure's acceptance condition, pinned as a test: on
/// the same state shape, SOFT's update costs **strictly fewer flushes**
/// than the NVTraverse transformation, for both the list and the hash
/// table. (NVTraverse must flush the new node *and* critical-window links;
/// SOFT flushes one validity header.)
fn assert_soft_strictly_cheaper(name: &str, nvt: (u64, u64), soft: (u64, u64)) {
    assert!(
        soft.0 < nvt.0,
        "{name}: SOFT must flush strictly less than NvTraverse \
         (soft {soft:?} vs nvt {nvt:?})"
    );
}

#[test]
fn soft_beats_nvtraverse_flush_counts() {
    fn update_costs<S: DurableSet<u64, u64>>(make: impl FnOnce() -> S) -> ((u64, u64), (u64, u64)) {
        let s = make();
        for k in 0..PREFILL {
            assert!(s.insert(k * 2, k));
        }
        let ins = counted(|| assert!(s.insert(33, 33)));
        let rem = counted(|| assert!(s.remove(16)));
        (ins, rem)
    }
    let (nvt_ins, nvt_rem) = update_costs(HarrisList::<u64, u64, D>::new);
    let (soft_ins, soft_rem) = update_costs(SoftList::<u64, u64, SD>::new);
    assert_soft_strictly_cheaper("list insert", nvt_ins, soft_ins);
    assert_soft_strictly_cheaper("list remove", nvt_rem, soft_rem);

    let (nvt_ins, nvt_rem) = update_costs(|| HashMapDs::<u64, u64, D>::new(64));
    let (soft_ins, soft_rem) = update_costs(|| SoftHash::<u64, u64, SD>::new(64));
    assert_soft_strictly_cheaper("hash insert", nvt_ins, soft_ins);
    assert_soft_strictly_cheaper("hash remove", nvt_rem, soft_rem);
}

// ---- batch fence amortization: N ops, one closing fence -------------------

/// Runs the same `B` update operations on two identically prefilled
/// structures — once op-by-op, once inside a [`FenceBatch`] — and returns
/// `(unbatched, batched)` exact counts. Identical key sequences on fresh
/// identical structures make the counts comparable flush-for-flush: the
/// only permitted difference is the deferred closing fences.
fn batch_vs_singles<S: DurableSet<u64, u64>>(
    make: impl Fn() -> S,
    ops: u64,
) -> ((u64, u64), (u64, u64)) {
    let run = |batched: bool| {
        let s = make();
        for k in 0..PREFILL {
            assert!(s.insert(k * 2, k));
        }
        counted(|| {
            let scope = batched.then(FenceBatch::<Count<Noop>>::begin);
            for i in 0..ops {
                assert!(s.insert(101 + 2 * i, i));
            }
            drop(scope); // the batch durability point: one fence for all ops
        })
    };
    (run(false), run(true))
}

/// NVTraverse: the closing fence is one of each op's constant fence count,
/// so a B-op batch costs exactly B−1 fences less than B singles. Fence
/// counts are exact; flush counts are only near-equal, because the two
/// runs' heap-allocated nodes land at different addresses and a node that
/// straddles a cache line costs `flush_range` one extra flush (the same
/// wobble the per-op bounds above document).
#[test]
fn nvtraverse_batch_saves_exactly_b_minus_one_fences() {
    const B: u64 = 16;
    let (unbatched, batched) = batch_vs_singles(|| HashMapDs::<u64, u64, D>::new(64), B);
    assert_eq!(
        batched.1,
        unbatched.1 - (B - 1),
        "B-op batch must cost exactly B-1 fewer fences (unbatched {unbatched:?}, \
         batched {batched:?})"
    );
    assert!(
        batched.0.abs_diff(unbatched.0) <= B / 2,
        "batching must not change flush counts beyond line-straddle wobble \
         (unbatched {unbatched:?}, batched {batched:?})"
    );
    assert!(batched.1 < unbatched.1, "batched strictly cheaper than B singles");
}

/// SOFT: an update's *only* fence is the closing one, so a B-op batch is
/// exactly B flushes + **1** fence — the fences/op = 1/B floor the
/// `kv_service` figure converges to. Lookups add nothing.
#[test]
fn soft_batch_hits_the_one_fence_floor() {
    const B: u64 = 16;
    let (unbatched, batched) = batch_vs_singles(|| SoftHash::<u64, u64, SD>::new(64), B);
    assert_eq!(unbatched, (B, B), "B soft singles: B flushes, B fences");
    assert_eq!(batched, (B, 1), "B-op soft batch: B flushes, exactly 1 fence");

    // A batch mixing lookups in pays for the updates only.
    let s = SoftHash::<u64, u64, SD>::new(64);
    for k in 0..PREFILL {
        assert!(s.insert(k * 2, k));
    }
    let mixed = counted(|| {
        let scope = FenceBatch::<Count<Noop>>::begin();
        for i in 0..B {
            assert!(s.insert(101 + 2 * i, i));
            assert_eq!(s.get(14), Some(7));
        }
        assert_eq!(scope.close(), 2 * B, "every op defers its closing fence");
    });
    assert_eq!(mixed, (B, 1), "lookups add no flushes and share the one fence");
}

/// The same arithmetic through the **server's** batch executor
/// (`run_batch` over a real `MmapBackend`-pooled `KvStore`): a B-op batch
/// pays exactly one closing fence at its durability point, for both
/// policies, and saves exactly B−1 fences against the same ops unbatched.
///
/// Pool-backed operations attribute their persistence traffic to the
/// owning pool's metric set (the `PoolCtx::enter` bracket), while the
/// batch's shared closing fence is issued outside any op and lands in the
/// caller's attribution — so the true per-run cost is the **sum** of the
/// thread-attributed count and the store's pool-snapshot delta.
#[test]
fn server_batch_path_pays_one_closing_fence() {
    use nvtraverse_server::{exec_data_op, run_batch, ConnTokens, KvStore, PolicyKind, Request};

    if !obs::enabled() {
        return; // MmapBackend attribution is off; nothing to count
    }
    const B: u64 = 8;
    for policy in [PolicyKind::NvTraverse, PolicyKind::Soft] {
        let run = |batched: bool| {
            let dir = std::env::temp_dir().join(format!(
                "nvt-persist-bounds-srv-{}-{}-{batched}",
                std::process::id(),
                policy.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = KvStore::create(&dir, policy, 2, 4 << 20).unwrap();
            let mut tokens = ConnTokens::new();
            for k in 0..PREFILL {
                assert!(store.try_insert(k * 2, k).unwrap());
            }
            let reqs: Vec<Request> = (0..B).map(|i| Request::Insert(101 + 2 * i, i)).collect();
            let pools_before = store.metrics_snapshot();
            let ambient = counted(|| {
                if batched {
                    let (replies, stats) = run_batch(&store, &mut tokens, &reqs);
                    assert_eq!(replies.len(), B as usize);
                    assert_eq!(stats.closing_fences, 1);
                } else {
                    for r in &reqs {
                        exec_data_op(&store, &mut tokens, r);
                    }
                }
            });
            let pools_after = store.metrics_snapshot();
            let counts = (
                ambient.0 + pools_after.total_flushes() - pools_before.total_flushes(),
                ambient.1 + pools_after.total_fences() - pools_before.total_fences(),
            );
            store.close().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            counts
        };
        let unbatched = run(false);
        let batched = run(true);
        assert_eq!(
            batched.1,
            unbatched.1 - (B - 1),
            "{policy:?}: server batch must save exactly B-1 fences \
             (unbatched {unbatched:?}, batched {batched:?})"
        );
        assert_eq!(batched.0, unbatched.0, "{policy:?}: flush counts unchanged by batching");
        assert!(batched.1 < unbatched.1, "{policy:?}: batched strictly cheaper");
        if policy == PolicyKind::Soft {
            assert_eq!(batched.1, 1, "SOFT batch: exactly the one closing fence");
        }
    }
}

/// The bounds above are *attributed* counts; this pins the machinery they
/// rely on — the same operations, measured into two different private sets,
/// see identical counts, and an unattributed interleaved operation lands in
/// neither.
#[test]
fn attribution_is_exact_and_private() {
    let list = HarrisList::<u64, u64, D>::new();
    for k in 0..PREFILL {
        assert!(list.insert(k * 2, k));
    }
    let a = counted(|| assert!(list.insert(101, 1)));
    assert!(list.remove(101), "unattributed op (counted nowhere)");
    let b = counted(|| assert!(list.insert(101, 1)));
    assert_eq!(a, b, "same op, same state shape ⇒ identical exact counts");
}
