//! In-process pool lifecycle: create a structure in a pool file, let go of
//! every volatile handle, reopen the pool, and find the data again.
//!
//! These tests cover the single-process half of the pool story; the
//! cross-process half (surviving SIGKILL) is `tests/crash_process.rs`.
//!
//! Installing a pool as the process-wide allocator is, like `libvmmalloc`,
//! process-global state — so every test here serializes on one mutex.

use nvtraverse::policy::NvTraverse;
use nvtraverse::{DurableSet, PooledSet};
use nvtraverse_pmem::MmapBackend;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use std::path::PathBuf;
use std::sync::Mutex;

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
type PooledMap = HashMapDs<u64, u64, NvTraverse<MmapBackend>>;

static SERIAL: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nvt-lifecycle-{}-{}.pool",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn list_survives_close_and_reopen() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("list");

    {
        let list = PooledSet::<PooledList>::create(&path, 4 << 20, "set").unwrap();
        for k in 0..200u64 {
            assert!(list.insert(k, k * 10));
        }
        for k in (0..200u64).step_by(4) {
            assert!(list.remove(k));
        }
        assert_eq!(list.len(), 150);
        list.close().unwrap();
    }

    // Every volatile handle is gone; only the file remains. Reopen.
    {
        let list = PooledSet::<PooledList>::open(&path, "set").unwrap();
        assert_eq!(list.check_consistency(false).unwrap(), 150);
        for k in 0..200u64 {
            if k % 4 == 0 {
                assert_eq!(list.get(k), None, "removed key {k} resurrected");
            } else {
                assert_eq!(list.get(k), Some(k * 10), "lost key {k}");
            }
        }
        // The reopened structure is fully usable.
        assert!(list.insert(1000, 1));
        assert!(list.remove(1000));
        list.close().unwrap();
    }

    // And once more, to prove reopen does not degrade the pool.
    let list = PooledSet::<PooledList>::open(&path, "set").unwrap();
    assert_eq!(list.len(), 150);
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn hash_survives_close_and_reopen() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("hash");

    {
        let map = PooledSet::<PooledMap>::create(&path, 8 << 20, "kv").unwrap();
        for k in 0..500u64 {
            assert!(map.insert(k, k ^ 0xABCD));
        }
        for k in (0..500u64).step_by(3) {
            assert!(map.remove(k));
        }
        map.close().unwrap();
    }

    let map = PooledSet::<PooledMap>::open(&path, "kv").unwrap();
    map.check_consistency(false).unwrap();
    for k in 0..500u64 {
        if k % 3 == 0 {
            assert_eq!(map.get(k), None);
        } else {
            assert_eq!(map.get(k), Some(k ^ 0xABCD));
        }
    }
    drop(map);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_root_and_wrong_name_fail_cleanly() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("wrongname");
    {
        let list = PooledSet::<PooledList>::create(&path, 1 << 20, "right").unwrap();
        list.insert(1, 1);
        list.close().unwrap();
    }
    let err = PooledSet::<PooledList>::open(&path, "wrong").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    // The right name still works afterwards.
    let list = PooledSet::<PooledList>::open(&path, "right").unwrap();
    assert_eq!(list.get(1), Some(1));
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_or_create_roundtrip() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("ooc");
    {
        let list = PooledSet::<PooledList>::open_or_create(&path, 1 << 20, "s").unwrap();
        assert!(list.is_empty());
        list.insert(7, 70);
        list.close().unwrap();
    }
    let list = PooledSet::<PooledList>::open_or_create(&path, 1 << 20, "s").unwrap();
    assert_eq!(list.get(7), Some(70));
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_or_create_heals_interrupted_creation() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("heal");

    // State 1: a crash between Pool::create and root registration — the
    // pool is valid but the named structure does not exist.
    nvtraverse::pool::Pool::create(&path, 1 << 20).unwrap();
    let list = PooledSet::<PooledList>::open_or_create(&path, 1 << 20, "s")
        .expect("must finish the interrupted creation, not fail forever");
    list.insert(5, 50);
    list.close().unwrap();
    let list = PooledSet::<PooledList>::open(&path, "s").unwrap();
    assert_eq!(list.get(5), Some(50));
    drop(list);
    std::fs::remove_file(&path).unwrap();

    // State 2: a crash before the pool magic was persisted — an all-zero
    // file. open_or_create must recreate rather than fail forever.
    std::fs::write(&path, vec![0u8; 1 << 20]).unwrap();
    let list = PooledSet::<PooledList>::open_or_create(&path, 1 << 20, "s").unwrap();
    assert!(list.is_empty());
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn two_structures_share_one_pool() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("two");
    {
        let a = PooledSet::<PooledList>::create(&path, 4 << 20, "a").unwrap();
        // Second structure in the same pool: create via the pool handle.
        use nvtraverse::PoolAttach;
        let b = PooledList::create_in_pool(a.pool(), "b").unwrap();
        a.insert(1, 100);
        b.insert(2, 200);
        a.close().unwrap();
        // `b` is deliberately forgotten (its nodes live in the pool file and
        // must NOT be freed by a destructor).
        std::mem::forget(b);
    }
    let a = PooledSet::<PooledList>::open(&path, "a").unwrap();
    use nvtraverse::PoolAttach;
    let b = unsafe { PooledList::attach_to_pool(a.pool(), "b") }.unwrap();
    b.recover_attached();
    assert_eq!(a.get(1), Some(100));
    assert_eq!(a.get(2), None, "structures must be disjoint");
    assert_eq!(b.get(2), Some(200));
    std::mem::forget(b);
    drop(a);
    std::fs::remove_file(&path).unwrap();
}
