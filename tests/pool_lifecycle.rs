//! In-process pool lifecycle: create a structure in a pool file, let go of
//! every volatile handle, reopen the pool, and find the data again.
//!
//! These tests cover the single-process half of the pool story; the
//! cross-process half (surviving SIGKILL) is `tests/crash_process.rs`.
//!
//! Pools are first-class (per-pool allocation contexts, no process-global
//! install), so these tests run concurrently — each on its own pool file,
//! with no serializing mutex.

use nvtraverse::policy::{NvTraverse, Soft};
use nvtraverse::pool::Pool;
use nvtraverse::{DurableSet, PooledHandle, TypedRoots};
use nvtraverse_pmem::MmapBackend;
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::pqueue::PriorityQueue;
use nvtraverse_structures::queue::MsQueue;
use nvtraverse_structures::skiplist::SkipList;
use nvtraverse_structures::soft_hash::SoftHash;
use nvtraverse_structures::soft_list::SoftList;
use nvtraverse_structures::stack::TreiberStack;
use std::path::PathBuf;

mod common;
use common::{create_pooled, open_or_create_pooled, open_pooled};

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
type PooledMap = HashMapDs<u64, u64, NvTraverse<MmapBackend>>;
type PooledSkip = SkipList<u64, u64, NvTraverse<MmapBackend>>;
type PooledEllen = EllenBst<u64, u64, NvTraverse<MmapBackend>>;
type PooledNm = NmBst<u64, u64, NvTraverse<MmapBackend>>;
type PooledQueue = MsQueue<u64, NvTraverse<MmapBackend>>;
type PooledStack = TreiberStack<u64, NvTraverse<MmapBackend>>;
type PooledPq = PriorityQueue<u64, u64, NvTraverse<MmapBackend>>;
type PooledSoftList = SoftList<u64, u64, Soft<MmapBackend>>;
type PooledSoftHash = SoftHash<u64, u64, Soft<MmapBackend>>;

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nvt-lifecycle-{}-{}.pool",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn list_survives_close_and_reopen() {
    let path = tmp("list");

    {
        let list = create_pooled::<PooledList>(&path, 4 << 20, "set").unwrap();
        for k in 0..200u64 {
            assert!(list.insert(k, k * 10));
        }
        for k in (0..200u64).step_by(4) {
            assert!(list.remove(k));
        }
        assert_eq!(list.len(), 150);
        list.close().unwrap();
    }

    // Every volatile handle is gone; only the file remains. Reopen.
    {
        let list = open_pooled::<PooledList>(&path, "set").unwrap();
        assert_eq!(list.check_consistency(false).unwrap(), 150);
        for k in 0..200u64 {
            if k % 4 == 0 {
                assert_eq!(list.get(k), None, "removed key {k} resurrected");
            } else {
                assert_eq!(list.get(k), Some(k * 10), "lost key {k}");
            }
        }
        // The reopened structure is fully usable.
        assert!(list.insert(1000, 1));
        assert!(list.remove(1000));
        list.close().unwrap();
    }

    // And once more, to prove reopen does not degrade the pool.
    let list = open_pooled::<PooledList>(&path, "set").unwrap();
    assert_eq!(list.len(), 150);
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn hash_survives_close_and_reopen() {
    let path = tmp("hash");

    {
        let map = create_pooled::<PooledMap>(&path, 8 << 20, "kv").unwrap();
        for k in 0..500u64 {
            assert!(map.insert(k, k ^ 0xABCD));
        }
        for k in (0..500u64).step_by(3) {
            assert!(map.remove(k));
        }
        map.close().unwrap();
    }

    let map = open_pooled::<PooledMap>(&path, "kv").unwrap();
    map.check_consistency(false).unwrap();
    for k in 0..500u64 {
        if k % 3 == 0 {
            assert_eq!(map.get(k), None);
        } else {
            assert_eq!(map.get(k), Some(k ^ 0xABCD));
        }
    }
    drop(map);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn skiplist_survives_close_and_reopen_with_tower_rebuild() {
    let path = tmp("skiplist");

    {
        let s = create_pooled::<PooledSkip>(&path, 8 << 20, "skip").unwrap();
        for k in 0..600u64 {
            assert!(s.insert(k, k * 3));
        }
        for k in (0..600u64).step_by(3) {
            assert!(s.remove(k));
        }
        s.close().unwrap();
    }

    let s = open_pooled::<PooledSkip>(&path, "skip").unwrap();
    // check_consistency(false) audits the towers rebuilt by recovery: every
    // tower link must reference a live bottom node, sorted per level.
    assert_eq!(s.check_consistency(false).unwrap(), 400);
    for k in 0..600u64 {
        if k % 3 == 0 {
            assert_eq!(s.get(k), None, "removed key {k} resurrected");
        } else {
            assert_eq!(s.get(k), Some(k * 3), "lost key {k}");
        }
    }
    // Fully usable, including fresh tower draws past the reseeded sequence.
    for k in 1000..1100u64 {
        assert!(s.insert(k, k));
    }
    s.check_consistency(false).unwrap();
    s.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn ellen_bst_survives_close_and_reopen() {
    let path = tmp("ellen");

    {
        let t = create_pooled::<PooledEllen>(&path, 8 << 20, "tree").unwrap();
        for k in 0..400u64 {
            assert!(t.insert(k, k ^ 0xE11E));
        }
        for k in (0..400u64).step_by(5) {
            assert!(t.remove(k));
        }
        t.close().unwrap();
    }

    let t = open_pooled::<PooledEllen>(&path, "tree").unwrap();
    assert_eq!(t.check_consistency(true).unwrap(), 320);
    for k in 0..400u64 {
        if k % 5 == 0 {
            assert_eq!(t.get(k), None);
        } else {
            assert_eq!(t.get(k), Some(k ^ 0xE11E));
        }
    }
    assert!(t.insert(1000, 1));
    assert!(t.remove(1000));
    t.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn nm_bst_survives_close_and_reopen() {
    let path = tmp("nm");

    {
        let t = create_pooled::<PooledNm>(&path, 8 << 20, "tree").unwrap();
        for k in 0..400u64 {
            assert!(t.insert(k, k.rotate_left(17)));
        }
        for k in (0..400u64).step_by(7) {
            assert!(t.remove(k));
        }
        t.close().unwrap();
    }

    let t = open_pooled::<PooledNm>(&path, "tree").unwrap();
    assert_eq!(t.check_consistency(true).unwrap(), 400 - 400_usize.div_ceil(7));
    for k in 0..400u64 {
        if k % 7 == 0 {
            assert_eq!(t.get(k), None);
        } else {
            assert_eq!(t.get(k), Some(k.rotate_left(17)));
        }
    }
    assert!(t.insert(1000, 1));
    t.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn queue_survives_close_and_reopen_with_tail_rebuild() {
    let path = tmp("queue");

    {
        let q = create_pooled::<PooledQueue>(&path, 4 << 20, "fifo").unwrap();
        for v in 0..100u64 {
            q.enqueue(v);
        }
        for v in 0..25u64 {
            assert_eq!(q.dequeue(), Some(v));
        }
        q.close().unwrap();
    }

    let q = open_pooled::<PooledQueue>(&path, "fifo").unwrap();
    assert_eq!(q.iter_snapshot(), (25..100u64).collect::<Vec<_>>());
    // The recovered tail shortcut must land new values at the real end.
    q.enqueue(100);
    assert_eq!(q.dequeue(), Some(25));
    assert_eq!(q.len(), 75);
    assert_eq!(*q.iter_snapshot().last().unwrap(), 100);
    q.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stack_survives_close_and_reopen() {
    let path = tmp("stack");

    {
        let s = create_pooled::<PooledStack>(&path, 4 << 20, "lifo").unwrap();
        for v in 0..60u64 {
            s.push(v);
        }
        for v in (45..60u64).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        s.close().unwrap();
    }

    let s = open_pooled::<PooledStack>(&path, "lifo").unwrap();
    assert_eq!(s.iter_snapshot(), (0..45u64).rev().collect::<Vec<_>>());
    s.push(99);
    assert_eq!(s.pop(), Some(99));
    assert_eq!(s.pop(), Some(44));
    assert_eq!(s.len(), 44);
    s.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn priority_queue_survives_close_and_reopen() {
    let path = tmp("pq");

    {
        let pq = create_pooled::<PooledPq>(&path, 4 << 20, "heap").unwrap();
        for p in [9u64, 2, 7, 4, 11, 1] {
            assert!(pq.push(p, p * 100));
        }
        assert_eq!(pq.pop_min(), Some((1, 100)));
        pq.close().unwrap();
    }

    let pq = open_pooled::<PooledPq>(&path, "heap").unwrap();
    assert_eq!(pq.check_consistency(false).unwrap(), 5);
    assert_eq!(pq.pop_min(), Some((2, 200)));
    assert_eq!(pq.peek_min(), Some((4, 400)));
    assert!(pq.push(3, 300), "usable after reopen");
    assert_eq!(pq.pop_min(), Some((3, 300)));
    pq.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_root_and_wrong_name_fail_cleanly() {
    let path = tmp("wrongname");
    {
        let list = create_pooled::<PooledList>(&path, 1 << 20, "right").unwrap();
        list.insert(1, 1);
        list.close().unwrap();
    }
    let err = open_pooled::<PooledList>(&path, "wrong").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    // The right name still works afterwards.
    let list = open_pooled::<PooledList>(&path, "right").unwrap();
    assert_eq!(list.get(1), Some(1));
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_or_create_roundtrip() {
    let path = tmp("ooc");
    {
        let list = open_or_create_pooled::<PooledList>(&path, 1 << 20, "s").unwrap();
        assert!(list.is_empty());
        list.insert(7, 70);
        list.close().unwrap();
    }
    let list = open_or_create_pooled::<PooledList>(&path, 1 << 20, "s").unwrap();
    assert_eq!(list.get(7), Some(70));
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_or_create_heals_interrupted_creation() {
    let path = tmp("heal");

    // State 1: a crash between Pool::create and root registration — the
    // pool is valid but the named structure does not exist.
    nvtraverse::pool::Pool::builder().path(&path).capacity(1 << 20).create().unwrap();
    let list = open_or_create_pooled::<PooledList>(&path, 1 << 20, "s")
        .expect("must finish the interrupted creation, not fail forever");
    list.insert(5, 50);
    list.close().unwrap();
    let list = open_pooled::<PooledList>(&path, "s").unwrap();
    assert_eq!(list.get(5), Some(50));
    drop(list);
    std::fs::remove_file(&path).unwrap();

    // State 2: a crash before the pool magic was persisted — an all-zero
    // file. open_or_create must recreate rather than fail forever.
    std::fs::write(&path, vec![0u8; 1 << 20]).unwrap();
    let list = open_or_create_pooled::<PooledList>(&path, 1 << 20, "s").unwrap();
    assert!(list.is_empty());
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn deliberately_orphaned_allocation_is_swept_on_reopen() {
    let path = tmp("orphan");

    let orphan_count;
    {
        let list = create_pooled::<PooledList>(&path, 4 << 20, "set").unwrap();
        for k in 0..50u64 {
            assert!(list.insert(k, k));
        }
        // Strand blocks the way a crash does: allocate from the pool and
        // register them nowhere. A clean close cannot return these (no
        // collector ever saw them); only the reopen mark-sweep can.
        let sizes = [24usize, 100, 1000, 70_000];
        orphan_count = sizes.len();
        for size in sizes {
            list.pool().alloc(size, 8).unwrap();
        }
        list.close().unwrap();
    }

    let list = open_pooled::<PooledList>(&path, "set").unwrap();
    let report = list.pool().recovery_report();
    assert!(report.gc_ran, "single traced root: the GC must run");
    assert_eq!(
        report.reclaimed_blocks, orphan_count,
        "the sweep must reclaim exactly the orphans (clean close drained the rest)"
    );
    assert!(
        report.reclaimed_bytes >= (24 + 100 + 1000 + 70_000) as u64,
        "reclaimed bytes must cover the orphans' payloads"
    );
    // The report breaks the recovery down by phase: the open really walked
    // the heap, and `gc_nanos` is by definition the mark+sweep portion —
    // the breakdown must account for it exactly.
    assert!(report.phases.heap_walk_nanos > 0, "reopen must time the heap walk");
    assert_eq!(
        report.phases.mark_nanos + report.phases.sweep_nanos,
        report.gc_nanos,
        "phase breakdown must sum exactly to gc_nanos"
    );
    // Per-root mark counts: one traced root, and it marks the head
    // sentinel plus the 50 live nodes (the orphans are unreachable by
    // construction, so they are not marked — they are swept).
    assert_eq!(
        report.root_marks,
        vec![("set".to_string(), 51)],
        "per-root mark count must be exactly the reachable block count"
    );
    // The reachable data is untouched…
    assert_eq!(list.check_consistency(false).unwrap(), 50);
    for k in 0..50u64 {
        assert_eq!(list.get(k), Some(k), "GC must never free reachable nodes");
    }
    // …and the footprint is exact again: head sentinel + 50 nodes.
    assert_eq!(list.pool().live_offsets().len(), 51);
    // The swept blocks really are reusable (oversize included).
    let p = list.pool().alloc(70_000, 8).unwrap();
    unsafe { list.pool().dealloc(p) };
    list.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

/// A pool whose roots lack a registered tracer must NOT be collected:
/// reachability is unprovable, so the conservative answer is to keep
/// every allocated block.
#[test]
fn gc_skips_pools_with_untraceable_roots() {
    let path = tmp("no-tracer");

    let off;
    {
        let pool = nvtraverse::pool::Pool::builder().path(&path).capacity(1 << 20).create().unwrap();
        let p = pool.alloc(64, 8).unwrap();
        off = pool.offset_of(p);
        // A raw root no structure type describes (like the storm test's
        // slot array): nobody registers a tracer for it.
        pool.set_root_offset("raw-root", off).unwrap();
    }

    let pool = nvtraverse::pool::Pool::builder().path(&path).open().unwrap();
    let report = pool.recovery_report();
    assert!(!report.gc_ran, "an untraceable root must disable the GC");
    assert_eq!(report.reclaimed_blocks, 0);
    assert_eq!(
        pool.live_offsets(),
        vec![off - 16],
        "the unprovable block must survive untouched"
    );
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// A failed `create` against somebody else's pool file must not leave (or
/// overwrite) a GC tracer for that pool's roots: the next open would run a
/// wrong-typed trace over live data.
#[test]
fn failed_create_does_not_poison_the_tracer_registry() {
    let path = tmp("foreign");

    // The "foreign" pool: a queue registered under the name a list will
    // later (wrongly) try to claim.
    let q = create_pooled::<PooledQueue>(&path, 1 << 20, "r").unwrap();
    for v in 0..20u64 {
        q.enqueue(v);
    }
    q.close().unwrap();

    // Wrong-typed create fails on the existing file — and must not have
    // registered (or replaced) a tracer for (path, "r").
    assert!(create_pooled::<PooledList>(&path, 1 << 20, "r").is_err());

    // A raw reopen still GCs with the queue's own tracer (from its create)
    // and the queue's data is intact.
    let pool = nvtraverse::pool::Pool::builder().path(&path).open().unwrap();
    assert!(pool.recovery_report().gc_ran);
    assert_eq!(pool.recovery_report().reclaimed_blocks, 0);
    drop(pool);
    let q = open_pooled::<PooledQueue>(&path, "r").unwrap();
    assert_eq!(q.iter_snapshot(), (0..20u64).collect::<Vec<_>>());
    q.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn two_structures_share_one_pool() {
    let path = tmp("two");
    {
        // Secondary roots are first-class now: just ask the pool for a
        // second named root — no create/attach/adopt dance.
        let pool = Pool::builder().path(&path).capacity(4 << 20).create().unwrap();
        let a = pool.create_root::<PooledList>("a").unwrap();
        let b = pool.create_root::<PooledList>("b").unwrap();
        a.insert(1, 100);
        b.insert(2, 200);
        b.close().unwrap();
        a.close().unwrap();
    }
    let pool = Pool::builder().path(&path).open().unwrap();
    // Multi-root GC: both tracers were registered by the creation above
    // (same process), so the open itself ran the mark-sweep eagerly.
    assert!(pool.recovery_report().gc_ran);
    assert_eq!(pool.recovery_report().reclaimed_blocks, 0);
    // Multi-root attribution: each root reports its own mark count
    // (sentinel + one node each), regardless of registry order.
    let mut marks = pool.recovery_report().root_marks;
    marks.sort();
    assert_eq!(
        marks,
        vec![("a".to_string(), 2), ("b".to_string(), 2)],
        "each root must report the blocks marked from it"
    );
    let a = pool.root::<PooledList>("a").unwrap();
    let b = pool.root::<PooledList>("b").unwrap();
    assert_eq!(a.get(1), Some(100));
    assert_eq!(a.get(2), None, "structures must be disjoint");
    assert_eq!(b.get(2), Some(200));
    drop(b);
    drop(a);
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// `create_root` must refuse to overwrite a live root: the raw registry
/// would replace the slot's offset, orphaning the previous structure's
/// whole node graph for the next open's GC to silently reclaim.
#[test]
fn create_root_refuses_to_overwrite_a_live_root() {
    let path = tmp("no-overwrite");
    let pool = Pool::builder().path(&path).capacity(2 << 20).create().unwrap();
    let a = pool.create_root::<PooledList>("kv").unwrap();
    a.insert(1, 10);
    let err = pool.create_root::<PooledList>("kv").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    // The original structure is untouched, and root_or_create attaches to
    // it instead of recreating.
    assert_eq!(a.get(1), Some(10));
    drop(a);
    std::fs::remove_file(&path).unwrap();
}

/// The deprecated one-call shims (`PooledHandle::{create,open,
/// open_or_create,adopt}`, `PooledSet`, `Pool::{create,open}`,
/// `install_as_default`) must keep working for one release — they are the
/// pre-multi-pool surface, now implemented on top of the builder and typed
/// roots.
#[test]
#[allow(deprecated)]
fn legacy_shims_still_work() {
    use nvtraverse::{PoolAttach, PooledSet};
    let path = tmp("legacy");
    {
        let list = PooledSet::<PooledList>::create(&path, 2 << 20, "legacy").unwrap();
        for k in 0..40u64 {
            assert!(list.insert(k, k + 1));
        }
        // adopt of a second root, the old way.
        let b = PooledHandle::adopt(
            list.pool(),
            PooledList::create_in_pool(list.pool(), "second").unwrap(),
            "second",
        );
        b.insert(7, 77);
        b.close().unwrap();
        list.close().unwrap();
    }
    {
        let list = PooledSet::<PooledList>::open(&path, "legacy").unwrap();
        assert!(list.pool().recovery_report().gc_ran);
        assert_eq!(list.get(3), Some(4));
        // The legacy global install still routes unscoped allocations.
        list.pool().install_as_default();
        assert!(nvtraverse::pmem::heap::allocator_installed());
        list.pool().uninstall_default();
        list.close().unwrap();
    }
    let list = PooledSet::<PooledList>::open_or_create(&path, 2 << 20, "legacy").unwrap();
    assert_eq!(list.len(), 40);
    list.close().unwrap();
    std::fs::remove_file(&path).unwrap();
}

/// SOFT keeps every link word volatile, so a close/reopen loses the entire
/// chain by construction — attach must rebuild it from nothing but the
/// per-node validity headers. This is the single-process version of the
/// recovery-rebuild contract (the SIGKILL version is `crash_process.rs`).
#[test]
fn soft_list_survives_close_and_reopen() {
    let path = tmp("soft-list");

    {
        let list = create_pooled::<PooledSoftList>(&path, 4 << 20, "set").unwrap();
        for k in 0..200u64 {
            assert!(list.insert(k, k * 10));
        }
        for k in (0..200u64).step_by(4) {
            assert!(list.remove(k));
        }
        assert_eq!(list.len(), 150);
        list.close().unwrap();
    }

    {
        let list = open_pooled::<PooledSoftList>(&path, "set").unwrap();
        // GC ran, and the marks from this root are exactly the head
        // sentinel plus one mark per sealed node: SOFT reachability is
        // proved by header, not by following (volatile, now-stale) links.
        let report = list.pool().recovery_report();
        assert!(report.gc_ran);
        assert_eq!(
            report.root_marks,
            vec![("set".to_string(), 151)],
            "marks must be the sentinel + every sealed node"
        );
        assert_eq!(list.check_consistency(false).unwrap(), 150);
        for k in 0..200u64 {
            if k % 4 == 0 {
                assert_eq!(list.get(k), None, "removed key {k} resurrected");
            } else {
                assert_eq!(list.get(k), Some(k * 10), "lost key {k}");
            }
        }
        // The reopened structure is fully usable.
        assert!(list.insert(1000, 1));
        assert!(list.remove(1000));
        list.close().unwrap();
    }

    // And once more, to prove reopen does not degrade the pool.
    let list = open_pooled::<PooledSoftList>(&path, "set").unwrap();
    assert_eq!(list.len(), 150);
    drop(list);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn soft_hash_survives_close_and_reopen() {
    let path = tmp("soft-hash");

    {
        let map = create_pooled::<PooledSoftHash>(&path, 8 << 20, "kv").unwrap();
        for k in 0..500u64 {
            assert!(map.insert(k, k ^ 0xABCD));
        }
        for k in (0..500u64).step_by(3) {
            assert!(map.remove(k));
        }
        map.close().unwrap();
    }

    let map = open_pooled::<PooledSoftHash>(&path, "kv").unwrap();
    assert!(map.pool().recovery_report().gc_ran);
    map.check_consistency(false).unwrap();
    for k in 0..500u64 {
        if k % 3 == 0 {
            assert_eq!(map.get(k), None);
        } else {
            assert_eq!(map.get(k), Some(k ^ 0xABCD));
        }
    }
    // Still fully usable after the per-bucket rebuild.
    assert!(map.insert(10_000, 1));
    assert_eq!(map.get(10_000), Some(1));
    drop(map);
    std::fs::remove_file(&path).unwrap();
}
