//! Exhaustive crash sweep for **detectable operations** on the simulated
//! NVRAM: at (up to) every simulated memory event of a detectable workload,
//! crash, roll back to persisted state, recover — and then demand that the
//! *library's* answer for every issued [`OpId`] agrees exactly with the
//! surviving state. No "unknown" may escape:
//!
//! * the in-flight operation must classify `Committed` **iff** its effect
//!   survived the crash (exactly-once semantics),
//! * every completed operation must classify to its actual return value —
//!   or `Superseded` once a later operation has re-armed the slot,
//! * a completed operation's descriptor can never be lost (its closing
//!   fence persisted the arm and the result), so the slot's latest durable
//!   sequence number must cover every completed op.
//!
//! This drives the descriptor protocol end to end over its most adversarial
//! backend: `Sim` flushes per 8-byte word and drains fences one cell at a
//! time, so crashes land *inside* fences, between the arm and the
//! linearizing CAS, and between the CAS and the result publish.

mod common;

use nvtraverse::detect::OpTable;
use nvtraverse::policy::NvTraverse;
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_pmem::Sim;
use nvtraverse_pool::optable::{classify_raw, RawClass};
use nvtraverse_pool::{OpId, OpOutcome, RawOp};
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use std::cell::RefCell;
use std::collections::BTreeMap;

const MAX_POINTS: usize = 800;

/// One detectable workload step (gets are irrelevant to detectability).
#[derive(Debug, Clone, Copy)]
enum DStep {
    Insert(u64, u64),
    Remove(u64),
}

/// The library's composite answer for `id`, exactly as the pooled open
/// path computes it: descriptor-decided where the sequence numbers or a
/// published no-op settle it, otherwise the structure's recovered-state
/// lookup.
fn resolve<S, C>(s: &S, raw: Option<&RawOp>, id: OpId, classify: &C) -> OpOutcome
where
    C: Fn(&S, &RawOp) -> OpOutcome,
{
    match classify_raw(raw, id) {
        RawClass::Decided(o) => o,
        RawClass::NeedsLookup => classify(s, raw.expect("NeedsLookup implies a descriptor")),
    }
}

/// Runs the workload once to learn its step span, then replays it with a
/// crash at every selected step, asserting after each crash that every
/// issued `OpId` classifies consistently with the surviving state.
fn detectable_sweep<S, F, C>(factory: F, prefill: &[(u64, u64)], workload: &[DStep], classify: C)
where
    S: DurableSet<u64, u64>,
    F: Fn() -> S,
    C: Fn(&S, &RawOp) -> OpOutcome,
{
    // Pass 1: the deterministic step span of the detectable workload.
    let (steps_before, steps_total) = {
        let sim = SimHandle::new();
        let guard = sim.enter();
        let s = factory();
        let table: OpTable<Sim> = OpTable::new(1);
        for &(k, v) in prefill {
            s.insert(k, v);
        }
        let mut tok = table.token(0);
        let before = sim.steps();
        for op in workload {
            match *op {
                DStep::Insert(k, v) => {
                    s.insert_detectable(&mut tok, k, v).unwrap();
                }
                DStep::Remove(k) => {
                    s.remove_detectable(&mut tok, k).unwrap();
                }
            }
        }
        let total = sim.steps();
        drop(table);
        drop(s);
        drop(guard);
        (before, total)
    };
    assert!(steps_total > steps_before, "workload performed no sim steps");

    let span = steps_total - steps_before;
    let points: Vec<u64> = if span as usize <= MAX_POINTS {
        (steps_before + 1..=steps_total + 1).collect()
    } else {
        let stride = span as f64 / MAX_POINTS as f64;
        (0..MAX_POINTS)
            .map(|i| steps_before + 1 + (i as f64 * stride) as u64)
            .chain(std::iter::once(steps_total + 1))
            .collect()
    };

    let mut crashed_runs = 0usize;
    for &crash_at in &points {
        crashed_runs += run_one(&factory, prefill, workload, crash_at, &classify) as usize;
    }
    assert!(crashed_runs > 0, "no crash point actually fired");
}

/// One crash-at-step run; returns whether the crash fired.
fn run_one<S, F, C>(
    factory: &F,
    prefill: &[(u64, u64)],
    workload: &[DStep],
    crash_at: u64,
    classify: &C,
) -> bool
where
    S: DurableSet<u64, u64>,
    F: Fn() -> S,
    C: Fn(&S, &RawOp) -> OpOutcome,
{
    let sim = SimHandle::new();
    let guard = sim.enter();
    let s = factory();
    let table: OpTable<Sim> = OpTable::new(1);
    for &(k, v) in prefill {
        s.insert(k, v);
    }
    let mut tok = table.token(0);

    // (OpId, reported effectful?) per completed operation, program order.
    let completed: RefCell<Vec<(OpId, bool)>> = RefCell::new(Vec::new());

    sim.arm_crash_at_step(crash_at);
    let result = {
        let tok = &mut tok;
        run_crashable(|| {
            for op in workload {
                let (id, effectful) = match *op {
                    DStep::Insert(k, v) => s.insert_detectable(tok, k, v).unwrap(),
                    DStep::Remove(k) => s.remove_detectable(tok, k).unwrap(),
                };
                completed.borrow_mut().push((id, effectful));
            }
        })
    };
    let crashed = result.is_err();
    if !crashed {
        sim.arm_crash_at_step(u64::MAX); // effectively disarm
    }

    // The crash: volatile state reverts to whatever was persisted.
    let _ = unsafe { sim.crash_and_rollback() };
    s.recover();

    let completed = completed.into_inner();
    let raw = table.raw(0);

    // A completed operation's closing fence persisted its arm and result,
    // so the surviving descriptor can never predate any completed
    // operation. `latest_seq` (not the raw seq word): the result word can
    // run ahead of the arm words on an in-flight no-op.
    let surviving_seq = raw.as_ref().map_or(0, |r| r.latest_seq());
    assert!(
        surviving_seq >= completed.len() as u64,
        "crash at {crash_at}: descriptor lost a completed op \
         (surviving seq {surviving_seq}, {} completed)",
        completed.len()
    );

    // Replay the completed prefix over a model to know the state the
    // in-flight operation saw (single detectable client: exact).
    let mut model: BTreeMap<u64, u64> = prefill.iter().copied().collect();
    for (i, &(id, effectful)) in completed.iter().enumerate() {
        assert_eq!(id.seq(), i as u64 + 1, "tokens must number ops densely");
        match workload[i] {
            DStep::Insert(k, v) => {
                assert_eq!(effectful, !model.contains_key(&k));
                if effectful {
                    model.insert(k, v);
                }
            }
            DStep::Remove(k) => {
                assert_eq!(effectful, model.contains_key(&k));
                model.remove(&k);
            }
        }
    }

    // Completed operations: once a later arm persisted over the slot the
    // answer is Superseded; while the descriptor is still theirs it must
    // equal the result they actually returned.
    for &(id, effectful) in &completed {
        let outcome = resolve(&s, raw.as_ref(), id, classify);
        let expect = if id.seq() < surviving_seq {
            OpOutcome::Superseded
        } else if effectful {
            OpOutcome::Committed
        } else {
            OpOutcome::NotApplied
        };
        assert_eq!(
            outcome, expect,
            "crash at {crash_at}: completed op {id:?} (effectful={effectful}) misclassified"
        );
    }

    // The in-flight operation — the one detectability exists for. The
    // library must answer Committed exactly when the effect survived.
    if crashed && completed.len() < workload.len() {
        let op = workload[completed.len()];
        let id = OpId::new(0, completed.len() as u64 + 1);
        let outcome = resolve(&s, raw.as_ref(), id, classify);
        match op {
            DStep::Insert(k, v) => {
                if model.contains_key(&k) {
                    // Duplicate insert can never apply.
                    assert_eq!(
                        outcome,
                        OpOutcome::NotApplied,
                        "crash at {crash_at}: duplicate insert of {k} cannot commit"
                    );
                    assert_eq!(s.get(k), model.get(&k).copied());
                } else {
                    let present = s.contains(k);
                    assert_eq!(
                        outcome == OpOutcome::Committed,
                        present,
                        "crash at {crash_at}: in-flight insert({k}) answered {outcome:?} \
                         but present={present}"
                    );
                    if present {
                        assert_eq!(s.get(k), Some(v), "committed insert must carry its value");
                    }
                }
            }
            DStep::Remove(k) => {
                if model.contains_key(&k) {
                    let present = s.contains(k);
                    assert_eq!(
                        outcome == OpOutcome::Committed,
                        !present,
                        "crash at {crash_at}: in-flight remove({k}) answered {outcome:?} \
                         but present={present}, raw={raw:?}"
                    );
                } else {
                    assert_eq!(
                        outcome,
                        OpOutcome::NotApplied,
                        "crash at {crash_at}: remove of absent {k} cannot commit"
                    );
                    assert!(!s.contains(k));
                }
            }
        }
    }

    // Post-crash resume: a re-issued token continues from the persisted
    // sequence number and the next detectable op works and classifies.
    let mut resumed = table.token(0);
    assert_eq!(resumed.last_op().map_or(0, |id| id.seq()), surviving_seq);
    let probe = 0xFFFF_0000u64;
    let (pid, fresh) = s.insert_detectable(&mut resumed, probe, 1).unwrap();
    assert!(fresh, "post-recovery detectable insert failed");
    assert_eq!(pid.seq(), surviving_seq + 1);
    let praw = table.raw(0).expect("probe descriptor");
    assert_eq!(
        resolve(&s, Some(&praw), pid, classify),
        OpOutcome::Committed
    );
    let (_, removed) = s.remove_detectable(&mut resumed, probe).unwrap();
    assert!(removed, "post-recovery detectable remove failed");

    drop(table);
    drop(s);
    drop(guard);
    crashed
}

/// Mixed detectable workload over a tiny key universe: fresh insert,
/// duplicate insert, remove-hit of a zero-tagged (non-detectable) node,
/// remove-miss, reinsert after remove, and remove-hit of a *detectably*
/// inserted node (non-zero target tag in the descriptor).
fn standard_detectable_workload() -> (Vec<(u64, u64)>, Vec<DStep>) {
    let prefill = vec![(2, 20), (4, 40)];
    let workload = vec![
        DStep::Insert(1, 11),
        DStep::Insert(2, 99), // duplicate: must classify NotApplied
        DStep::Remove(4),     // hit on a prefilled (tag 0) node
        DStep::Remove(7),     // miss: armed against OP_TARGET_MISS
        DStep::Insert(4, 44), // reinsert a removed key
        DStep::Remove(1),     // hit on a detectably inserted node
        DStep::Insert(1, 12), // reinsert after a detectable remove
    ];
    (prefill, workload)
}

#[test]
fn list_detectable_answers_match_survivors_at_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_detectable_workload();
    detectable_sweep(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        |l: &HarrisList<u64, u64, NvTraverse<Sim>>, raw| l.classify_op(raw),
    );
}

#[test]
fn hash_detectable_answers_match_survivors_at_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_detectable_workload();
    detectable_sweep(
        || HashMapDs::<u64, u64, NvTraverse<Sim>>::with_collector(4, Collector::leaking()),
        &prefill,
        &workload,
        |m: &HashMapDs<u64, u64, NvTraverse<Sim>>, raw| m.classify_op(raw),
    );
}

#[test]
fn list_detectable_from_empty_growth() {
    // From empty: the very first detectable inserts exercise descriptor
    // arming interleaved with root-link persistence.
    install_quiet_panic_hook();
    let workload: Vec<DStep> = (1..=4u64).map(|k| DStep::Insert(k, k * 10)).collect();
    detectable_sweep(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &[],
        &workload,
        |l: &HarrisList<u64, u64, NvTraverse<Sim>>, raw| l.classify_op(raw),
    );
}

#[test]
fn list_detectable_heavy_deletion() {
    // Deletion is where marks, trims and target tags interact; focus there.
    install_quiet_panic_hook();
    let prefill: Vec<(u64, u64)> = (1..=5u64).map(|k| (k, k * 10)).collect();
    let workload: Vec<DStep> = (1..=5u64).map(DStep::Remove).collect();
    detectable_sweep(
        || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        |l: &HarrisList<u64, u64, NvTraverse<Sim>>, raw| l.classify_op(raw),
    );
}
