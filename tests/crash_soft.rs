//! Crash-point testing of the SOFT structures: every-crash-point sweeps
//! over `SoftList`/`SoftHash` mixed histories.
//!
//! SOFT never persists a link word — the whole durable state is the set of
//! per-node validity headers — so the thing these sweeps stress is exactly
//! the recovery-rebuild contract: at *any* simulated memory event, killing
//! the process and rebuilding the chains from the sealed nodes must yield a
//! durably linearizable state. Runs again with `NVT_OBS=off` in CI (the
//! telemetry kill-switch must not change crash behaviour).

mod common;

use common::{exhaustive_crash_test, standard_workload, Step};
use nvtraverse::policy::Soft;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::install_quiet_panic_hook;
use nvtraverse_pmem::Sim;
use nvtraverse_structures::soft_hash::SoftHash;
use nvtraverse_structures::soft_list::SoftList;

const MAX_POINTS: usize = 500;

#[test]
fn soft_list_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    let stats = exhaustive_crash_test(
        || SoftList::<u64, u64, Soft<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
    assert!(
        stats.poisoned_cells_total > 0,
        "the adversary never poisoned anything — the simulation is too tame"
    );
}

/// Churn on a tiny key universe: the transitions SOFT's validity protocol
/// is most exposed on — remove-then-reinsert of the same key (a tombstoned
/// twin may still be linked when the reinsert traverses), duplicate inserts
/// against both live and tombstoned nodes, and back-to-back updates whose
/// only durable trace is a single validity word each.
fn churn_workload() -> (Vec<(u64, u64)>, Vec<Step>) {
    let prefill = vec![(5, 50), (7, 70)];
    let workload = vec![
        Step::Insert(5, 51), // duplicate of live key: must fail
        Step::Remove(5),
        Step::Insert(5, 52), // reinsert over the tombstone
        Step::Remove(5),
        Step::Insert(5, 53), // and again
        Step::Get(5),
        Step::Remove(7),
        Step::Remove(7), // second remove: must fail
        Step::Insert(6, 66),
        Step::Remove(6),
    ];
    (prefill, workload)
}

#[test]
fn soft_list_survives_every_crash_point_under_churn() {
    install_quiet_panic_hook();
    let (prefill, workload) = churn_workload();
    let stats = exhaustive_crash_test(
        || SoftList::<u64, u64, Soft<Sim>>::with_collector(Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
}

#[test]
fn soft_hash_survives_every_crash_point() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    let stats = exhaustive_crash_test(
        // Few buckets so chains actually share buckets *and* several
        // buckets stay non-trivial: both the per-bucket rebuild and the
        // cross-bucket ownership attribution get exercised.
        || SoftHash::<u64, u64, Soft<Sim>>::with_collector(4, Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |m| m.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
    assert!(
        stats.poisoned_cells_total > 0,
        "the adversary never poisoned anything — the simulation is too tame"
    );
}

#[test]
fn soft_hash_survives_every_crash_point_under_churn() {
    install_quiet_panic_hook();
    let (prefill, workload) = churn_workload();
    exhaustive_crash_test(
        || SoftHash::<u64, u64, Soft<Sim>>::with_collector(2, Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |m| m.check_consistency(false),
    );
}

/// The leaking-collector sweeps above never return a block to the
/// allocator, so they cannot see free/reuse hazards (a freed node's pending
/// flushes draining after the block moved on, or a recycled block replaying
/// a stale header). A reclaiming collector closes that gap: every remove's
/// trimmed node is actually freed once the epoch advances, so the sweep
/// crosses tombstone-flush/fence/free boundaries at every crash point.
///
/// Caveat: the simulator models *reallocated* memory as fresh cells (a
/// freed cell's persisted words do not carry over to the next owner at the
/// same address), so the stale-header-replay half of the hazard is pinned
/// by word-level unit tests in `soft_list` instead
/// (`recycled_block_word_mixtures_never_probe_live`).
#[test]
fn soft_list_survives_every_crash_point_with_a_reclaiming_collector() {
    install_quiet_panic_hook();
    let (prefill, workload) = churn_workload();
    let stats = exhaustive_crash_test(
        || SoftList::<u64, u64, Soft<Sim>>::with_collector(Collector::new()),
        &prefill,
        &workload,
        MAX_POINTS,
        |l| l.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
}

#[test]
fn soft_hash_survives_every_crash_point_with_a_reclaiming_collector() {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    let stats = exhaustive_crash_test(
        || SoftHash::<u64, u64, Soft<Sim>>::with_collector(4, Collector::new()),
        &prefill,
        &workload,
        MAX_POINTS,
        |m| m.check_consistency(false),
    );
    assert!(stats.crashed_runs > 0, "no crash point actually fired");
}

#[test]
fn soft_single_bucket_hash_degenerates_to_list_sweep() {
    // One bucket: the hash table's sweep must match the raw list's.
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();
    exhaustive_crash_test(
        || SoftHash::<u64, u64, Soft<Sim>>::with_collector(1, Collector::leaking()),
        &prefill,
        &workload,
        MAX_POINTS,
        |m| m.check_consistency(false),
    );
}
