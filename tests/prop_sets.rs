//! Property-based tests (proptest): random operation sequences against the
//! sequential reference model, and random crash points with durable
//! linearizability verdicts.

// The `..ProptestConfig::default()` spread is redundant against the
// vendored stub (whose config has one field) but required against real
// proptest — keep it, silence the stub-only lint.
#![allow(clippy::needless_update)]

mod common;

use common::{exhaustive_crash_test, Step};
use nvtraverse::model::ModelSet;
use nvtraverse::policy::{NvTraverse, Volatile};
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::install_quiet_panic_hook;
use nvtraverse_pmem::{Noop, Sim};
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::skiplist::SkipList;
use proptest::prelude::*;

/// A random op over a small key universe (collisions are the point).
fn op_strategy() -> impl Strategy<Value = Step> {
    (0u8..3, 0u64..24, 0u64..1000).prop_map(|(kind, k, v)| match kind {
        0 => Step::Insert(k, v),
        1 => Step::Remove(k),
        _ => Step::Get(k),
    })
}

fn apply_and_compare<S: DurableSet<u64, u64>>(s: &S, ops: &[Step]) {
    let mut model = ModelSet::new();
    for op in ops {
        match *op {
            Step::Insert(k, v) => assert_eq!(s.insert(k, v), model.insert(k, v), "insert({k})"),
            Step::Remove(k) => assert_eq!(s.remove(k), model.remove(k), "remove({k})"),
            Step::Get(k) => assert_eq!(s.get(k), model.get(k), "get({k})"),
        }
    }
    assert_eq!(s.len(), model.len());
    for (k, v) in model.iter() {
        assert_eq!(s.get(k), Some(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn list_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        apply_and_compare(&HarrisList::<u64, u64, NvTraverse<Noop>>::new(), &ops);
    }

    #[test]
    fn hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        apply_and_compare(&HashMapDs::<u64, u64, NvTraverse<Noop>>::new(4), &ops);
    }

    #[test]
    fn ellen_bst_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        apply_and_compare(&EllenBst::<u64, u64, NvTraverse<Noop>>::new(), &ops);
    }

    #[test]
    fn nm_bst_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        apply_and_compare(&NmBst::<u64, u64, NvTraverse<Noop>>::new(), &ops);
    }

    #[test]
    fn skiplist_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        apply_and_compare(&SkipList::<u64, u64, Volatile>::new(), &ops);
    }

    #[test]
    fn list_sorted_invariant_holds(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let l = HarrisList::<u64, u64, Volatile>::new();
        for op in &ops {
            match *op {
                Step::Insert(k, v) => { l.insert(k, v); }
                Step::Remove(k) => { l.remove(k); }
                Step::Get(k) => { l.get(k); }
            }
        }
        prop_assert!(l.check_consistency(true).is_ok());
    }

    /// Random workloads + sampled crash points: durable linearizability must
    /// hold for arbitrary op mixes, not just the hand-written workloads.
    #[test]
    fn list_random_workload_random_crash(
        ops in proptest::collection::vec(op_strategy(), 4..28),
    ) {
        install_quiet_panic_hook();
        exhaustive_crash_test(
            || HarrisList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            &[(1, 10), (3, 30)],
            &ops,
            24, // sampled points per case; cases supply the diversity
            |l| l.check_consistency(false),
        );
    }

    #[test]
    fn ellen_random_workload_random_crash(
        ops in proptest::collection::vec(op_strategy(), 4..20),
    ) {
        install_quiet_panic_hook();
        exhaustive_crash_test(
            || EllenBst::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            &[(1, 10), (3, 30)],
            &ops,
            16,
            |t| t.check_consistency(true),
        );
    }

    #[test]
    fn skiplist_random_workload_random_crash(
        ops in proptest::collection::vec(op_strategy(), 4..20),
    ) {
        install_quiet_panic_hook();
        exhaustive_crash_test(
            || SkipList::<u64, u64, NvTraverse<Sim>>::with_collector(Collector::leaking()),
            &[(1, 10), (3, 30)],
            &ops,
            16,
            |s| s.check_consistency(false),
        );
    }
}
