//! Cross-process crash recovery: a child process mutates a pool-backed set,
//! is SIGKILLed mid-workload, and the parent reopens the pool, runs
//! recovery, and checks durable-linearizability invariants.
//!
//! This is the real-world counterpart of the simulator crash tests: the
//! "crash" is an actual process death with the pool file as the only
//! surviving state. (On a page-cache-backed mapping, pages written before
//! the kill survive by kernel guarantee; on a DAX NVRAM mapping the same
//! code is power-fail durable via `MmapBackend`'s `clwb`/`sfence`.)
//!
//! ## Oracle
//!
//! The child writes an intent/ack log (`fsync`ed line by line) beside the
//! pool:
//!
//! * `i <k>` — insert of `k` is about to start; `I <k>` — it returned true.
//! * `r <k>` — remove of `k` is about to start; `R <k>` — it returned true.
//!
//! Keys are never reinserted after removal, so after recovery:
//!
//! * an acked remove (`R`) ⇒ key **absent**;
//! * an acked insert (`I`) with no remove intent (`r`) ⇒ key **present**;
//! * any other intent ⇒ the op was in flight at the kill: either outcome
//!   is a valid durable linearization;
//! * a key with no intent at all ⇒ **absent** (nothing may invent keys).

use nvtraverse::policy::NvTraverse;
use nvtraverse::{DurableSet, PooledSet};
use nvtraverse_pmem::{Backend, MmapBackend};
use nvtraverse_structures::list::HarrisList;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;

const ROOT: &str = "crash-set";
const POOL_CAP: u64 = 16 << 20;

fn paths() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pool = dir.join(format!("nvt-crashproc-{}.pool", std::process::id()));
    let log = dir.join(format!("nvt-crashproc-{}.log", std::process::id()));
    (pool, log)
}

/// Child-process entry point, dispatched via environment variables. When
/// `NVT_CRASH_CHILD` is unset (the normal test run) this test is a no-op.
#[test]
fn child_entry() {
    let Ok(_) = std::env::var("NVT_CRASH_CHILD") else {
        return;
    };
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = PooledSet::<PooledList>::open(&pool_path, ROOT).unwrap();
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .unwrap();
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    // Insert start_key, start_key+1, …; after every key ≡ 2 (mod 3), remove
    // the key ≡ 0 (mod 3) two below it. Victims are unique and never
    // reinserted, which is what makes the parent's oracle exact.
    let mut k = start_key;
    loop {
        record("i", k);
        if set.insert(k, k.wrapping_mul(7)) {
            record("I", k);
        }
        if k % 3 == 2 {
            let victim = k - 2;
            record("r", victim);
            if set.remove(victim) {
                record("R", victim);
            }
        }
        k += 1;
        // The parent kills us long before this; bail out in case it died.
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

#[derive(Default, Debug, Clone, Copy)]
struct KeyLog {
    intent_insert: bool,
    acked_insert: bool,
    intent_remove: bool,
    acked_remove: bool,
}

fn parse_log(path: &Path) -> BTreeMap<u64, KeyLog> {
    let mut out: BTreeMap<u64, KeyLog> = BTreeMap::new();
    let data = std::fs::read_to_string(path).unwrap_or_default();
    for line in data.lines() {
        // The final line can be torn by the kill; ignore anything malformed.
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(k)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(k) = k.parse::<u64>() else { continue };
        let e = out.entry(k).or_default();
        match tag {
            "i" => e.intent_insert = true,
            "I" => e.acked_insert = true,
            "r" => e.intent_remove = true,
            "R" => e.acked_remove = true,
            _ => {}
        }
    }
    out
}

/// Spawns the child, waits for it to ack at least `min_acks` operations,
/// SIGKILLs it, and returns.
fn run_child_until(pool: &Path, log: &Path, start_key: u64, min_acks: usize) {
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "child_entry", "--test-threads=1", "--nocapture"])
        .env("NVT_CRASH_CHILD", "1")
        .env("NVT_POOL", pool)
        .env("NVT_LOG", log)
        .env("NVT_START_KEY", start_key.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let acks = std::fs::read_to_string(log)
            .unwrap_or_default()
            .lines()
            .filter(|l| l.starts_with('I') || l.starts_with('R'))
            .count();
        if acks >= min_acks {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited on its own before the kill: {status:?}");
        }
        assert!(
            Instant::now() < deadline,
            "child too slow: only {acks}/{min_acks} acked ops"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // SIGKILL: no destructors, no msync, no clean-close marker.
    child.kill().unwrap();
    child.wait().unwrap();
}

fn validate(pool_path: &Path, log_path: &Path) -> u64 {
    // Reopen: Pool::open → root lookup → recover(), all inside PooledSet.
    let set = PooledSet::<PooledList>::open(pool_path, ROOT).unwrap();
    assert!(
        !set.pool().recovery_report().clean_shutdown,
        "SIGKILL must not leave a clean-shutdown marker"
    );
    // The heap itself must verify (no torn allocator metadata).
    set.pool().verify_heap().unwrap_or_else(|e| {
        panic!("pool heap corrupt after SIGKILL: {e}");
    });
    // Structural invariants: sorted, and recovery left no marked node.
    set.check_consistency(false)
        .unwrap_or_else(|e| panic!("list invariants violated after recovery: {e}"));

    let log = parse_log(log_path);
    let present: BTreeMap<u64, u64> = set.iter_snapshot().into_iter().collect();

    // No invented keys: everything present must at least have been attempted.
    for (&k, _) in &present {
        assert!(
            log.get(&k).is_some_and(|e| e.intent_insert),
            "key {k} present but never attempted"
        );
    }
    // Durable linearizability, key by key.
    let mut max_intent = 0;
    for (&k, e) in &log {
        max_intent = max_intent.max(k);
        let here = present.contains_key(&k);
        if e.acked_remove {
            assert!(!here, "key {k}: remove was acked but the key came back");
        } else if e.acked_insert && !e.intent_remove {
            assert!(here, "key {k}: insert was acked but the key is lost");
            assert_eq!(present[&k], k.wrapping_mul(7), "key {k}: wrong value");
        }
        // Any other combination was in flight at the kill: either outcome
        // is a correct durable linearization.
    }
    // The recovered structure stays fully usable.
    assert!(set.insert(u64::MAX - 1, 42));
    assert_eq!(set.get(u64::MAX - 1), Some(42));
    assert!(set.remove(u64::MAX - 1));
    set.close().unwrap();
    max_intent
}

// ---- concurrent allocator storm under SIGKILL ------------------------------

/// Threads in the allocator-storm child.
const STORM_THREADS: usize = 8;
/// Block-reference slots each storm thread owns.
const STORM_SLOTS: usize = 64;
const STORM_ROOT: &str = "storm-slots";

/// Child-process entry point for the allocator storm (see
/// `sigkill_mid_alloc_storm_recovers`): 8 threads hammer the lock-free
/// allocator with alloc/free/realloc while every held block is tracked in a
/// persistent slot array inside the pool itself, so the parent can audit
/// the live set after the kill.
///
/// Per-slot protocol (all slot writes flushed + fenced):
///
/// * free:    slot := 0, persist, then `dealloc` — a kill in between leaks
///   the block (it stays allocated, referenced by nothing), never the
///   reverse: a nonzero slot always names an allocated block.
/// * alloc:   `alloc`, stamp + flush the payload, persist, then slot := off.
/// * realloc: slot := 0, persist, `realloc`, stamp, persist, slot := new.
///
/// So at any kill point, every nonzero slot points at an allocated block
/// with a valid stamp, and at most 2 blocks per thread (realloc holds two
/// mid-copy) are allocated but untracked.
#[test]
fn alloc_storm_child_entry() {
    let Ok(_) = std::env::var("NVT_STORM_CHILD") else {
        return;
    };
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let pool = nvtraverse_pool::Pool::open(&pool_path).unwrap();
    let slots_off = pool.root(STORM_ROOT).unwrap();
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .unwrap();

    fn persist(p: *const u64) {
        MmapBackend::flush(p as *const u8);
        MmapBackend::fence();
    }
    let progress = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..STORM_THREADS {
            let pool = pool.clone();
            let progress = &progress;
            s.spawn(move || {
                let mut x = (t as u64).wrapping_mul(0x9E37_79B9) + 0xDEAD;
                loop {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let idx = t * STORM_SLOTS + (x % STORM_SLOTS as u64) as usize;
                    let slot = (pool.at(slots_off) as *mut u64).wrapping_add(idx);
                    let cur = unsafe { slot.read_volatile() };
                    let stamp = |p: *mut u8, size: usize| {
                        // First word = slot index, so the parent can verify
                        // block↔slot agreement; last byte spot-checked too.
                        unsafe {
                            (p as *mut u64).write(idx as u64);
                            p.add(size - 1).write(idx as u8);
                        }
                        MmapBackend::flush_range(p, size);
                    };
                    if cur != 0 {
                        if x % 4 == 0 {
                            // Realloc: untrack, move, retrack.
                            unsafe { slot.write_volatile(0) };
                            persist(slot);
                            let size = 24 + (x % 4000) as usize;
                            let p = pool.at(cur);
                            if let Some(np) = unsafe { pool.realloc(p, size) } {
                                stamp(np, size);
                                MmapBackend::fence();
                                unsafe {
                                    slot.write_volatile(pool.offset_of(np as *const u8))
                                };
                                persist(slot);
                            } else {
                                unsafe { pool.dealloc(p) };
                            }
                        } else {
                            // Free: untrack first.
                            unsafe { slot.write_volatile(0) };
                            persist(slot);
                            unsafe { pool.dealloc(pool.at(cur)) };
                        }
                    } else {
                        let size = 24 + (x % 4000) as usize;
                        if let Some(p) = pool.alloc(size, 8) {
                            stamp(p, size);
                            MmapBackend::fence();
                            unsafe { slot.write_volatile(pool.offset_of(p as *const u8)) };
                            persist(slot);
                        }
                    }
                    progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Report progress until the kill.
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let n = progress.load(std::sync::atomic::Ordering::Relaxed);
            writeln!(log, "{n}").unwrap();
            log.sync_data().unwrap();
        }
    });
}

/// Audits the pool after a storm kill: heap verifies, every tracked slot
/// points at a distinct allocated block with the right stamp, and at most
/// `2 × STORM_THREADS` allocated blocks are untracked (in-flight at the
/// kill). Frees the untracked blocks (nothing references them) so leaks do
/// not accumulate across cycles, and returns the pool to a state where the
/// next storm child can continue.
fn storm_validate(pool_path: &Path) {
    let pool = nvtraverse_pool::Pool::open(pool_path).unwrap();
    assert!(!pool.recovery_report().clean_shutdown);
    let report = pool
        .verify_heap()
        .unwrap_or_else(|e| panic!("pool heap corrupt after SIGKILL storm: {e}"));
    let slots_off = pool.root(STORM_ROOT).unwrap();
    let total_slots = STORM_THREADS * STORM_SLOTS;

    // Collect tracked offsets; check uniqueness (a block in two slots would
    // mean the allocator handed one block out twice).
    let mut tracked = std::collections::BTreeMap::new();
    for idx in 0..total_slots {
        let off = unsafe { (pool.at(slots_off) as *const u64).add(idx).read() };
        if off != 0 {
            if let Some(prev) = tracked.insert(off, idx) {
                panic!("block {off:#x} tracked by slots {prev} and {idx}");
            }
        }
    }
    // Every tracked block is live, stamped with its slot index.
    let live: std::collections::BTreeMap<u64, u64> = report
        .live
        .iter()
        .map(|&(block, payload)| (block + 16, payload))
        .collect();
    for (&off, &idx) in &tracked {
        let payload = live.get(&off).unwrap_or_else(|| {
            panic!("slot {idx} references {off:#x}, which is not an allocated block")
        });
        let first = unsafe { (pool.at(off) as *const u64).read() };
        assert_eq!(first, idx as u64, "block {off:#x} stamped for the wrong slot");
        assert!(*payload >= 24, "block {off:#x} smaller than any storm alloc");
    }
    // The slot array itself is one allocated block; anything else untracked
    // was in flight at the kill — bounded by 2 per thread per kill. Free
    // the strays so leakage does not accumulate across kill cycles.
    let mut strays = Vec::new();
    for (&off, _) in &live {
        if off != slots_off && !tracked.contains_key(&off) {
            strays.push(off);
        }
    }
    assert!(
        !tracked.is_empty(),
        "storm audit is vacuous: no slot held a block at the kill"
    );
    assert!(
        strays.len() <= 2 * STORM_THREADS,
        "{} untracked live blocks — more than {} in-flight ops can explain",
        strays.len(),
        2 * STORM_THREADS
    );
    for off in strays {
        unsafe { pool.dealloc(pool.at(off)) };
    }
    // The recovered allocator must be fully usable: drain-and-restore one
    // block per class size without tripping any header invariant.
    for size in [16usize, 100, 1000, 5000, 70_000] {
        let p = pool.alloc(size, 8).unwrap();
        unsafe { pool.dealloc(p) };
    }
    pool.verify_heap().unwrap();
    drop(pool);
}

#[test]
fn sigkill_mid_alloc_storm_recovers() {
    let dir = std::env::temp_dir();
    let pool_path = dir.join(format!("nvt-storm-{}.pool", std::process::id()));
    let log_path = dir.join(format!("nvt-storm-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    // Create the pool and the persistent slot array.
    {
        let pool = nvtraverse_pool::Pool::create(&pool_path, 64 << 20).unwrap();
        let total = STORM_THREADS * STORM_SLOTS;
        let slots = pool.alloc(total * 8, 8).unwrap();
        unsafe { std::ptr::write_bytes(slots, 0, total * 8) };
        MmapBackend::flush_range(slots, total * 8);
        MmapBackend::fence();
        pool.set_root(STORM_ROOT, pool.offset_of(slots)).unwrap();
    }

    for _cycle in 0..2 {
        // Fresh progress log per cycle: the child's op counter restarts at
        // zero, so a stale line from the previous cycle would satisfy (or
        // double) the threshold.
        let _ = std::fs::remove_file(&log_path);
        let exe = std::env::current_exe().unwrap();
        let mut child = std::process::Command::new(exe)
            .args(["--exact", "alloc_storm_child_entry", "--test-threads=1", "--nocapture"])
            .env("NVT_STORM_CHILD", "1")
            .env("NVT_POOL", &pool_path)
            .env("NVT_LOG", &log_path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        // Wait until the threads have collectively done enough ops.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let ops: u64 = std::fs::read_to_string(&log_path)
                .unwrap_or_default()
                .lines()
                .rev()
                .find_map(|l| l.trim().parse().ok())
                .unwrap_or(0);
            if ops >= 100_000 {
                break;
            }
            if let Some(status) = child.try_wait().unwrap() {
                panic!("storm child exited on its own: {status:?}");
            }
            assert!(Instant::now() < deadline, "storm child too slow: {ops} ops");
            std::thread::sleep(Duration::from_millis(10));
        }
        child.kill().unwrap();
        child.wait().unwrap();
        storm_validate(&pool_path);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

#[test]
fn sigkill_mid_workload_recovers() {
    let (pool_path, log_path) = paths();
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    // Create the pool and the named structure crash-free, then let go.
    PooledSet::<PooledList>::create(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    // Three kill cycles: each child continues where the log left off, so
    // every cycle revalidates the accumulated history.
    let mut start_key = 0;
    for cycle in 0..3 {
        run_child_until(&pool_path, &log_path, start_key, 150 * (cycle + 1));
        let max_intent = validate(&pool_path, &log_path);
        // Next child starts past everything attempted, keeping the
        // "victims are never reinserted" oracle exact (aligned to 3).
        start_key = (max_intent + 3).next_multiple_of(3);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}
