//! Cross-process crash recovery: a child process mutates a pool-backed set,
//! is SIGKILLed mid-workload, and the parent reopens the pool, runs
//! recovery, and checks durable-linearizability invariants.
//!
//! This is the real-world counterpart of the simulator crash tests: the
//! "crash" is an actual process death with the pool file as the only
//! surviving state. (On a page-cache-backed mapping, pages written before
//! the kill survive by kernel guarantee; on a DAX NVRAM mapping the same
//! code is power-fail durable via `MmapBackend`'s `clwb`/`sfence`.)
//!
//! ## Oracle
//!
//! The child writes an intent/ack log (`fsync`ed line by line) beside the
//! pool:
//!
//! * `i <k>` — insert of `k` is about to start; `I <k>` — it returned true.
//! * `r <k>` — remove of `k` is about to start; `R <k>` — it returned true.
//!
//! Keys are never reinserted after removal, so after recovery:
//!
//! * an acked remove (`R`) ⇒ key **absent**;
//! * an acked insert (`I`) with no remove intent (`r`) ⇒ key **present**;
//! * any other intent ⇒ the op was in flight at the kill: either outcome
//!   is a valid durable linearization;
//! * a key with no intent at all ⇒ **absent** (nothing may invent keys).

use nvtraverse::policy::NvTraverse;
use nvtraverse::{DurableSet, PooledSet};
use nvtraverse_pmem::MmapBackend;
use nvtraverse_structures::list::HarrisList;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;

const ROOT: &str = "crash-set";
const POOL_CAP: u64 = 16 << 20;

fn paths() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pool = dir.join(format!("nvt-crashproc-{}.pool", std::process::id()));
    let log = dir.join(format!("nvt-crashproc-{}.log", std::process::id()));
    (pool, log)
}

/// Child-process entry point, dispatched via environment variables. When
/// `NVT_CRASH_CHILD` is unset (the normal test run) this test is a no-op.
#[test]
fn child_entry() {
    let Ok(_) = std::env::var("NVT_CRASH_CHILD") else {
        return;
    };
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = PooledSet::<PooledList>::open(&pool_path, ROOT).unwrap();
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .unwrap();
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    // Insert start_key, start_key+1, …; after every key ≡ 2 (mod 3), remove
    // the key ≡ 0 (mod 3) two below it. Victims are unique and never
    // reinserted, which is what makes the parent's oracle exact.
    let mut k = start_key;
    loop {
        record("i", k);
        if set.insert(k, k.wrapping_mul(7)) {
            record("I", k);
        }
        if k % 3 == 2 {
            let victim = k - 2;
            record("r", victim);
            if set.remove(victim) {
                record("R", victim);
            }
        }
        k += 1;
        // The parent kills us long before this; bail out in case it died.
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

#[derive(Default, Debug, Clone, Copy)]
struct KeyLog {
    intent_insert: bool,
    acked_insert: bool,
    intent_remove: bool,
    acked_remove: bool,
}

fn parse_log(path: &Path) -> BTreeMap<u64, KeyLog> {
    let mut out: BTreeMap<u64, KeyLog> = BTreeMap::new();
    let data = std::fs::read_to_string(path).unwrap_or_default();
    for line in data.lines() {
        // The final line can be torn by the kill; ignore anything malformed.
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(k)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(k) = k.parse::<u64>() else { continue };
        let e = out.entry(k).or_default();
        match tag {
            "i" => e.intent_insert = true,
            "I" => e.acked_insert = true,
            "r" => e.intent_remove = true,
            "R" => e.acked_remove = true,
            _ => {}
        }
    }
    out
}

/// Spawns the child, waits for it to ack at least `min_acks` operations,
/// SIGKILLs it, and returns.
fn run_child_until(pool: &Path, log: &Path, start_key: u64, min_acks: usize) {
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "child_entry", "--test-threads=1", "--nocapture"])
        .env("NVT_CRASH_CHILD", "1")
        .env("NVT_POOL", pool)
        .env("NVT_LOG", log)
        .env("NVT_START_KEY", start_key.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let acks = std::fs::read_to_string(log)
            .unwrap_or_default()
            .lines()
            .filter(|l| l.starts_with('I') || l.starts_with('R'))
            .count();
        if acks >= min_acks {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited on its own before the kill: {status:?}");
        }
        assert!(
            Instant::now() < deadline,
            "child too slow: only {acks}/{min_acks} acked ops"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // SIGKILL: no destructors, no msync, no clean-close marker.
    child.kill().unwrap();
    child.wait().unwrap();
}

fn validate(pool_path: &Path, log_path: &Path) -> u64 {
    // Reopen: Pool::open → root lookup → recover(), all inside PooledSet.
    let set = PooledSet::<PooledList>::open(pool_path, ROOT).unwrap();
    assert!(
        !set.pool().recovery_report().clean_shutdown,
        "SIGKILL must not leave a clean-shutdown marker"
    );
    // The heap itself must verify (no torn allocator metadata).
    set.pool().verify_heap().unwrap_or_else(|e| {
        panic!("pool heap corrupt after SIGKILL: {e}");
    });
    // Structural invariants: sorted, and recovery left no marked node.
    set.check_consistency(false)
        .unwrap_or_else(|e| panic!("list invariants violated after recovery: {e}"));

    let log = parse_log(log_path);
    let present: BTreeMap<u64, u64> = set.iter_snapshot().into_iter().collect();

    // No invented keys: everything present must at least have been attempted.
    for (&k, _) in &present {
        assert!(
            log.get(&k).is_some_and(|e| e.intent_insert),
            "key {k} present but never attempted"
        );
    }
    // Durable linearizability, key by key.
    let mut max_intent = 0;
    for (&k, e) in &log {
        max_intent = max_intent.max(k);
        let here = present.contains_key(&k);
        if e.acked_remove {
            assert!(!here, "key {k}: remove was acked but the key came back");
        } else if e.acked_insert && !e.intent_remove {
            assert!(here, "key {k}: insert was acked but the key is lost");
            assert_eq!(present[&k], k.wrapping_mul(7), "key {k}: wrong value");
        }
        // Any other combination was in flight at the kill: either outcome
        // is a correct durable linearization.
    }
    // The recovered structure stays fully usable.
    assert!(set.insert(u64::MAX - 1, 42));
    assert_eq!(set.get(u64::MAX - 1), Some(42));
    assert!(set.remove(u64::MAX - 1));
    set.close().unwrap();
    max_intent
}

#[test]
fn sigkill_mid_workload_recovers() {
    let (pool_path, log_path) = paths();
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    // Create the pool and the named structure crash-free, then let go.
    PooledSet::<PooledList>::create(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    // Three kill cycles: each child continues where the log left off, so
    // every cycle revalidates the accumulated history.
    let mut start_key = 0;
    for cycle in 0..3 {
        run_child_until(&pool_path, &log_path, start_key, 150 * (cycle + 1));
        let max_intent = validate(&pool_path, &log_path);
        // Next child starts past everything attempted, keeping the
        // "victims are never reinserted" oracle exact (aligned to 3).
        start_key = (max_intent + 3).next_multiple_of(3);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}
