//! Cross-process crash recovery: a child process mutates a pool-backed
//! structure, is SIGKILLed mid-workload, and the parent reopens the pool,
//! runs recovery, and checks durable-linearizability invariants.
//!
//! This is the real-world counterpart of the simulator crash tests: the
//! "crash" is an actual process death with the pool file as the only
//! surviving state. (On a page-cache-backed mapping, pages written before
//! the kill survive by kernel guarantee; on a DAX NVRAM mapping the same
//! code is power-fail durable via `MmapBackend`'s `clwb`/`sfence`.)
//!
//! Every structure type of the suite gets its own SIGKILL round-trip:
//!
//! * the five **sets** (list, hash, skiplist, both BSTs) share one generic
//!   child workload and one intent/ack oracle (below);
//! * the **queue** is validated against a consecutive-range FIFO oracle;
//! * the **stack** against a LIFO replay oracle;
//! * the **allocator** itself against a persistent slot-array audit
//!   (the 8-thread alloc/free/realloc storm at the end of this file).
//!
//! ## Set oracle
//!
//! The child writes an intent/ack log (`fsync`ed line by line) beside the
//! pool:
//!
//! * `i <k>` — insert of `k` is about to start; `I <k>` — it returned true.
//! * `r <k>` — remove of `k` is about to start; `R <k>` — it returned true.
//!
//! Keys are never reinserted after removal, so after recovery:
//!
//! * an acked remove (`R`) ⇒ key **absent**;
//! * an acked insert (`I`) with no remove intent (`r`) ⇒ key **present**;
//! * any other intent ⇒ the op was in flight at the kill: either outcome
//!   is a valid durable linearization;
//! * a key with no intent at all ⇒ **absent** (nothing may invent keys).
//!
//! For the **list** and **hash** children the workload runs through the
//! detectable API instead, and the intent lines carry each operation's
//! predicted durable [`OpId`]. The *library* is then the primary oracle:
//! after reopening, `Pool::op_outcome` must answer every logged `OpId`, and
//! the newest one — the only operation that can have been in flight at the
//! kill — must answer `Committed` exactly when its effect survived. The
//! intent/ack log above is kept as a cross-check, not as the judge.

use nvtraverse::detect::{DetectablePool, OpToken};
use nvtraverse::policy::{NvTraverse, Soft};
use nvtraverse::pool::Pool;
use nvtraverse::{DurableSet, OpId, OpOutcome, PoolAttach, PooledHandle};
use nvtraverse_pmem::{Backend, MmapBackend};
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::queue::MsQueue;
use nvtraverse_structures::sharded::ShardedSet;
use nvtraverse_structures::skiplist::SkipList;
use nvtraverse_structures::soft_hash::SoftHash;
use nvtraverse_structures::soft_list::SoftList;
use nvtraverse_structures::stack::TreiberStack;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
type PooledHash = HashMapDs<u64, u64, NvTraverse<MmapBackend>>;
type PooledSkip = SkipList<u64, u64, NvTraverse<MmapBackend>>;
type PooledEllen = EllenBst<u64, u64, NvTraverse<MmapBackend>>;
type PooledNm = NmBst<u64, u64, NvTraverse<MmapBackend>>;
type PooledQueue = MsQueue<u64, NvTraverse<MmapBackend>>;
type PooledStack = TreiberStack<u64, NvTraverse<MmapBackend>>;
type PooledSoftList = SoftList<u64, u64, Soft<MmapBackend>>;
type PooledSoftHash = SoftHash<u64, u64, Soft<MmapBackend>>;

const ROOT: &str = "crash-struct";
const POOL_CAP: u64 = 16 << 20;

/// Shards of the sharded-set crash test (≥ 2: the point is several pools
/// open concurrently in one process).
const SHARD_COUNT: usize = 3;
const SHARD_CAP: u64 = 8 << 20;

// NOTE: pools used to be process-global (one installed allocator), which
// forced every test here onto a serializing mutex. Pools are first-class
// now — each structure carries its own allocation context — so the tests
// run concurrently, each on its own pool file(s).

mod common;
use common::{create_pooled, open_pooled};

fn paths(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pool = dir.join(format!("nvt-crashproc-{}-{tag}.pool", std::process::id()));
    let log = dir.join(format!("nvt-crashproc-{}-{tag}.log", std::process::id()));
    (pool, log)
}

fn open_log(path: &str) -> std::fs::File {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap()
}

/// Child-process entry point, dispatched via environment variables. When
/// `NVT_CRASH_CHILD` is unset (the normal test run) this test is a no-op;
/// when set, its value picks the structure under attack.
#[test]
fn child_entry() {
    let Ok(kind) = std::env::var("NVT_CRASH_CHILD") else {
        return;
    };
    match kind.as_str() {
        "list" => detectable_set_child::<PooledList>(),
        "hash" => detectable_set_child::<PooledHash>(),
        "skiplist" => set_child::<PooledSkip>(),
        "ellen" => set_child::<PooledEllen>(),
        "nm" => set_child::<PooledNm>(),
        "soft-list" => set_child::<PooledSoftList>(),
        "soft-hash" => set_child::<PooledSoftHash>(),
        "queue" => queue_child(),
        "stack" => stack_child(),
        "churn" => churn_child(),
        "sharded" => sharded_child(),
        other => panic!("unknown NVT_CRASH_CHILD kind {other:?}"),
    }
}

/// Sharded-set workload: the same insert/remove intent-ack discipline as
/// the single-pool sets, but over a [`ShardedSet`] whose `NVT_POOL` is a
/// *directory* of shard pools — all open concurrently in this one process,
/// keys hash-routed across them. The SIGKILL therefore dirties every shard
/// at once.
fn sharded_child() {
    let dir = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = ShardedSet::<PooledList>::open(&dir).unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    let mut k = start_key;
    loop {
        record("i", k);
        if set.insert(k, k.wrapping_mul(7)) {
            record("I", k);
        }
        if k % 3 == 2 {
            let victim = k - 2;
            record("r", victim);
            if set.remove(victim) {
                record("R", victim);
            }
        }
        k += 1;
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

/// Churn-heavy list workload for the leak-regression oracle: insert `k`,
/// and as soon as the window is full remove `k - CHURN_WINDOW`, so all but
/// the last few keys are dead. Almost every node the child allocates is
/// retired to EBR — exactly the population a SIGKILL strands as
/// allocated-but-unreachable, which the reopen GC must reclaim. Victims
/// are unique and never reinserted (same intent/ack oracle as the sets).
const CHURN_WINDOW: u64 = 8;

fn churn_child() {
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = open_pooled::<PooledList>(&pool_path, ROOT).unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    let mut k = start_key;
    loop {
        record("i", k);
        if set.insert(k, k.wrapping_mul(7)) {
            record("I", k);
        }
        if k >= start_key + CHURN_WINDOW {
            let victim = k - CHURN_WINDOW;
            record("r", victim);
            if set.remove(victim) {
                record("R", victim);
            }
        }
        k += 1;
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

/// The set workload of [`set_child`], driven through the **detectable**
/// API: every mutation registers under a durable [`OpId`], predicted ahead
/// of the call (`(slot, last seq + 1)`) and written into the `fsync`ed
/// intent line — so the parent can ask the library, by id, what happened to
/// the operation the kill interrupted.
fn detectable_set_child<S: PoolAttach + nvtraverse::PoolTrace + DurableSet<u64, u64>>() {
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = open_pooled::<S>(&pool_path, ROOT).unwrap();
    // A fresh descriptor slot per child run: crashed slots stay answerable.
    let mut tok = set.pool().op_token().unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64, id: OpId| {
        writeln!(log, "{tag} {k} {}", id.to_bits()).unwrap();
        log.sync_data().unwrap();
    };
    fn next_id(tok: &OpToken) -> OpId {
        OpId::new(tok.slot(), tok.last_op().map_or(0, |id| id.seq()) + 1)
    }

    let mut k = start_key;
    loop {
        let predicted = next_id(&tok);
        record("i", k, predicted);
        let (id, fresh) = set.insert_detectable(&mut tok, k, k.wrapping_mul(7)).unwrap();
        assert_eq!(id, predicted, "insert armed under an unpredicted OpId");
        if fresh {
            record("I", k, id);
        }
        if k % 3 == 2 {
            let victim = k - 2;
            let predicted = next_id(&tok);
            record("r", victim, predicted);
            let (id, hit) = set.remove_detectable(&mut tok, victim).unwrap();
            assert_eq!(id, predicted, "remove armed under an unpredicted OpId");
            if hit {
                record("R", victim, id);
            }
        }
        k += 1;
        // The parent kills us long before this; bail out in case it died.
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

/// The shared set workload: insert `start_key, start_key+1, …`; after every
/// key ≡ 2 (mod 3), remove the key ≡ 0 (mod 3) two below it. Victims are
/// unique and never reinserted, which is what makes the parent's oracle
/// exact.
fn set_child<S: PoolAttach + nvtraverse::PoolTrace + DurableSet<u64, u64>>() {
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let set = open_pooled::<S>(&pool_path, ROOT).unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    let mut k = start_key;
    loop {
        record("i", k);
        if set.insert(k, k.wrapping_mul(7)) {
            record("I", k);
        }
        if k % 3 == 2 {
            let victim = k - 2;
            record("r", victim);
            if set.remove(victim) {
                record("R", victim);
            }
        }
        k += 1;
        // The parent kills us long before this; bail out in case it died.
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

/// Queue workload: enqueue `start_key, start_key+1, …` (intent `i`, ack
/// `I`); every fifth step dequeue once (intent `d`, ack `D <value>`). The
/// 5:1 ratio keeps the queue non-empty, so every dequeue returns a value.
fn queue_child() {
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let q = open_pooled::<PooledQueue>(&pool_path, ROOT).unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    let mut k = start_key;
    loop {
        record("i", k);
        q.enqueue(k);
        record("I", k);
        k += 1;
        if k.is_multiple_of(5) {
            record("d", 0);
            if let Some(v) = q.dequeue() {
                record("D", v);
            }
        }
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

/// Stack workload: push `start_key, start_key+1, …` (intent `u`, ack `U`);
/// every fourth step pop once (intent `p`, ack `P <value>`). The 4:1 ratio
/// keeps the stack non-empty, so every pop returns a value.
fn stack_child() {
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let start_key: u64 = std::env::var("NVT_START_KEY").unwrap().parse().unwrap();

    let s = open_pooled::<PooledStack>(&pool_path, ROOT).unwrap();
    let mut log = open_log(&log_path);
    let mut record = |tag: &str, k: u64| {
        writeln!(log, "{tag} {k}").unwrap();
        log.sync_data().unwrap();
    };

    let mut k = start_key;
    loop {
        record("u", k);
        s.push(k);
        record("U", k);
        k += 1;
        if k.is_multiple_of(4) {
            record("p", 0);
            if let Some(v) = s.pop() {
                record("P", v);
            }
        }
        if k > start_key + 2_000_000 {
            std::process::exit(3);
        }
    }
}

#[derive(Default, Debug, Clone, Copy)]
struct KeyLog {
    intent_insert: bool,
    acked_insert: bool,
    intent_remove: bool,
    acked_remove: bool,
    /// Durable [`OpId`] bits from a detectable child's insert intent line.
    insert_op: Option<u64>,
    /// Durable [`OpId`] bits from a detectable child's remove intent line.
    remove_op: Option<u64>,
}

fn parse_set_log(path: &Path) -> BTreeMap<u64, KeyLog> {
    let mut out: BTreeMap<u64, KeyLog> = BTreeMap::new();
    let data = std::fs::read_to_string(path).unwrap_or_default();
    for line in data.lines() {
        // The final line can be torn by the kill; ignore anything malformed
        // (a torn intent line means the op had not started: `sync_data`
        // completes before the operation runs).
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(k)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(k) = k.parse::<u64>() else { continue };
        // Detectable children append the op's predicted OpId bits; a line
        // missing them (plain children, or torn mid-line) carries none.
        let op = parts.next().and_then(|b| b.parse::<u64>().ok());
        let e = out.entry(k).or_default();
        match tag {
            "i" => {
                e.intent_insert = true;
                e.insert_op = op.or(e.insert_op);
            }
            "I" => e.acked_insert = true,
            "r" => {
                e.intent_remove = true;
                e.remove_op = op.or(e.remove_op);
            }
            "R" => e.acked_remove = true,
            _ => {}
        }
    }
    out
}

/// Spawns a `kind` child, waits for it to ack at least `min_acks`
/// operations (any uppercase tag), SIGKILLs it, and returns.
fn run_child_until(kind: &str, pool: &Path, log: &Path, start_key: u64, min_acks: usize) {
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "child_entry", "--test-threads=1", "--nocapture"])
        .env("NVT_CRASH_CHILD", kind)
        .env("NVT_POOL", pool)
        .env("NVT_LOG", log)
        .env("NVT_START_KEY", start_key.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let acks = std::fs::read_to_string(log)
            .unwrap_or_default()
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_uppercase()))
            .count();
        if acks >= min_acks {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited on its own before the kill: {status:?}");
        }
        assert!(
            Instant::now() < deadline,
            "child too slow: only {acks}/{min_acks} acked ops"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // SIGKILL: no destructors, no msync, no clean-close marker.
    child.kill().unwrap();
    child.wait().unwrap();
}

/// Reopens the pool after a kill and asserts the invariants every structure
/// shares: the kill left no clean-shutdown marker, and the heap's allocator
/// metadata verifies block by block.
fn reopen_checked<S: PoolAttach + nvtraverse::PoolTrace>(pool_path: &Path) -> PooledHandle<S> {
    // Reopen: Pool::open → root lookup → recover(), all inside the handle.
    let h = open_pooled::<S>(pool_path, ROOT).unwrap();
    assert!(
        !h.pool().recovery_report().clean_shutdown,
        "SIGKILL must not leave a clean-shutdown marker"
    );
    h.pool().verify_heap().unwrap_or_else(|e| {
        panic!("pool heap corrupt after SIGKILL: {e}");
    });
    h
}

/// The set oracle: key-by-key durable linearizability from the intent/ack
/// log. `snapshot` and `check` supply the structure-specific quiescent walk
/// and invariant checker. Returns the highest attempted key.
fn validate_set<S>(
    pool_path: &Path,
    log_path: &Path,
    snapshot: impl Fn(&S) -> Vec<(u64, u64)>,
    check: impl Fn(&S) -> Result<usize, String>,
) -> u64
where
    S: PoolAttach + nvtraverse::PoolTrace + DurableSet<u64, u64>,
{
    let set = reopen_checked::<S>(pool_path);
    // Structural invariants: recovery left no marked node / pending op.
    check(&set).unwrap_or_else(|e| panic!("invariants violated after recovery: {e}"));

    let log = parse_set_log(log_path);
    let present: BTreeMap<u64, u64> = snapshot(&set).into_iter().collect();

    // No invented keys: everything present must at least have been attempted.
    for &k in present.keys() {
        assert!(
            log.get(&k).is_some_and(|e| e.intent_insert),
            "key {k} present but never attempted"
        );
    }
    // Durable linearizability, key by key.
    let mut max_intent = 0;
    for (&k, e) in &log {
        max_intent = max_intent.max(k);
        let here = present.contains_key(&k);
        if e.acked_remove {
            assert!(!here, "key {k}: remove was acked but the key came back");
        } else if e.acked_insert && !e.intent_remove {
            assert!(here, "key {k}: insert was acked but the key is lost");
            assert_eq!(present[&k], k.wrapping_mul(7), "key {k}: wrong value");
        }
        // Any other combination was in flight at the kill: either outcome
        // is a correct durable linearization.
    }

    // Detectable children: the library itself is the primary oracle. Every
    // logged OpId must be answerable — descriptor slots are never reused,
    // so ops from earlier cycles (and earlier kills) stay classified — and
    // the newest logged op, the only one that can have been in flight at
    // the kill, must answer `Committed` exactly when its effect survived.
    let pool = set.pool();
    // (bits, key, is_remove, acked)
    let mut newest: Option<(u64, u64, bool, bool)> = None;
    for (&k, e) in &log {
        let ops = [
            e.insert_op.map(|b| (b, k, false, e.acked_insert)),
            e.remove_op.map(|b| (b, k, true, e.acked_remove)),
        ];
        for op in ops.into_iter().flatten() {
            assert!(
                pool.op_outcome(OpId::from_bits(op.0)).is_some(),
                "key {k}: the library has no answer for logged op {:#x}",
                op.0
            );
            if newest.is_none_or(|(bits, ..)| op.0 > bits) {
                newest = Some(op);
            }
        }
    }
    if let Some((bits, k, is_remove, acked)) = newest {
        let outcome = pool.op_outcome(OpId::from_bits(bits)).unwrap();
        let here = present.contains_key(&k);
        if acked {
            // The op returned (and in this workload every completed op is
            // effectful: inserts are fresh, removes hit), so its closing
            // fence made both its effect and its descriptor durable.
            assert_eq!(
                outcome,
                OpOutcome::Committed,
                "key {k}: newest op was acked effectful but the library disagrees"
            );
        } else {
            let effect_survived = if is_remove { !here } else { here };
            assert_eq!(
                outcome == OpOutcome::Committed,
                effect_survived,
                "key {k}: in-flight {} answered {outcome:?} but present={here}",
                if is_remove { "remove" } else { "insert" }
            );
        }
        if !is_remove && outcome == OpOutcome::Committed {
            assert_eq!(present[&k], k.wrapping_mul(7), "committed insert lost its value");
        }
    }

    // The recovered structure stays fully usable.
    assert!(set.insert(u64::MAX - 1, 42));
    assert_eq!(set.get(u64::MAX - 1), Some(42));
    assert!(set.remove(u64::MAX - 1));
    set.close().unwrap();
    max_intent
}

/// The generic set round-trip: create → (SIGKILL → reopen → recover →
/// verify) × `cycles`, each child continuing where the log left off so
/// every cycle revalidates the accumulated history.
fn sigkill_set_roundtrip<S>(
    kind: &str,
    cycles: usize,
    snapshot: impl Fn(&S) -> Vec<(u64, u64)>,
    check: impl Fn(&S) -> Result<usize, String>,
) where
    S: PoolAttach + nvtraverse::PoolTrace + DurableSet<u64, u64>,
{
    let (pool_path, log_path) = paths(kind);
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    // Create the pool and the named structure crash-free, then let go.
    create_pooled::<S>(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    let mut start_key = 0;
    for cycle in 0..cycles {
        run_child_until(kind, &pool_path, &log_path, start_key, 150 * (cycle + 1));
        let max_intent = validate_set::<S>(&pool_path, &log_path, &snapshot, &check);
        // Next child starts past everything attempted, keeping the
        // "victims are never reinserted" oracle exact (aligned to 3).
        start_key = (max_intent + 3).next_multiple_of(3);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

#[test]
fn sigkill_mid_workload_recovers_list() {
    sigkill_set_roundtrip::<PooledList>(
        "list",
        3,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(false),
    );
}

#[test]
fn sigkill_mid_workload_recovers_hash() {
    sigkill_set_roundtrip::<PooledHash>(
        "hash",
        2,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(false),
    );
}

#[test]
fn sigkill_mid_workload_recovers_skiplist() {
    // check_consistency(false) also audits the rebuilt towers: every tower
    // link must point at a live bottom node, sorted per level.
    sigkill_set_roundtrip::<PooledSkip>(
        "skiplist",
        2,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(false),
    );
}

#[test]
fn sigkill_mid_workload_recovers_ellen_bst() {
    // require_clean: recovery must have helped every flagged/marked update
    // word to completion.
    sigkill_set_roundtrip::<PooledEllen>(
        "ellen",
        2,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(true),
    );
}

#[test]
fn sigkill_mid_workload_recovers_nm_bst() {
    // require_clean: recovery must have completed every injected deletion.
    sigkill_set_roundtrip::<PooledNm>(
        "nm",
        2,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(true),
    );
}

#[test]
fn sigkill_mid_workload_recovers_soft_list() {
    // SOFT: the pool file holds no trustworthy link words at all — the
    // reopen must rebuild the entire chain from the validity headers, and
    // the recovery GC must keep sealed-but-unlinked nodes.
    sigkill_set_roundtrip::<PooledSoftList>(
        "soft-list",
        3,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(false),
    );
}

#[test]
fn sigkill_mid_workload_recovers_soft_hash() {
    sigkill_set_roundtrip::<PooledSoftHash>(
        "soft-hash",
        2,
        |s| s.iter_snapshot(),
        |s| s.check_consistency(false),
    );
}

/// The leak-regression oracle: after a churn-heavy SIGKILL, reopen (the
/// root-driven mark-sweep runs inside `Pool::open`), recover, drain the
/// collector — and then the pool's allocated-block count must equal the
/// structure's reachable footprint **exactly**: one head sentinel plus one
/// node per live key. Any surplus is a leak the sweep failed to reclaim;
/// any deficit means it freed reachable data. Returns the next cycle's
/// start key.
fn validate_churn(pool_path: &Path, log_path: &Path) -> u64 {
    let set = reopen_checked::<PooledList>(pool_path);
    let report = set.pool().recovery_report();
    assert!(
        report.gc_ran,
        "single-root pool opened through PooledHandle must run the recovery GC"
    );
    assert!(
        report.reclaimed_blocks > 0,
        "a SIGKILL mid-churn strands retired-but-unreclaimed nodes, \
         yet the sweep reclaimed nothing"
    );
    assert!(
        report.reclaimed_bytes as usize >= report.reclaimed_blocks * 32,
        "reclaimed byte accounting below the minimum block size"
    );
    set.check_consistency(false)
        .unwrap_or_else(|e| panic!("list invariants violated after GC + recovery: {e}"));

    // Durable linearizability, same key rules as the set oracle — the GC
    // must not have changed any answer.
    let log = parse_set_log(log_path);
    let present: BTreeMap<u64, u64> = set.iter_snapshot().into_iter().collect();
    let mut max_intent = 0;
    for (&k, e) in &log {
        max_intent = max_intent.max(k);
        let here = present.contains_key(&k);
        if e.acked_remove {
            assert!(!here, "key {k}: remove was acked but the key came back");
        } else if e.acked_insert && !e.intent_remove {
            assert!(here, "key {k}: insert was acked but the key is lost");
        }
    }
    for &k in present.keys() {
        assert!(
            log.get(&k).is_some_and(|e| e.intent_insert),
            "key {k} present but never attempted"
        );
    }

    // The oracle itself: reachable footprint == allocated footprint.
    set.drain_retired();
    let live = set.pool().live_offsets().len();
    eprintln!(
        "churn cycle: GC reclaimed {} blocks / {} bytes in {} µs; \
         {live} allocated blocks remain for {} live keys",
        report.reclaimed_blocks,
        report.reclaimed_bytes,
        report.gc_nanos / 1_000,
        present.len()
    );
    assert_eq!(
        live,
        1 + present.len(),
        "pool holds {live} allocated blocks but the list reaches only \
         1 (head) + {} (nodes): the crash leaked blocks past the GC",
        present.len()
    );
    set.close().unwrap();
    (max_intent + CHURN_WINDOW + 1).next_multiple_of(CHURN_WINDOW)
}

/// The churn-heavy SIGKILL round ISSUE 4 asks for: kill a child that
/// retires almost everything it allocates, then prove the reopen GC
/// returns the pool to exactly the reachable live set — and that a clean
/// close leaves the GC nothing at all to reclaim.
#[test]
fn sigkill_churn_reclaims_leaked_blocks() {
    let (pool_path, log_path) = paths("churn");
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    create_pooled::<PooledList>(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    let mut start_key = 0;
    for cycle in 0..2 {
        run_child_until("churn", &pool_path, &log_path, start_key, 300 * (cycle + 1));
        start_key = validate_churn(&pool_path, &log_path);
    }

    // validate_churn closed cleanly (collector drained): the sweep of a
    // clean close/reopen must find exactly nothing.
    let set = open_pooled::<PooledList>(&pool_path, ROOT).unwrap();
    let report = set.pool().recovery_report();
    assert!(report.gc_ran);
    assert_eq!(
        report.reclaimed_blocks, 0,
        "clean close must leave no unreachable blocks for the sweep"
    );
    assert_eq!(report.reclaimed_bytes, 0);
    set.close().unwrap();

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

/// Queue oracle: with one single-threaded child enqueuing consecutive
/// integers and dequeuing in FIFO order, the surviving contents must be a
/// consecutive ascending run whose boundaries are pinned by the log:
///
/// * tail: every acked enqueue survives; at most the one in-flight enqueue
///   may additionally have landed (`last ∈ [max acked, max intended]`);
/// * head: no acked dequeue resurfaces (`first > max acked dequeue`), and
///   the number of *silently* consumed values is bounded by the number of
///   unacked dequeue intents (one per kill at most).
///
/// Returns the next child's start key (one past the surviving tail, keeping
/// the contents consecutive across cycles).
fn validate_queue(pool_path: &Path, log_path: &Path, base: u64) -> u64 {
    let q = reopen_checked::<PooledQueue>(pool_path);
    let contents = q.iter_snapshot();

    let data = std::fs::read_to_string(log_path).unwrap_or_default();
    let (mut max_enq_intent, mut max_enq_ack, mut max_deq_ack) = (None, None, None);
    let (mut d_intents, mut d_acks) = (0usize, 0usize);
    for line in data.lines() {
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(k)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(k) = k.parse::<u64>() else { continue };
        match tag {
            "i" => max_enq_intent = max_enq_intent.max(Some(k)),
            "I" => max_enq_ack = max_enq_ack.max(Some(k)),
            "d" => d_intents += 1,
            "D" => {
                d_acks += 1;
                max_deq_ack = max_deq_ack.max(Some(k));
            }
            _ => {}
        }
    }

    assert!(!contents.is_empty(), "oracle is vacuous: queue came back empty");
    assert!(
        contents.windows(2).all(|w| w[1] == w[0] + 1),
        "queue lost or reordered values: {contents:?}"
    );
    let (first, last) = (contents[0], *contents.last().unwrap());
    let max_enq_ack = max_enq_ack.expect("child acked no enqueue");
    assert!(last >= max_enq_ack, "acked enqueue {max_enq_ack} lost (tail {last})");
    assert!(
        last <= max_enq_intent.unwrap(),
        "value {last} present but never attempted"
    );
    let floor = max_deq_ack.map_or(base, |v| v + 1);
    assert!(first >= floor, "acked dequeue resurfaced: head {first} < {floor}");
    assert!(
        (first - floor) as usize <= d_intents - d_acks,
        "{} values vanished from the head but only {} dequeues were in flight",
        first - floor,
        d_intents - d_acks
    );
    q.close().unwrap();
    last + 1
}

#[test]
fn sigkill_mid_workload_recovers_queue() {
    let (pool_path, log_path) = paths("queue");
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    create_pooled::<PooledQueue>(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    let mut start_key = 0;
    for cycle in 0..2 {
        run_child_until("queue", &pool_path, &log_path, start_key, 150 * (cycle + 1));
        start_key = validate_queue(&pool_path, &log_path, 0);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

/// Stack oracle: replay the cycle's acked ops over the state resolved after
/// the previous kill; the surviving stack must equal the replayed stack,
/// modulo the single in-flight op at the kill (one extra value on top if an
/// unacked push landed, one missing if an unacked pop landed).
///
/// `expected` carries the resolved bottom→top state across cycles; returns
/// the next child's start key.
fn validate_stack(pool_path: &Path, log_path: &Path, expected: &mut Vec<u64>) -> u64 {
    let s = reopen_checked::<PooledStack>(pool_path);
    let mut actual = s.iter_snapshot();
    actual.reverse(); // iter_snapshot is top-first; compare bottom→top

    let data = std::fs::read_to_string(log_path).unwrap_or_default();
    let mut in_flight: Option<(char, u64)> = None;
    let mut next_key = expected.iter().copied().max().map_or(0, |k| k + 1);
    for line in data.lines() {
        let mut parts = line.split_whitespace();
        let (Some(tag), Some(k)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(k) = k.parse::<u64>() else { continue };
        match tag {
            "u" => {
                in_flight = Some(('u', k));
                next_key = next_key.max(k + 1);
            }
            "U" => {
                expected.push(k);
                in_flight = None;
            }
            "p" => in_flight = Some(('p', 0)),
            "P" => {
                assert_eq!(expected.pop(), Some(k), "pop acked a non-top value");
                in_flight = None;
            }
            _ => {}
        }
    }

    let matches_exactly = actual == *expected;
    let landed_push = matches!(in_flight, Some(('u', k))
        if actual.len() == expected.len() + 1
            && actual[..expected.len()] == expected[..]
            && actual[expected.len()] == k);
    let landed_pop = matches!(in_flight, Some(('p', _))
        if actual.len() + 1 == expected.len() && expected[..actual.len()] == actual[..]);
    assert!(
        matches_exactly || landed_push || landed_pop,
        "stack state diverges from the log replay:\n  expected {:?}\n  actual   {:?}\n  in-flight {:?}",
        &expected[expected.len().saturating_sub(8)..],
        &actual[actual.len().saturating_sub(8)..],
        in_flight
    );
    // Resolve the ambiguity: the observed state is the truth from here on.
    *expected = actual;
    s.close().unwrap();
    next_key
}

#[test]
fn sigkill_mid_workload_recovers_stack() {
    let (pool_path, log_path) = paths("stack");
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    create_pooled::<PooledStack>(&pool_path, POOL_CAP, ROOT)
        .unwrap()
        .close()
        .unwrap();

    let mut expected = Vec::new();
    let mut start_key = 0;
    for _cycle in 0..2 {
        // Fresh log per cycle: the replay oracle folds each cycle's ops
        // onto the state resolved after the previous kill.
        let _ = std::fs::remove_file(&log_path);
        run_child_until("stack", &pool_path, &log_path, start_key, 150);
        start_key = validate_stack(&pool_path, &log_path, &mut expected);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

// ---- sharded set: N pools SIGKILLed at once, N independent recoveries ------

/// Post-kill validation of the sharded set — the acceptance oracle for
/// first-class multi-pool support:
///
/// 1. every shard pool reopens **independently** (own heap walk, own
///    eager mark-sweep GC, own dirty-shutdown marker, own `recover()`);
/// 2. every surviving key lives in exactly the shard the hash routes it
///    to (no key leaks across pools);
/// 3. the union of shards passes the same durable-linearizability oracle
///    as the single-pool sets.
///
/// Returns the next cycle's start key.
fn validate_sharded(dir: &Path, log_path: &Path) -> u64 {
    let set = ShardedSet::<PooledList>::open(dir).unwrap();
    assert_eq!(set.shard_count(), SHARD_COUNT);
    for (i, report) in set.recovery_reports().iter().enumerate() {
        assert!(
            !report.clean_shutdown,
            "shard {i}: SIGKILL must not leave a clean-shutdown marker"
        );
        assert!(
            report.gc_ran,
            "shard {i}: tracer is registered before its open — the GC must run"
        );
        set.shard(i)
            .pool()
            .verify_heap()
            .unwrap_or_else(|e| panic!("shard {i} heap corrupt after SIGKILL: {e}"));
        set.shard(i)
            .check_consistency(false)
            .unwrap_or_else(|e| panic!("shard {i} invariants violated after recovery: {e}"));
    }

    // Union snapshot, checking the routing invariant on the way.
    let mut present: BTreeMap<u64, u64> = BTreeMap::new();
    for i in 0..set.shard_count() {
        for (k, v) in set.shard(i).iter_snapshot() {
            assert_eq!(
                set.shard_index_of(k),
                i,
                "key {k} surfaced in shard {i}, not the shard it routes to"
            );
            assert!(present.insert(k, v).is_none(), "key {k} present in two shards");
        }
    }

    // The set oracle, over the union (identical rules to validate_set).
    let log = parse_set_log(log_path);
    for &k in present.keys() {
        assert!(
            log.get(&k).is_some_and(|e| e.intent_insert),
            "key {k} present but never attempted"
        );
    }
    let mut max_intent = 0;
    for (&k, e) in &log {
        max_intent = max_intent.max(k);
        let here = present.contains_key(&k);
        if e.acked_remove {
            assert!(!here, "key {k}: remove was acked but the key came back");
        } else if e.acked_insert && !e.intent_remove {
            assert!(here, "key {k}: insert was acked but the key is lost");
            assert_eq!(present[&k], k.wrapping_mul(7), "key {k}: wrong value");
        }
    }

    // The recovered sharded set stays fully usable across all shards.
    for k in 0..2 * SHARD_COUNT as u64 {
        assert!(set.insert(u64::MAX - 1 - k, 42));
        assert_eq!(set.get(u64::MAX - 1 - k), Some(42));
        assert!(set.remove(u64::MAX - 1 - k));
    }
    set.close().unwrap();
    (max_intent + 3).next_multiple_of(3)
}

/// The acceptance test of ISSUE 5: ≥ 2 pools open concurrently in one
/// process, SIGKILLed mid-workload, every shard recovering independently
/// with the `ShardedSet` oracle passing.
#[test]
fn sigkill_mid_workload_recovers_sharded_set() {
    let dir = std::env::temp_dir().join(format!("nvt-crashproc-{}-sharded.shards", std::process::id()));
    let log_path = std::env::temp_dir().join(format!("nvt-crashproc-{}-sharded.log", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&log_path);

    ShardedSet::<PooledList>::create(&dir, SHARD_COUNT, SHARD_CAP)
        .unwrap()
        .close()
        .unwrap();

    let mut start_key = 0;
    for cycle in 0..2 {
        run_child_until("sharded", &dir, &log_path, start_key, 150 * (cycle + 1));
        start_key = validate_sharded(&dir, &log_path);
    }

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}

// ---- concurrent allocator storm under SIGKILL ------------------------------

/// Threads in the allocator-storm child.
const STORM_THREADS: usize = 8;
/// Block-reference slots each storm thread owns.
const STORM_SLOTS: usize = 64;
const STORM_ROOT: &str = "storm-slots";

/// Child-process entry point for the allocator storm (see
/// `sigkill_mid_alloc_storm_recovers`): 8 threads hammer the lock-free
/// allocator with alloc/free/realloc while every held block is tracked in a
/// persistent slot array inside the pool itself, so the parent can audit
/// the live set after the kill.
///
/// Per-slot protocol (all slot writes flushed + fenced):
///
/// * free:    slot := 0, persist, then `dealloc` — a kill in between leaks
///   the block (it stays allocated, referenced by nothing), never the
///   reverse: a nonzero slot always names an allocated block.
/// * alloc:   `alloc`, stamp + flush the payload, persist, then slot := off.
/// * realloc: slot := 0, persist, `realloc`, stamp, persist, slot := new.
///
/// So at any kill point, every nonzero slot points at an allocated block
/// with a valid stamp, and at most 2 blocks per thread (realloc holds two
/// mid-copy) are allocated but untracked.
#[test]
fn alloc_storm_child_entry() {
    let Ok(_) = std::env::var("NVT_STORM_CHILD") else {
        return;
    };
    let pool_path = std::env::var("NVT_POOL").unwrap();
    let log_path = std::env::var("NVT_LOG").unwrap();
    let pool = Pool::builder().path(&pool_path).open().unwrap();
    let slots_off = pool.root_offset(STORM_ROOT).unwrap();
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .unwrap();

    fn persist(p: *const u64) {
        MmapBackend::flush(p as *const u8);
        MmapBackend::fence();
    }
    let progress = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..STORM_THREADS {
            let pool = pool.clone();
            let progress = &progress;
            s.spawn(move || {
                let mut x = (t as u64).wrapping_mul(0x9E37_79B9) + 0xDEAD;
                loop {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let idx = t * STORM_SLOTS + (x % STORM_SLOTS as u64) as usize;
                    let slot = (pool.at(slots_off) as *mut u64).wrapping_add(idx);
                    let cur = unsafe { slot.read_volatile() };
                    let stamp = |p: *mut u8, size: usize| {
                        // First word = slot index, so the parent can verify
                        // block↔slot agreement; last byte spot-checked too.
                        unsafe {
                            (p as *mut u64).write(idx as u64);
                            p.add(size - 1).write(idx as u8);
                        }
                        MmapBackend::flush_range(p, size);
                    };
                    if cur != 0 {
                        if x.is_multiple_of(4) {
                            // Realloc: untrack, move, retrack.
                            unsafe { slot.write_volatile(0) };
                            persist(slot);
                            let size = 24 + (x % 4000) as usize;
                            let p = pool.at(cur);
                            if let Some(np) = unsafe { pool.realloc(p, size) } {
                                stamp(np, size);
                                MmapBackend::fence();
                                unsafe {
                                    slot.write_volatile(pool.offset_of(np as *const u8))
                                };
                                persist(slot);
                            } else {
                                unsafe { pool.dealloc(p) };
                            }
                        } else {
                            // Free: untrack first.
                            unsafe { slot.write_volatile(0) };
                            persist(slot);
                            unsafe { pool.dealloc(pool.at(cur)) };
                        }
                    } else {
                        let size = 24 + (x % 4000) as usize;
                        if let Some(p) = pool.alloc(size, 8) {
                            stamp(p, size);
                            MmapBackend::fence();
                            unsafe { slot.write_volatile(pool.offset_of(p as *const u8)) };
                            persist(slot);
                        }
                    }
                    progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Report progress until the kill.
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let n = progress.load(std::sync::atomic::Ordering::Relaxed);
            writeln!(log, "{n}").unwrap();
            log.sync_data().unwrap();
        }
    });
}

/// Audits the pool after a storm kill: heap verifies, every tracked slot
/// points at a distinct allocated block with the right stamp, and at most
/// `2 × STORM_THREADS` allocated blocks are untracked (in-flight at the
/// kill). Frees the untracked blocks (nothing references them) so leaks do
/// not accumulate across cycles, and returns the pool to a state where the
/// next storm child can continue.
fn storm_validate(pool_path: &Path) {
    let pool = Pool::builder().path(pool_path).open().unwrap();
    assert!(!pool.recovery_report().clean_shutdown);
    let report = pool
        .verify_heap()
        .unwrap_or_else(|e| panic!("pool heap corrupt after SIGKILL storm: {e}"));
    let slots_off = pool.root_offset(STORM_ROOT).unwrap();
    let total_slots = STORM_THREADS * STORM_SLOTS;

    // Collect tracked offsets; check uniqueness (a block in two slots would
    // mean the allocator handed one block out twice).
    let mut tracked = std::collections::BTreeMap::new();
    for idx in 0..total_slots {
        let off = unsafe { (pool.at(slots_off) as *const u64).add(idx).read() };
        if off != 0 {
            if let Some(prev) = tracked.insert(off, idx) {
                panic!("block {off:#x} tracked by slots {prev} and {idx}");
            }
        }
    }
    // Every tracked block is live, stamped with its slot index.
    let live: std::collections::BTreeMap<u64, u64> = report
        .live
        .iter()
        .map(|&(block, payload)| (block + 16, payload))
        .collect();
    for (&off, &idx) in &tracked {
        let payload = live.get(&off).unwrap_or_else(|| {
            panic!("slot {idx} references {off:#x}, which is not an allocated block")
        });
        let first = unsafe { (pool.at(off) as *const u64).read() };
        assert_eq!(first, idx as u64, "block {off:#x} stamped for the wrong slot");
        assert!(*payload >= 24, "block {off:#x} smaller than any storm alloc");
    }
    // The slot array itself is one allocated block; anything else untracked
    // was in flight at the kill — bounded by 2 per thread per kill. Free
    // the strays so leakage does not accumulate across kill cycles.
    let mut strays = Vec::new();
    for &off in live.keys() {
        if off != slots_off && !tracked.contains_key(&off) {
            strays.push(off);
        }
    }
    assert!(
        !tracked.is_empty(),
        "storm audit is vacuous: no slot held a block at the kill"
    );
    assert!(
        strays.len() <= 2 * STORM_THREADS,
        "{} untracked live blocks — more than {} in-flight ops can explain",
        strays.len(),
        2 * STORM_THREADS
    );
    for off in strays {
        unsafe { pool.dealloc(pool.at(off)) };
    }
    // The recovered allocator must be fully usable: drain-and-restore one
    // block per class size without tripping any header invariant.
    for size in [16usize, 100, 1000, 5000, 70_000] {
        let p = pool.alloc(size, 8).unwrap();
        unsafe { pool.dealloc(p) };
    }
    pool.verify_heap().unwrap();
    drop(pool);
}

#[test]
fn sigkill_mid_alloc_storm_recovers() {
    let dir = std::env::temp_dir();
    let pool_path = dir.join(format!("nvt-storm-{}.pool", std::process::id()));
    let log_path = dir.join(format!("nvt-storm-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&pool_path);
    let _ = std::fs::remove_file(&log_path);

    // Create the pool and the persistent slot array.
    {
        let pool = Pool::builder().path(&pool_path).capacity(64 << 20).create().unwrap();
        let total = STORM_THREADS * STORM_SLOTS;
        let slots = pool.alloc(total * 8, 8).unwrap();
        unsafe { std::ptr::write_bytes(slots, 0, total * 8) };
        MmapBackend::flush_range(slots, total * 8);
        MmapBackend::fence();
        pool.set_root_offset(STORM_ROOT, pool.offset_of(slots)).unwrap();
    }

    for _cycle in 0..2 {
        // Fresh progress log per cycle: the child's op counter restarts at
        // zero, so a stale line from the previous cycle would satisfy (or
        // double) the threshold.
        let _ = std::fs::remove_file(&log_path);
        let exe = std::env::current_exe().unwrap();
        let mut child = std::process::Command::new(exe)
            .args(["--exact", "alloc_storm_child_entry", "--test-threads=1", "--nocapture"])
            .env("NVT_STORM_CHILD", "1")
            .env("NVT_POOL", &pool_path)
            .env("NVT_LOG", &log_path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        // Wait until the threads have collectively done enough ops.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let ops: u64 = std::fs::read_to_string(&log_path)
                .unwrap_or_default()
                .lines()
                .rev()
                .find_map(|l| l.trim().parse().ok())
                .unwrap_or(0);
            if ops >= 100_000 {
                break;
            }
            if let Some(status) = child.try_wait().unwrap() {
                panic!("storm child exited on its own: {status:?}");
            }
            assert!(Instant::now() < deadline, "storm child too slow: {ops} ops");
            std::thread::sleep(Duration::from_millis(10));
        }
        child.kill().unwrap();
        child.wait().unwrap();
        storm_validate(&pool_path);
    }

    std::fs::remove_file(&pool_path).unwrap();
    std::fs::remove_file(&log_path).unwrap();
}
