//! Negative tests: deliberately broken durability policies must be *caught*
//! by the crash-test harness. This validates that the positive results in
//! `crash_sets.rs` are meaningful — the paper argues its flushes and fences
//! are all necessary ("removing any of them could violate the correctness of
//! some NVTraverse data structure", §4.3), and here we remove them and watch
//! the violations appear.

mod common;

use common::{standard_workload, Step};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::model::{key_verdict, MutOp};
use nvtraverse::policy::Durability;
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_pmem::{Backend, PCell, Sim, Word};
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::soft_list::SoftList;
use std::cell::{Cell, RefCell};

/// A policy that claims durability but never flushes or fences: every
/// completed operation evaporates in a crash.
#[derive(Debug, Clone, Copy, Default)]
struct NoFlush;

impl Durability for NoFlush {
    type B = Sim;
    const DURABLE: bool = true;
    fn t_load<T: Word>(c: &PCell<T, Sim>) -> T {
        c.load()
    }
    fn t_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        c.load()
    }
    fn ensure_reachable(_: *const u8) {}
    fn make_persistent(_: &[*const u8]) {}
    fn c_load<T: Word>(c: &PCell<T, Sim>) -> T {
        c.load()
    }
    fn c_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        c.load()
    }
    fn c_store<T: Word>(c: &PCell<T, Sim>, v: T) {
        c.store(v)
    }
    fn c_cas<T: Word>(c: &PCell<T, Sim>, cur: T, new: T) -> Result<T, T> {
        c.compare_exchange(cur, new)
    }
    fn c_cas_link<T>(
        c: &PCell<MarkedPtr<T>, Sim>,
        cur: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        c.compare_exchange(cur, new).map(drop)
    }
    fn persist_new_node(_: *const u8, _: usize) {}
    fn before_return() {}
}

/// A policy that flushes exactly like NVTraverse but never fences: in the
/// simulator (as on real hardware) a flush without a fence guarantees
/// nothing.
#[derive(Debug, Clone, Copy, Default)]
struct NoFence;

impl Durability for NoFence {
    type B = Sim;
    const DURABLE: bool = true;
    fn t_load<T: Word>(c: &PCell<T, Sim>) -> T {
        c.load()
    }
    fn t_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        c.load()
    }
    fn ensure_reachable(addr: *const u8) {
        Sim::flush(addr);
    }
    fn make_persistent(addrs: &[*const u8]) {
        for &a in addrs {
            Sim::flush(a);
        }
        // missing fence
    }
    fn c_load<T: Word>(c: &PCell<T, Sim>) -> T {
        let v = c.load();
        Sim::flush(c.addr());
        v
    }
    fn c_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        let v = c.load();
        Sim::flush(c.addr());
        v
    }
    fn c_store<T: Word>(c: &PCell<T, Sim>, v: T) {
        c.store(v);
        Sim::flush(c.addr());
    }
    fn c_cas<T: Word>(c: &PCell<T, Sim>, cur: T, new: T) -> Result<T, T> {
        let r = c.compare_exchange(cur, new);
        Sim::flush(c.addr());
        r
    }
    fn c_cas_link<T>(
        c: &PCell<MarkedPtr<T>, Sim>,
        cur: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        let r = c.compare_exchange(cur, new);
        Sim::flush(c.addr());
        r.map(drop)
    }
    fn persist_new_node(addr: *const u8, len: usize) {
        Sim::flush_range(addr, len);
    }
    fn before_return() {} // missing fence
}

/// SOFT with its single flush removed: validity headers are written and the
/// closing fence still runs, but nothing is ever flushed — at a crash the
/// seal words roll back and every completed update evaporates. SOFT's whole
/// durability budget is that one header flush, so under-flushing it must be
/// as detectable as gutting NVTraverse.
#[derive(Debug, Clone, Copy, Default)]
struct SoftUnderFlush;

impl Durability for SoftUnderFlush {
    type B = Sim;
    const DURABLE: bool = true;
    fn t_load<T: Word>(c: &PCell<T, Sim>) -> T {
        c.load()
    }
    fn t_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        c.load()
    }
    fn ensure_reachable(_: *const u8) {}
    fn make_persistent(_: &[*const u8]) {}
    fn c_load<T: Word>(c: &PCell<T, Sim>) -> T {
        c.load()
    }
    fn c_load_link<T>(c: &PCell<MarkedPtr<T>, Sim>) -> MarkedPtr<T> {
        c.load()
    }
    fn c_store<T: Word>(c: &PCell<T, Sim>, v: T) {
        c.store(v); // missing flush (Soft flushes here)
    }
    fn c_cas<T: Word>(c: &PCell<T, Sim>, cur: T, new: T) -> Result<T, T> {
        c.compare_exchange(cur, new) // missing flush (Soft flushes here)
    }
    fn c_cas_link<T>(
        c: &PCell<MarkedPtr<T>, Sim>,
        cur: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        // Links are volatile under SOFT: plain CAS is correct here.
        c.compare_exchange(cur, new).map(drop)
    }
    fn persist_new_node(_: *const u8, _: usize) {} // missing flush_range
    fn before_return() {
        Sim::fence(); // the fence alone persists nothing
    }
}

/// Like `exhaustive_crash_test`, but collects violations instead of
/// panicking, and without the structure-specific invariant checker (a broken
/// policy may corrupt anything).
fn count_violations_on<S: DurableSet<u64, u64>>(make: impl Fn() -> S) -> usize {
    install_quiet_panic_hook();
    let (prefill, workload) = standard_workload();

    // Pass 1: step span.
    let (steps_before, steps_total) = {
        let sim = SimHandle::new();
        let g = sim.enter();
        let s = make();
        for &(k, v) in &prefill {
            s.insert(k, v);
        }
        let b = sim.steps();
        for op in &workload {
            match *op {
                Step::Insert(k, v) => {
                    s.insert(k, v);
                }
                Step::Remove(k) => {
                    s.remove(k);
                }
                Step::Get(k) => {
                    s.get(k);
                }
            }
        }
        let t = sim.steps();
        drop(s);
        drop(g);
        (b, t)
    };

    let mut violations = 0;
    for crash_at in steps_before + 1..=steps_total {
        let sim = SimHandle::new();
        let g = sim.enter();
        let s = make();
        for &(k, v) in &prefill {
            s.insert(k, v);
        }
        let completed: RefCell<Vec<MutOp>> = RefCell::new(Vec::new());
        let in_flight: Cell<Option<MutOp>> = Cell::new(None);
        sim.arm_crash_at_step(crash_at);
        let _ = run_crashable(|| {
            for op in &workload {
                match *op {
                    Step::Insert(k, v) => {
                        in_flight.set(Some(MutOp::Insert {
                            key: k,
                            succeeded: false,
                        }));
                        let ok = s.insert(k, v);
                        completed.borrow_mut().push(MutOp::Insert {
                            key: k,
                            succeeded: ok,
                        });
                    }
                    Step::Remove(k) => {
                        in_flight.set(Some(MutOp::Remove {
                            key: k,
                            succeeded: false,
                        }));
                        let ok = s.remove(k);
                        completed.borrow_mut().push(MutOp::Remove {
                            key: k,
                            succeeded: ok,
                        });
                    }
                    Step::Get(k) => {
                        s.get(k);
                    }
                }
                in_flight.set(None);
            }
        });
        unsafe { sim.crash_and_rollback() };

        // Recovery or validation may panic on poison — that's a caught bug.
        let verdict_ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.recover();
            let completed = completed.borrow();
            let in_flight = in_flight.get();
            let mut keys: Vec<u64> = prefill.iter().map(|&(k, _)| k).collect();
            keys.extend(workload.iter().map(|op| op.key()));
            keys.sort_unstable();
            keys.dedup();
            for k in keys {
                let history: Vec<MutOp> = completed
                    .iter()
                    .copied()
                    .filter(|op| op.key() == k)
                    .collect();
                let fl = in_flight.filter(|op| op.key() == k);
                let initially = prefill.iter().any(|&(pk, _)| pk == k);
                let verdict = key_verdict(initially, &history, fl);
                if !verdict.allows(s.contains(k)) {
                    return false;
                }
            }
            true
        }));
        match verdict_ok {
            Ok(true) => {}
            Ok(false) | Err(_) => violations += 1,
        }
        drop(s);
        drop(g);
    }
    violations
}

fn count_violations<D: Durability<B = Sim>>() -> usize {
    count_violations_on(|| HarrisList::<u64, u64, D>::with_collector(Collector::leaking()))
}

#[test]
fn harness_catches_a_policy_that_never_flushes() {
    let violations = count_violations::<NoFlush>();
    assert!(
        violations > 0,
        "a policy with no flushes at all passed every crash point — \
         the crash harness is not detecting anything"
    );
}

#[test]
fn harness_catches_a_policy_that_never_fences() {
    let violations = count_violations::<NoFence>();
    assert!(
        violations > 0,
        "a policy that flushes but never fences passed every crash point — \
         the simulator is persisting un-fenced flushes"
    );
}

#[test]
fn correct_policy_has_zero_violations_under_the_same_counter() {
    // Sanity for the two tests above: the same violation counter applied to
    // the real transformation reports zero.
    use nvtraverse::policy::NvTraverse;
    let violations = count_violations::<NvTraverse<Sim>>();
    assert_eq!(violations, 0);
}

#[test]
fn harness_catches_an_under_flushing_soft_policy() {
    let violations = count_violations_on(|| {
        SoftList::<u64, u64, SoftUnderFlush>::with_collector(Collector::leaking())
    });
    assert!(
        violations > 0,
        "SOFT with its one header flush removed passed every crash point — \
         either the sweep or the validity protocol is vacuous"
    );
}

#[test]
fn correct_soft_policy_has_zero_violations_under_the_same_counter() {
    use nvtraverse::policy::Soft;
    let violations = count_violations_on(|| {
        SoftList::<u64, u64, Soft<Sim>>::with_collector(Collector::leaking())
    });
    assert_eq!(violations, 0);
}

// ---------------------------------------------------------------------------
// One-run detection: the same mutant policies, but flagged by the
// `nvtraverse-vet` sanitizer from a single non-crashing execution of the
// workload — no crash-point enumeration. Each mutant has a *specific*
// expected diagnostic, so these also pin the finding taxonomy.
// ---------------------------------------------------------------------------

use nvtraverse_vet::{FindingKind, Vet, VetReport};

/// Runs the standard workload once against a fresh `HarrisList<_, _, D>`
/// under the sanitizer. No crash is ever injected.
fn vet_one_run<D: Durability<B = Sim>>() -> VetReport {
    let sim = SimHandle::new();
    let _g = sim.enter();
    let vet = Vet::install(&sim);
    {
        let s = HarrisList::<u64, u64, D>::with_collector(Collector::leaking());
        let (prefill, workload) = standard_workload();
        for &(k, v) in &prefill {
            vet.op("prefill", || s.insert(k, v));
        }
        for op in &workload {
            match *op {
                Step::Insert(k, v) => {
                    vet.op("insert", || s.insert(k, v));
                }
                Step::Remove(k) => {
                    vet.op("remove", || s.remove(k));
                }
                Step::Get(k) => {
                    vet.op("get", || s.get(k));
                }
            }
        }
    }
    vet.finish(&sim)
}

#[test]
fn vet_flags_no_flush_as_unpersisted_publish_in_one_run() {
    let r = vet_one_run::<NoFlush>();
    assert!(
        r.has(FindingKind::UnpersistedPublish),
        "a policy that never flushes published unflushed nodes, but the \
         sanitizer recorded no unpersisted-publish: {:#?}",
        r.findings
    );
}

#[test]
fn vet_flags_no_fence_as_unpersisted_publish_in_one_run() {
    let r = vet_one_run::<NoFence>();
    assert!(
        r.has(FindingKind::UnpersistedPublish),
        "flushes without fences persist nothing, but the sanitizer \
         recorded no unpersisted-publish: {:#?}",
        r.findings
    );
}

#[test]
fn vet_flags_soft_under_flush_as_dirty_at_return_in_one_run() {
    let sim = SimHandle::new();
    let _g = sim.enter();
    let vet = Vet::install(&sim);
    {
        let s = SoftList::<u64, u64, SoftUnderFlush>::with_collector(Collector::leaking());
        let (prefill, workload) = standard_workload();
        for &(k, v) in &prefill {
            vet.op("prefill", || s.insert(k, v));
        }
        for op in &workload {
            match *op {
                Step::Insert(k, v) => {
                    vet.op("insert", || s.insert(k, v));
                }
                Step::Remove(k) => {
                    vet.op("remove", || s.remove(k));
                }
                Step::Get(k) => {
                    vet.op("get", || s.get(k));
                }
            }
        }
    }
    let r = vet.finish(&sim);
    assert!(
        r.has(FindingKind::DirtyAtReturn),
        "SOFT with its header flush removed returns with the validity word \
         dirty, but the sanitizer recorded no dirty-at-return: {:#?}",
        r.findings
    );
}
