//! Cross-crate integration: every structure under every policy through the
//! shared [`DurableSet`] surface, trait objects, shared collectors, and the
//! prelude aliases — the way a downstream user would consume the library.

use nvtraverse::policy::{Durability, Izraelevitz, LinkPersist, NvTraverse, Volatile};
use nvtraverse::DurableSet;
use nvtraverse_ebr::Collector;
use nvtraverse_onefile::{TmBst, TmList};
use nvtraverse_pmem::{Clwb, ClflushSync, Noop};
use nvtraverse_structures::ellen_bst::EllenBst;
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::list::HarrisList;
use nvtraverse_structures::nm_bst::NmBst;
use nvtraverse_structures::prelude::*;
use nvtraverse_structures::skiplist::SkipList;

/// One workout applied through the trait, policy- and structure-agnostic.
fn workout(s: &dyn DurableSet<u64, u64>) {
    for k in 0..100u64 {
        assert!(s.insert(k, k * 7), "insert({k})");
    }
    for k in 0..100u64 {
        assert!(!s.insert(k, 0), "duplicate insert({k}) must fail");
        assert_eq!(s.get(k), Some(k * 7), "get({k})");
    }
    for k in (0..100u64).step_by(2) {
        assert!(s.remove(k), "remove({k})");
    }
    for k in 0..100u64 {
        assert_eq!(s.contains(k), k % 2 == 1, "contains({k})");
    }
    assert_eq!(s.len(), 50);
    s.recover(); // recovery on a healthy quiescent structure is a no-op
    assert_eq!(s.len(), 50);
}

fn all_policies_for<F, S>(make: F)
where
    S: DurableSet<u64, u64> + 'static,
    F: Fn() -> S,
{
    workout(&make());
}

#[test]
fn every_structure_every_policy() {
    macro_rules! matrix {
        ($ctor:ident) => {
            all_policies_for(|| $ctor::<u64, u64, Volatile>::new());
            all_policies_for(|| $ctor::<u64, u64, NvTraverse<Clwb>>::new());
            all_policies_for(|| $ctor::<u64, u64, NvTraverse<ClflushSync>>::new());
            all_policies_for(|| $ctor::<u64, u64, Izraelevitz<Noop>>::new());
            all_policies_for(|| $ctor::<u64, u64, LinkPersist<Clwb>>::new());
        };
    }
    matrix!(HarrisList);
    matrix!(EllenBst);
    matrix!(NmBst);
    matrix!(SkipList);
    all_policies_for(|| HashMapDs::<u64, u64, Volatile>::new(16));
    all_policies_for(|| HashMapDs::<u64, u64, NvTraverse<Clwb>>::new(16));
    all_policies_for(|| HashMapDs::<u64, u64, Izraelevitz<Noop>>::new(16));
    all_policies_for(|| HashMapDs::<u64, u64, LinkPersist<Clwb>>::new(16));
}

#[test]
fn ptm_structures_through_the_same_trait() {
    workout(&TmList::<u64, u64, Clwb>::new());
    workout(&TmBst::<u64, u64, Clwb>::new());
}

#[test]
fn prelude_aliases_compile_and_work() {
    workout(&DurableList::<u64, u64>::new());
    workout(&VolatileList::<u64, u64>::new());
    workout(&IzraelevitzList::<u64, u64>::new());
    workout(&LogFreeList::<u64, u64>::new());
    workout(&DurableHashMap::<u64, u64>::new(8));
    workout(&DurableEllenBst::<u64, u64>::new());
    workout(&DurableNmBst::<u64, u64>::new());
    workout(&DurableSkipList::<u64, u64>::new());
    let q = DurableQueue::<u64>::new();
    q.enqueue(1);
    assert_eq!(q.dequeue(), Some(1));
    let st = DurableStack::<u64>::new();
    st.push(2);
    assert_eq!(st.pop(), Some(2));
}

#[test]
fn heterogeneous_trait_objects() {
    let sets: Vec<Box<dyn DurableSet<u64, u64>>> = vec![
        Box::new(DurableList::<u64, u64>::new()),
        Box::new(DurableHashMap::<u64, u64>::new(8)),
        Box::new(DurableEllenBst::<u64, u64>::new()),
        Box::new(DurableNmBst::<u64, u64>::new()),
        Box::new(DurableSkipList::<u64, u64>::new()),
        Box::new(TmList::<u64, u64, Clwb>::new()),
    ];
    for s in &sets {
        assert!(s.insert(1, 10));
        assert_eq!(s.get(1), Some(10));
    }
}

#[test]
fn structures_can_share_one_collector() {
    let collector = Collector::new();
    let list = HarrisList::<u64, u64, NvTraverse<Clwb>>::with_collector(collector.clone());
    let tree = EllenBst::<u64, u64, NvTraverse<Clwb>>::with_collector(collector.clone());
    std::thread::scope(|s| {
        s.spawn(|| {
            for k in 0..500u64 {
                list.insert(k, k);
                list.remove(k);
            }
        });
        s.spawn(|| {
            for k in 0..500u64 {
                tree.insert(k, k);
                tree.remove(k);
            }
        });
    });
    assert!(list.is_empty());
    assert!(tree.is_empty());
    collector.synchronize();
}

#[test]
fn signed_key_structures_cross_check() {
    fn check<S: DurableSet<i64, u64>>(s: S) {
        for k in [-100i64, -1, 0, 1, 100] {
            assert!(s.insert(k, (k.unsigned_abs()) + 1));
        }
        assert_eq!(s.get(-100), Some(101));
        assert!(s.remove(-1));
        assert_eq!(s.len(), 4);
    }
    check(HarrisList::<i64, u64, NvTraverse<Clwb>>::new());
    check(EllenBst::<i64, u64, NvTraverse<Clwb>>::new());
    check(NmBst::<i64, u64, NvTraverse<Clwb>>::new());
    check(SkipList::<i64, u64, NvTraverse<Clwb>>::new());
    check(HashMapDs::<i64, u64, NvTraverse<Clwb>>::new(8));
}

#[test]
fn the_generic_driver_is_policy_agnostic() {
    // The same TraversalOps implementation must behave identically across
    // policies on a fixed op sequence.
    fn trace<D: Durability>() -> Vec<(u64, Option<u64>)> {
        let l: HarrisList<u64, u64, D> = HarrisList::new();
        let mut out = Vec::new();
        for k in [5u64, 3, 9, 3, 5] {
            l.insert(k, k + 1);
        }
        l.remove(3);
        for k in 0..10u64 {
            out.push((k, l.get(k)));
        }
        out
    }
    let reference = trace::<Volatile>();
    assert_eq!(trace::<NvTraverse<Clwb>>(), reference);
    assert_eq!(trace::<Izraelevitz<Noop>>(), reference);
    assert_eq!(trace::<LinkPersist<Clwb>>(), reference);
}
