//! Minimal local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] test macro, the
//! [`Strategy`] trait with `prop_map`, integer/float range strategies, tuple
//! strategies, [`prelude::Just`], [`prop_oneof!`], and
//! [`collection::vec`]. Cases are generated from a deterministic per-test
//! seed, so failures reproduce across runs.
//!
//! Deliberate differences from the real crate: **no shrinking** (a failing
//! case is reported with its full inputs instead of a minimized one), no
//! persisted failure files, and `prop_assert!`/`prop_assert_eq!` are plain
//! assertions.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty strategy range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Stable per-test seed derived from the test name (FNV-1a).
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice among same-typed alternatives ([`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of the real macro used here: an optional leading
/// `#![proptest_config(expr)]`, then any number of attributed test functions
/// of the form `#[test] fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(stringify!($name));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs:",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items!(@cfg ($cfg) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a caller conventionally glob-imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A(u64),
        B,
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![(1u64..10).prop_map(Kind::A), Just(Kind::B)]
    }

    // The spread is redundant against this stub's one-field config but
    // mirrors how downstream users must write it for real proptest.
    #[allow(clippy::needless_update)]
    mod configured {
        use super::*;

        proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i64..4, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_produces_all_variants(vs in crate::collection::vec(kind(), 64..65)) {
            // With 64 draws, both variants appear (deterministic seed).
            prop_assert!(vs.iter().any(|k| matches!(k, Kind::A(_))));
            prop_assert_eq!(vs.iter().any(|k| matches!(k, Kind::B)), true);
        }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::test_seed("x"));
        let mut b = crate::TestRng::new(crate::test_seed("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
