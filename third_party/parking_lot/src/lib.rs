//! Minimal local stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: [`Mutex`] and [`RwLock`] with parking_lot's
//! poison-free API (`lock()` returns the guard directly). Backed by the std
//! primitives; a poisoned std lock (a panic while holding it) is transparently
//! recovered, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
