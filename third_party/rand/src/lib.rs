//! Minimal local stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: seedable generators ([`rngs::StdRng`],
//! [`rngs::SmallRng`]), [`Rng::random_range`] over integer ranges, and
//! in-place slice [`prelude::SliceRandom::shuffle`]. Generators are
//! deterministic for a given seed (xoshiro256** seeded via SplitMix64), which
//! is all the benchmarks and tests rely on; they make no cryptographic or
//! exact-distribution claims beyond uniformity.

/// Seedable random number generators.
pub mod rngs {
    /// xoshiro256** — the algorithm behind rand's `SmallRng` on 64-bit.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    /// The workspace treats `StdRng` as "a good deterministic 64-bit
    /// generator"; the same xoshiro core serves (the real crate uses ChaCha12,
    /// whose streams we make no attempt to reproduce).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) inner: SmallRng,
    }
}

use rngs::{SmallRng, StdRng};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable generator (the subset of rand's trait this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SmallRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            inner: SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                // Widening-multiply range reduction (Lemire); bias is < 2^-32
                // for the spans used here and irrelevant to determinism.
                let r = ((next() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                let r = ((next() as u128 * (span as u128 + 1)) >> 64) as u64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The generator interface: everything that can produce random values.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let s = &mut self.s;
        let result = s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Everything a caller conventionally glob-imports.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, SeedableRng};

    /// In-place slice randomization.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values reachable");
        for _ in 0..100 {
            let v: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u64> = (0..50).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle left 50 elements untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
