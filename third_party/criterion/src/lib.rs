//! Minimal local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset it uses: [`Criterion`] with `sample_size` /
//! `measurement_time` / `warm_up_time`, benchmark groups, `bench_function`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! a plain wall-clock loop reporting mean ns/iter — adequate for the relative
//! comparisons the micro benchmarks make, with none of the real crate's
//! statistics, plots, or outlier analysis.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measuring time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, &mut f);
        self
    }

    /// No-op in this stand-in (the real crate prints a summary).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode: Mode::WarmUp {
            until: Instant::now() + c.warm_up_time,
        },
        samples: Vec::with_capacity(c.sample_size),
    };
    f(&mut b); // warm-up pass: iter() loops until the deadline
    let per_sample = c.measurement_time.div_f64(c.sample_size as f64);
    for _ in 0..c.sample_size {
        b.mode = Mode::Measure {
            budget: per_sample,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        if let Mode::Measure { ns_per_iter, .. } = b.mode {
            b.samples.push(ns_per_iter);
        }
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    println!("{id:<45} mean {mean:>12.1} ns/iter   median {median:>12.1} ns/iter");
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp { until: Instant },
    Measure { budget: Duration, ns_per_iter: f64 },
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::WarmUp { until } => {
                while Instant::now() < until {
                    for _ in 0..64 {
                        black_box(routine());
                    }
                }
            }
            Mode::Measure {
                budget,
                ref mut ns_per_iter,
            } => {
                // Calibrate a batch that runs ~budget, then time it.
                let mut batch: u64 = 16;
                let mut elapsed;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    elapsed = t0.elapsed();
                    if elapsed >= budget || batch >= 1 << 30 {
                        break;
                    }
                    let grow = (budget.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                        .clamp(1.5, 64.0);
                    batch = ((batch as f64) * grow) as u64;
                }
                *ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring the real macro's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(6))
            .warm_up_time(Duration::from_millis(2));
        targets = spin
    }

    #[test]
    fn runner_completes_and_groups_nest() {
        quick();
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
