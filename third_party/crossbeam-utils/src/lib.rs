//! Minimal local stand-in for the `crossbeam-utils` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one item it uses: [`CachePadded`]. The semantics match the
//! real crate for that item; nothing else is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false
/// sharing between adjacent values in an array or struct.
///
/// 128-byte alignment covers the spatial-prefetcher pair of 64-byte lines on
/// modern x86-64, matching the real crossbeam implementation.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns `value`.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
