//! A durable KV service over a Unix socket: `nvtraverse-server` in front
//! of a sharded pool-backed store, surviving restarts (and crashes — the
//! reopen runs every shard's full recovery pipeline).
//!
//! ```text
//! cargo run --release --example kv_server [sock] [dir] [policy] [shards]
//! ```
//!
//! Defaults: socket `/tmp/nvt-kv.sock`, store `/tmp/nvt-kv-store`, policy
//! `nvt` (or `soft`), 4 shards. Run it, then talk to it from another
//! terminal with [`nvtraverse_server::Client`]:
//!
//! ```ignore
//! let mut c = Client::connect_uds("/tmp/nvt-kv.sock")?;
//! c.insert(1, 100)?;
//! assert_eq!(c.get(1)?, Some(100));
//! c.shutdown_server()?; // graceful: drains, fsyncs, exits
//! ```

use nvtraverse_server::{KvStore, PolicyKind, Server, ServerConfig};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let sock = args.next().unwrap_or_else(|| "/tmp/nvt-kv.sock".into());
    let dir = args.next().unwrap_or_else(|| "/tmp/nvt-kv-store".into());
    let policy = args
        .next()
        .as_deref()
        .and_then(PolicyKind::from_name)
        .unwrap_or(PolicyKind::NvTraverse);
    let shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let store = KvStore::open_or_create(&dir, policy, shards, 64 << 20)?;
    for (i, r) in store.recovery_reports().iter().enumerate() {
        if r.ops_descriptors > 0 || r.ops_pending > 0 {
            println!(
                "shard {i}: recovered {} detectable-op descriptors ({} pending)",
                r.ops_descriptors, r.ops_pending
            );
        }
    }
    println!(
        "store: {} keys in {} shard pool(s) under the {} policy at {dir}",
        store.len(),
        store.shard_count(),
        store.policy().name()
    );

    let server = Server::start_uds(&sock, store, ServerConfig::default())?;
    println!("serving on {sock} — stop with Client::shutdown_server() (the SHUTDOWN op)");
    server.wait_for_shutdown_request();
    server.shutdown()?;
    println!("clean shutdown: every acknowledged operation is durable; restart to reopen");
    Ok(())
}
