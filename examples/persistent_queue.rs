//! A durable work queue: producers and consumers over the traversal-form
//! Michael–Scott queue (the paper's §3 observation that queues are traversal
//! data structures, and the lineage of Friedman et al.'s DurableQueue).
//!
//! ```text
//! cargo run --release --example persistent_queue
//! ```

use nvtraverse_suite::structures::prelude::DurableQueue;
use std::collections::HashSet;
use std::sync::Mutex;

const PRODUCERS: u64 = 2;
const CONSUMERS: usize = 2;
const JOBS_PER_PRODUCER: u64 = 50_000;

fn main() {
    let queue = DurableQueue::<u64>::new();
    let done = Mutex::new(HashSet::new());

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let queue = &queue;
            s.spawn(move || {
                for i in 0..JOBS_PER_PRODUCER {
                    // Each enqueue is persisted before it returns: a crash
                    // after submission can never lose an acknowledged job.
                    queue.enqueue(p * JOBS_PER_PRODUCER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let done = &done;
            s.spawn(move || {
                let mut local = Vec::new();
                let mut idle = 0u32;
                loop {
                    match queue.dequeue() {
                        Some(job) => {
                            local.push(job);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            if idle > 10_000 {
                                // Publish our batch first: the exit test must
                                // see every consumer's jobs, or two consumers
                                // each holding a partial batch spin forever.
                                let mut done = done.lock().unwrap();
                                done.extend(local.drain(..));
                                if done.len() == (PRODUCERS * JOBS_PER_PRODUCER) as usize {
                                    break;
                                }
                            }
                            std::hint::spin_loop();
                        }
                    }
                    if local.len() >= 1000 {
                        done.lock().unwrap().extend(local.drain(..));
                    }
                }
                done.lock().unwrap().extend(local);
            });
        }
    });

    // Drain stragglers.
    while let Some(job) = queue.dequeue() {
        done.lock().unwrap().insert(job);
    }
    let done = done.into_inner().unwrap();
    assert_eq!(
        done.len(),
        (PRODUCERS * JOBS_PER_PRODUCER) as usize,
        "jobs lost or duplicated"
    );
    println!(
        "processed {} jobs exactly once across {} producers / {} consumers",
        done.len(),
        PRODUCERS,
        CONSUMERS
    );

    // Recovery on a quiescent queue just recomputes the tail shortcut.
    queue.recover();
    assert!(queue.is_empty());
    println!("queue empty, recovery OK");
}
