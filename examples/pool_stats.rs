//! Observability quick-start: run a workload on a pooled structure, then
//! dump the process's per-pool telemetry as JSON.
//!
//! ```text
//! $ cargo run --example pool_stats | python3 -m json.tool
//! ```
//!
//! **Stdout carries exactly one JSON document** (`nvtraverse-obs`'s
//! [`stats_json`](nvtraverse_suite::obs::stats_json): one entry per pool the
//! process touched — flush/fence counts split by phase, allocator and GC
//! counters, op-latency histograms — plus the recent lifecycle event ring).
//! All narration goes to stderr, so the output pipes straight into `jq` or
//! `python3 -m json.tool`. CI runs it exactly that way as a smoke test.
//!
//! Two pools are exercised to show attribution: each pool's numbers are its
//! own — the busy pool's flush counts do not bleed into the idle one's.

use nvtraverse_suite::core::policy::NvTraverse;
use nvtraverse_suite::core::pool::Pool;
use nvtraverse_suite::core::{DurableSet, TypedRoots};
use nvtraverse_suite::obs;
use nvtraverse_suite::pmem::MmapBackend;
use nvtraverse_suite::structures::list::HarrisList;

type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;

const KEYS: u64 = 512;

fn main() {
    let dir = std::env::temp_dir();
    let busy_path = dir.join(format!("nvt-pool-stats-busy-{}.pool", std::process::id()));
    let idle_path = dir.join(format!("nvt-pool-stats-idle-{}.pool", std::process::id()));
    let _ = std::fs::remove_file(&busy_path);
    let _ = std::fs::remove_file(&idle_path);

    // An idle pool: it appears in the report with (near-)zero traffic,
    // demonstrating that attribution is per pool, not process-global.
    let idle = Pool::builder().path(&idle_path).capacity(1 << 20).create().unwrap();

    let pool = Pool::builder().path(&busy_path).capacity(8 << 20).create().unwrap();
    let list = pool.create_root::<List>("stats-demo").unwrap();

    // Attribute this thread's flushes/fences to the busy pool for the
    // workload (the structure's own scopes cover allocation; the explicit
    // bracket also catches lookups), and record per-op latencies through
    // the timed_* wrappers.
    {
        let _scope = obs::attribute_to(Some(pool.metrics()));
        for k in 0..KEYS {
            list.timed_insert(k, k * 3);
        }
        for k in (0..KEYS).step_by(2) {
            list.timed_remove(k);
        }
        let mut hits = 0;
        for k in 0..KEYS {
            if list.timed_get(k).is_some() {
                hits += 1;
            }
        }
        eprintln!("workload done: {KEYS} inserts, {} removes, {hits}/{KEYS} lookups hit", KEYS / 2);
    }

    let snap = pool.metrics().snapshot();
    eprintln!(
        "busy pool: {} flushes / {} fences attributed, {} insert samples (p50 {} ns)",
        snap.total_flushes(),
        snap.total_fences(),
        snap.samples(obs::OpKind::Insert),
        snap.quantile_ns(obs::OpKind::Insert, 0.5).unwrap_or(0),
    );

    list.close().unwrap();
    drop(pool);
    drop(idle);

    // The one JSON document on stdout: every pool this process touched,
    // plus the lifecycle event ring (create/open/GC/close).
    println!("{}", obs::stats_json());

    let _ = std::fs::remove_file(&busy_path);
    let _ = std::fs::remove_file(&idle_path);
}
