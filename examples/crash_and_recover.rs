//! Demonstrates the crash simulator: run operations on simulated NVRAM,
//! pull the plug mid-operation, roll back to the persisted state, recover,
//! and watch durable linearizability hold.
//!
//! ```text
//! cargo run --release --example crash_and_recover
//! ```

use nvtraverse_suite::core::policy::NvTraverse;
use nvtraverse_suite::core::DurableSet;
use nvtraverse_suite::ebr::Collector;
use nvtraverse_suite::pmem::sim::{install_quiet_panic_hook, run_crashable, SimHandle};
use nvtraverse_suite::pmem::Sim;
use nvtraverse_suite::structures::list::HarrisList;

fn main() {
    install_quiet_panic_hook();
    let sim = SimHandle::new();
    let _guard = sim.enter();

    // A durable list on *simulated* NVRAM; nodes leak (a persistent heap
    // would keep them across the crash anyway).
    let list: HarrisList<u64, u64, NvTraverse<Sim>> =
        HarrisList::with_collector(Collector::leaking());

    for k in [10u64, 20, 30] {
        list.insert(k, k * 10);
    }
    println!("before crash: {:?}", list.iter_snapshot());

    // Crash 40 simulated memory events into the next batch of operations —
    // somewhere inside insert(40) / remove(20).
    sim.arm_crash_at_step(sim.steps() + 40);
    let outcome = run_crashable(|| {
        list.insert(40, 400);
        list.remove(20);
        list.insert(50, 500);
    });
    println!("crash happened: {}", outcome.is_err());

    // Power failure: every cell reverts to its persisted copy; cells that
    // were never flushed+fenced become poison.
    let report = unsafe { sim.crash_and_rollback() };
    println!(
        "rolled back {} cells ({} never persisted → poisoned)",
        report.cells, report.poisoned
    );

    // Recovery = the paper's disconnect(root) pass.
    list.recover();
    let after = list.iter_snapshot();
    println!("after recovery: {after:?}");

    // Durable linearizability: 10 and 30 were inserted by *completed*
    // operations before the crash, so they must have survived; the
    // interrupted batch may be applied fully, partially (per operation), or
    // not at all.
    assert_eq!(list.get(10), Some(100), "completed insert was lost!");
    assert_eq!(list.get(30), Some(300), "completed insert was lost!");

    // And the structure is fully operational.
    list.insert(60, 600);
    assert_eq!(list.get(60), Some(600));
    println!("post-recovery writes work; durable linearizability held");
}
