//! A multi-threaded key-value store on the durable hash table, running the
//! paper's YCSB-like mixes (§5.1) and printing throughput — a miniature of
//! the evaluation harness.
//!
//! ```text
//! cargo run --release --example kv_store [threads] [update_pct]
//! ```

use nvtraverse_suite::core::DurableSet;
use nvtraverse_suite::structures::prelude::DurableHashMap;
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const RANGE: u64 = 100_000;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let update_pct: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    let store = DurableHashMap::<u64, u64>::new((RANGE / 2) as usize);
    // Prefill to half the range, as the paper does.
    let mut keys: Vec<u64> = (0..RANGE).step_by(2).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(1));
    for k in keys {
        store.insert(k, k);
    }
    println!(
        "kv_store: {} buckets, {} keys prefilled, {threads} threads, {update_pct}% updates",
        store.bucket_count(),
        store.len()
    );

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = &store;
            let stop = &stop;
            let ops = &ops;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..128 {
                        let k = rng.random_range(0..RANGE);
                        let c = rng.random_range(0..100u32);
                        if c < update_pct / 2 {
                            store.insert(k, k);
                        } else if c < update_pct {
                            store.remove(k);
                        } else {
                            store.get(k);
                        }
                    }
                    n += 128;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();
    let total = ops.load(Ordering::Relaxed);
    println!(
        "{total} ops in {secs:.2}s = {:.3} Mops/s (durably linearizable, clwb+sfence per op)",
        total as f64 / secs / 1.0e6
    );
    store.check_consistency(true).expect("store consistent");
    println!("final size: {} keys, all invariants hold", store.len());
}
