//! Data surviving a full process exit, via the persistent pool.
//!
//! Run it twice (same default pool path):
//!
//! ```text
//! $ cargo run --example pool_restart
//! created pool …: inserted keys 0..32
//! $ cargo run --example pool_restart
//! reopened pool …: recovered 32 keys, all values verified
//! ```
//!
//! The first run creates a pool file, builds a durably linearizable Harris
//! list inside it (every node lives in the mapped file), registers it under
//! a root name, and exits without any serialization step. The second run
//! reopens the file, looks the list up by name, runs the paper's recovery
//! pass, and reads the data back — `Pool::open` → root lookup → `recover()`.
//!
//! Pass a path argument to choose the pool file; pass `--reset` to delete it
//! first.

use nvtraverse_suite::core::policy::NvTraverse;
use nvtraverse_suite::core::{DurableSet, PooledSet};
use nvtraverse_suite::pmem::MmapBackend;
use nvtraverse_suite::structures::list::HarrisList;

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;

const KEYS: u64 = 32;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let reset = args.iter().any(|a| a == "--reset");
    args.retain(|a| a != "--reset");
    let path = args.first().cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("nvtraverse-restart-demo.pool")
            .to_string_lossy()
            .into_owned()
    });
    if reset {
        let _ = std::fs::remove_file(&path);
    }

    if !std::path::Path::new(&path).exists() {
        // ---- first run: create, insert, exit --------------------------
        let list = PooledSet::<PooledList>::create(&path, 8 << 20, "demo").unwrap();
        for k in 0..KEYS {
            assert!(list.insert(k, k * k));
        }
        // Odd keys are removed again, so the second run can also check
        // that removals are as durable as inserts.
        for k in (1..KEYS).step_by(2) {
            assert!(list.remove(k));
        }
        list.close().unwrap();
        println!(
            "created pool {path}: inserted keys 0..{KEYS}, removed the odd ones — \
             run me again to watch them come back from the file"
        );
    } else {
        // ---- second run: reopen, recover, verify ----------------------
        let list = PooledSet::<PooledList>::open(&path, "demo").unwrap();
        let report = list.pool().recovery_report();
        let mut recovered = 0;
        for k in 0..KEYS {
            match list.get(k) {
                Some(v) if k % 2 == 0 => {
                    assert_eq!(v, k * k, "key {k} came back with the wrong value");
                    recovered += 1;
                }
                None if k % 2 == 1 => {} // durably removed
                other => panic!("key {k}: unexpected state {other:?}"),
            }
        }
        println!(
            "reopened pool {path}: recovered {recovered} keys ({} live blocks, \
             clean_shutdown={}), all values verified",
            report.live_blocks, report.clean_shutdown
        );
        println!("delete it (or pass --reset) to start over");
        list.close().unwrap();
    }
}
