//! Data surviving a full process exit, via the persistent pool — for three
//! differently-shaped structures sharing one pool file.
//!
//! Run it twice (same default pool path):
//!
//! ```text
//! $ cargo run --example pool_restart
//! created pool …: list 0..32, queue 0..16, skiplist 0..64
//! $ cargo run --example pool_restart
//! reopened pool …: all three structures recovered and verified
//! ```
//!
//! The first run creates a pool file and builds three durably linearizable
//! structures inside it — a Harris list, an MS queue, and a skiplist — each
//! a first-class typed root (`pool.create_root::<S>("name")`), then exits
//! without any serialization step. The second run reopens the file and asks
//! for each root back by name (`pool.root::<S>("name")` = lookup → attach →
//! `recover()`): the list checks inserts *and* removes, the queue checks
//! FIFO contents and that the rebuilt tail shortcut appends at the real
//! end, the skiplist checks lookups through its freshly rebuilt towers.
//!
//! Pass a path argument to choose the pool file; pass `--reset` to delete it
//! first.

use nvtraverse_suite::core::policy::NvTraverse;
use nvtraverse_suite::core::pool::Pool;
use nvtraverse_suite::core::{DurableSet, TypedRoots};
use nvtraverse_suite::pmem::MmapBackend;
use nvtraverse_suite::structures::list::HarrisList;
use nvtraverse_suite::structures::queue::MsQueue;
use nvtraverse_suite::structures::skiplist::SkipList;

type PooledList = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
type PooledQueue = MsQueue<u64, NvTraverse<MmapBackend>>;
type PooledSkip = SkipList<u64, u64, NvTraverse<MmapBackend>>;

const LIST_KEYS: u64 = 32;
const QUEUE_VALS: u64 = 16;
const SKIP_KEYS: u64 = 64;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let reset = args.iter().any(|a| a == "--reset");
    args.retain(|a| a != "--reset");
    let path = args.first().cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("nvtraverse-restart-demo.pool")
            .to_string_lossy()
            .into_owned()
    });
    if reset {
        let _ = std::fs::remove_file(&path);
    }

    if !std::path::Path::new(&path).exists() {
        // ---- first run: create three structures, mutate, exit ----------
        let pool = Pool::builder().path(&path).capacity(8 << 20).create().unwrap();
        let list = pool.create_root::<PooledList>("demo-list").unwrap();
        for k in 0..LIST_KEYS {
            assert!(list.insert(k, k * k));
        }
        // Odd keys are removed again, so the second run can also check
        // that removals are as durable as inserts.
        for k in (1..LIST_KEYS).step_by(2) {
            assert!(list.remove(k));
        }

        // Further structures in the same pool are just further typed
        // roots — each handle guarantees its structure's destructor never
        // runs (the nodes live in the file, not in this process).
        let queue = pool.create_root::<PooledQueue>("demo-queue").unwrap();
        for v in 0..QUEUE_VALS {
            queue.enqueue(v);
        }
        assert_eq!(queue.dequeue(), Some(0)); // 1..16 remain

        let skip = pool.create_root::<PooledSkip>("demo-skip").unwrap();
        for k in 0..SKIP_KEYS {
            assert!(skip.insert(k, k + 1000));
        }

        queue.close().unwrap();
        skip.close().unwrap();
        list.close().unwrap();
        println!(
            "created pool {path}: list keys 0..{LIST_KEYS} (odd ones removed again), \
             queue values 1..{QUEUE_VALS}, skiplist keys 0..{SKIP_KEYS} — \
             run me again to watch them come back from the file"
        );
    } else {
        // ---- second run: reopen, recover each root, verify -------------
        // Pre-register every root's GC tracer so the open itself runs the
        // mark-sweep (it needs a tracer for *every* root; registering only
        // some would leave the collection pending). A single-root pool
        // skips this — `root::<S>()` handles it.
        // SAFETY: these roots were created by these exact types above.
        unsafe {
            nvtraverse_suite::core::register_pool_tracer::<PooledList>(&path, "demo-list");
            nvtraverse_suite::core::register_pool_tracer::<PooledQueue>(&path, "demo-queue");
            nvtraverse_suite::core::register_pool_tracer::<PooledSkip>(&path, "demo-skip");
        }
        let pool = Pool::builder().path(&path).open().unwrap();
        let report = pool.recovery_report();
        assert!(
            report.gc_ran,
            "all three roots have tracers, so the recovery GC must run"
        );

        let list = pool.root::<PooledList>("demo-list").unwrap();
        let mut recovered = 0;
        for k in 0..LIST_KEYS {
            match list.get(k) {
                Some(v) if k % 2 == 0 => {
                    assert_eq!(v, k * k, "list key {k} came back with the wrong value");
                    recovered += 1;
                }
                None if k % 2 == 1 => {} // durably removed
                other => panic!("list key {k}: unexpected state {other:?}"),
            }
        }

        let queue = pool.root::<PooledQueue>("demo-queue").unwrap();
        assert_eq!(queue.iter_snapshot(), (1..QUEUE_VALS).collect::<Vec<_>>());
        queue.enqueue(99); // the rebuilt tail must append at the real end
        assert_eq!(*queue.iter_snapshot().last().unwrap(), 99);
        // Restore the canonical contents so the example can be re-run any
        // number of times (drain everything, re-enqueue 1..QUEUE_VALS).
        let drained = queue.drain_to_vec();
        assert_eq!(drained.last(), Some(&99), "FIFO order lost");
        for v in 1..QUEUE_VALS {
            queue.enqueue(v);
        }

        let skip = pool.root::<PooledSkip>("demo-skip").unwrap();
        for k in 0..SKIP_KEYS {
            assert_eq!(skip.get(k), Some(k + 1000), "skiplist key {k} lost");
        }

        println!(
            "reopened pool {path}: {recovered} list keys, {} queued values, \
             {} skiplist keys ({} live blocks, clean_shutdown={}, \
             gc reclaimed {} blocks / {} bytes in {} µs) — all verified",
            queue.len(),
            skip.len(),
            report.live_blocks,
            report.clean_shutdown,
            report.reclaimed_blocks,
            report.reclaimed_bytes,
            report.gc_nanos / 1_000,
        );
        println!("delete it (or pass --reset) to start over");
        queue.close().unwrap();
        skip.close().unwrap();
        list.close().unwrap();
    }
}
