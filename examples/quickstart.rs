//! Quickstart: a durably linearizable ordered map in three lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nvtraverse_suite::core::DurableSet;
use nvtraverse_suite::structures::prelude::{DurableEllenBst, DurableList};

fn main() {
    // The paper's transformation applied to Harris's linked list, issuing
    // real clwb/sfence instructions on x86-64.
    let list = DurableList::<u64, u64>::new();
    assert!(list.insert(3, 30));
    assert!(list.insert(1, 10));
    assert!(list.insert(2, 20));
    assert!(!list.insert(2, 99), "duplicate inserts fail (set semantics)");
    assert_eq!(list.get(2), Some(20));
    assert!(list.remove(1));
    println!("list holds {} keys: {:?}", list.len(), list.iter_snapshot());

    // The same API over a lock-free BST: every operation traverses without
    // a single flush, then persists only its destination.
    let tree = DurableEllenBst::<u64, u64>::new();
    for k in [50u64, 25, 75, 10, 60] {
        tree.insert(k, k * 100);
    }
    println!("tree holds {} keys: {:?}", tree.len(), tree.iter_snapshot());

    // After a real power failure a recovery pass completes any interrupted
    // deletions (here it is a no-op — nothing was interrupted).
    tree.recover();
    assert_eq!(tree.len(), 5);
    println!("recovery OK; quickstart done");
}
