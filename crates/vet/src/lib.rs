//! Persistency analyzer for the NVTraverse reproduction.
//!
//! Two halves, one goal: turn violations of the paper's persistency
//! protocols (§4) into immediate diagnostics instead of bugs that only an
//! exhaustive crash sweep — or real NVRAM — would surface.
//!
//! * [`Vet`] (in [`dynamic`]) is a **runtime sanitizer**: a passive
//!   [`nvtraverse_pmem::SimObserver`] over the crash simulator's cell
//!   registry that tracks every registered word through a
//!   `Clean → Dirty → Flushed → Persisted` state machine and classifies
//!   per-operation findings — an unpersisted node published by a link CAS,
//!   a dirty word alive at operation return, a flush of freed memory, and
//!   warn-level redundant flushes/fences. One ordinary run of a workload
//!   replaces a crash-point enumeration for these bug classes.
//! * [`lint`] is an **offline source analyzer** (exposed as the `nvt-lint`
//!   binary) enforcing the node-layout and policy-routing invariants the
//!   protocols rest on: `#[repr(C)]` on structs holding `PCell`s,
//!   `// SAFETY:` comments on `unsafe` code in the persistence-critical
//!   crates, no raw `PCell` accesses in `crates/structures` outside an
//!   explicit allowlist, and no wall-clock reads (`Instant::now`,
//!   `SystemTime`) on persistence-critical paths.
//!
//! Both halves are dependency-free beyond the workspace's own crates.

#![warn(missing_docs)]

pub mod dynamic;
pub mod lint;

pub use dynamic::{Finding, FindingKind, Vet, VetReport};
pub use lint::{lint_source, lint_workspace, Rule, Violation};
