//! The dynamic persistency sanitizer: [`Vet`].
//!
//! `Vet` installs itself as a passive [`SimObserver`] on a
//! [`SimHandle`] and mirrors the simulator's cell registry through a
//! per-word state machine:
//!
//! ```text
//!            write                 flush                fence
//!   Clean ─────────▶ Dirty ─────────────▶ Flushed ─────────────▶ Persisted
//!     ▲                                                              │
//!     └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each word carries a monotone `dirty_seq` (bumped by every tracked
//! write) and `persisted_seq` (raised when a fence lands a flush of that
//! sequence); `persisted_seq < dirty_seq` means the word's current value
//! would not survive a crash. On top of that the sanitizer keeps the node
//! extents reported by range registration, a per-thread buffer mirroring
//! the simulator's un-fenced flushes, and a per-operation write/flush log
//! (operations are delimited with [`Vet::op`]).
//!
//! Findings (see [`FindingKind`]) are classified per operation and
//! phase-attributed through the thread's current
//! [`nvtraverse_obs::Phase`]. Everything is observation-only: installing
//! a `Vet` never changes step counts, persisted state, or crash points.

use nvtraverse_obs as obs;
use nvtraverse_pmem::{SimHandle, SimObserver, WriteKind};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::thread::ThreadId;

/// Low bits data structures steal from aligned pointers (mark / flag /
/// link-and-persist dirty); masked off before treating a CAS'd value as a
/// potential node address.
const TAG_MASK: u64 = 0b111;

/// At most this many findings of each kind keep their full details;
/// further occurrences are only counted. Keeps pathological runs (a
/// mutant policy violating on every operation) from ballooning reports.
const MAX_DETAILED_PER_KIND: usize = 64;

/// Classification of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A successful CAS on a durable link published a node some of whose
    /// words are not persisted: a crash now poisons reachable memory. The
    /// bug class behind "missing `flush(newNode)`" — what
    /// `tests/checker_detects_bugs.rs` needs a full crash sweep to expose.
    UnpersistedPublish,
    /// An operation returned while a durable word it wrote was still
    /// unpersisted — a durable-linearizability leak (the op's effects can
    /// be lost after its caller observed completion).
    DirtyAtReturn,
    /// A flush or fence touched a word whose registration was already
    /// removed (freed memory) — a dangling `Sim` registration.
    FlushAfterFree,
    /// Warn-level: the same word was flushed twice at the same write
    /// sequence within one operation; the second flush adds nothing.
    RedundantFlush,
    /// Warn-level: a fence was issued with no flush pending on the
    /// thread; in the persistency model it is a no-op.
    RedundantFence,
}

impl FindingKind {
    /// Every kind, errors first.
    pub const ALL: [FindingKind; 5] = [
        FindingKind::UnpersistedPublish,
        FindingKind::DirtyAtReturn,
        FindingKind::FlushAfterFree,
        FindingKind::RedundantFlush,
        FindingKind::RedundantFence,
    ];

    /// Whether this kind is an error (protocol violation) rather than a
    /// warn-level performance lint.
    pub fn is_error(self) -> bool {
        !matches!(self, FindingKind::RedundantFlush | FindingKind::RedundantFence)
    }

    /// Stable kebab-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::UnpersistedPublish => "unpersisted-publish",
            FindingKind::DirtyAtReturn => "dirty-at-return",
            FindingKind::FlushAfterFree => "flush-after-free",
            FindingKind::RedundantFlush => "redundant-flush",
            FindingKind::RedundantFence => "redundant-fence",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The word the finding anchors to (the CAS'd link, the dirty word,
    /// the freed address).
    pub addr: usize,
    /// The thread's `nvtraverse-obs` phase at the event
    /// ([`obs::Phase::Unattributed`] when observability is off).
    pub phase: obs::Phase,
    /// Label of the enclosing [`Vet::op`] scope, if any.
    pub op: Option<String>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:#x} ({}{}): {}",
            self.kind,
            self.addr,
            self.phase.name(),
            match &self.op {
                Some(l) => format!(", op {l}"),
                None => String::new(),
            },
            self.detail
        )
    }
}

/// Aggregated result of a sanitized run; see [`Vet::finish`].
#[derive(Debug, Clone, Default)]
pub struct VetReport {
    /// Detailed findings (capped per kind; `counts` has exact totals).
    pub findings: Vec<Finding>,
    /// Exact total occurrences per kind (uncapped).
    counts: HashMap<FindingKind, usize>,
    /// Operations delimited with [`Vet::op`].
    pub ops: u64,
}

impl VetReport {
    /// Total occurrences of `kind` (exact even beyond the detail cap).
    pub fn count(&self, kind: FindingKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Whether at least one finding of `kind` was recorded.
    pub fn has(&self, kind: FindingKind) -> bool {
        self.count(kind) > 0
    }

    /// Total error-level findings.
    pub fn errors(&self) -> usize {
        FindingKind::ALL
            .iter()
            .filter(|k| k.is_error())
            .map(|&k| self.count(k))
            .sum()
    }

    /// Total warn-level findings.
    pub fn warnings(&self) -> usize {
        FindingKind::ALL
            .iter()
            .filter(|k| !k.is_error())
            .map(|&k| self.count(k))
            .sum()
    }

    /// No error-level findings (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Serializes the report as one JSON object: per-kind counts, error
    /// and warning totals, the op count, and the detailed findings.
    /// Dependency-free, same style as `nvtraverse-obs`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.findings.len());
        out.push_str("{\"counts\":{");
        for (i, k) in FindingKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", k.name(), self.count(*k)));
        }
        out.push_str(&format!(
            "}},\"errors\":{},\"warnings\":{},\"ops\":{},\"findings\":[",
            self.errors(),
            self.warnings(),
            self.ops
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"addr\":{},\"phase\":\"{}\",\"op\":{},\"detail\":\"{}\"}}",
                f.kind.name(),
                f.addr,
                f.phase.name(),
                match &f.op {
                    Some(l) => format!("\"{}\"", json_escape(l)),
                    None => "null".to_string(),
                },
                json_escape(&f.detail)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-word sanitizer state.
struct CellState {
    /// Bumped by every tracked write. Starts at 1 on registration:
    /// freshly allocated contents are not persisted.
    dirty_seq: u64,
    /// Highest write sequence known persisted (flush of that sequence
    /// followed by a fence). Starts at 0.
    persisted_seq: u64,
    /// Declared volatile-by-design (recovery never reads it); exempt from
    /// durability rules.
    volatile: bool,
}

impl CellState {
    fn fresh() -> CellState {
        CellState {
            dirty_seq: 1,
            persisted_seq: 0,
            volatile: false,
        }
    }

    fn unpersisted(&self) -> bool {
        self.persisted_seq < self.dirty_seq
    }
}

/// Per-operation log (one [`Vet::op`] scope on one thread).
struct OpState {
    label: String,
    /// Non-volatile words written during the op.
    written: HashSet<usize>,
    /// `(addr, dirty_seq)` pairs flushed during the op (redundancy check).
    flushed: HashSet<(usize, u64)>,
}

#[derive(Default)]
struct ThreadState {
    /// Mirror of the simulator's un-fenced flush buffer: `(addr, seq)`.
    pending: Vec<(usize, u64)>,
    op: Option<OpState>,
}

#[derive(Default)]
struct State {
    cells: HashMap<usize, CellState>,
    /// Registered node extents: `start -> len`.
    ranges: BTreeMap<usize, usize>,
    threads: HashMap<ThreadId, ThreadState>,
    findings: Vec<Finding>,
    counts: HashMap<FindingKind, usize>,
    ops: u64,
}

impl State {
    fn record(&mut self, kind: FindingKind, addr: usize, detail: String) {
        let n = self.counts.entry(kind).or_insert(0);
        *n += 1;
        if *n <= MAX_DETAILED_PER_KIND {
            let op = self
                .threads
                .get(&std::thread::current().id())
                .and_then(|t| t.op.as_ref())
                .map(|o| o.label.clone());
            self.findings.push(Finding {
                kind,
                addr,
                phase: obs::current_phase(),
                op,
                detail,
            });
        }
    }

    /// The registered range containing `addr`, if any.
    fn range_of(&self, addr: usize) -> Option<(usize, usize)> {
        let (&start, &len) = self.ranges.range(..=addr).next_back()?;
        (addr < start + len).then_some((start, len))
    }

    fn thread(&mut self) -> &mut ThreadState {
        self.threads.entry(std::thread::current().id()).or_default()
    }
}

struct Shared {
    state: Mutex<State>,
}

impl SimObserver for Shared {
    fn on_register_range(&self, addr: usize, len: usize) {
        let mut s = self.state.lock();
        // A re-registration supersedes whatever previously occupied the
        // address space (memory reuse after free).
        let overlapping: Vec<usize> = s
            .ranges
            .range(..addr + len)
            .filter(|&(&start, &l)| start + l > addr)
            .map(|(&start, _)| start)
            .collect();
        for start in overlapping {
            s.ranges.remove(&start);
        }
        s.ranges.insert(addr, len);
        for w in (addr..addr + len.div_ceil(8) * 8).step_by(8) {
            s.cells.insert(w, CellState::fresh());
        }
    }

    fn on_deregister_range(&self, addr: usize, len: usize) {
        let mut s = self.state.lock();
        for w in (addr..addr + len.div_ceil(8) * 8).step_by(8) {
            s.cells.remove(&w);
        }
        // Drop any recorded extent fully covered by the deregistration.
        let covered: Vec<usize> = s
            .ranges
            .range(addr..addr + len)
            .filter(|&(&start, &l)| start + l <= addr + len)
            .map(|(&start, _)| start)
            .collect();
        for start in covered {
            s.ranges.remove(&start);
        }
    }

    fn on_mark_volatile_range(&self, addr: usize, len: usize) {
        let mut s = self.state.lock();
        for w in (addr..addr + len.div_ceil(8) * 8).step_by(8) {
            if let Some(c) = s.cells.get_mut(&w) {
                c.volatile = true;
            }
        }
    }

    fn on_tracked_write(&self, addr: usize, bits: u64, kind: WriteKind, wrote: bool) {
        if !wrote {
            return;
        }
        let mut s = self.state.lock();
        let (volatile, known) = match s.cells.get_mut(&addr) {
            Some(c) => {
                c.dirty_seq += 1;
                (c.volatile, true)
            }
            None => (false, false),
        };
        if known && !volatile {
            let tid = std::thread::current().id();
            if let Some(op) = s.threads.entry(tid).or_default().op.as_mut() {
                op.written.insert(addr);
            }
        }
        // Publish check: a successful CAS on a durable link whose new value
        // points at another registered extent makes that extent durably
        // reachable — every durable word of it must already be persisted.
        if kind == WriteKind::Cas && known && !volatile {
            let target = (bits & !TAG_MASK) as usize;
            if target != 0 {
                let writer_range = s.range_of(addr);
                if let Some((start, len)) = s.range_of(target) {
                    if writer_range.map(|(ws, _)| ws) != Some(start) {
                        let mut dirty_words = 0usize;
                        let mut first = None;
                        for w in (start..start + len.div_ceil(8) * 8).step_by(8) {
                            if let Some(c) = s.cells.get(&w) {
                                if !c.volatile && c.unpersisted() {
                                    dirty_words += 1;
                                    first.get_or_insert(w);
                                }
                            }
                        }
                        if let Some(first) = first {
                            s.record(
                                FindingKind::UnpersistedPublish,
                                addr,
                                format!(
                                    "CAS published node {start:#x} (+{len}B) with {dirty_words} \
                                     unpersisted word(s), first at offset {}",
                                    first - start
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_flush(&self, addr: usize) {
        let mut s = self.state.lock();
        let seq = match s.cells.get(&addr) {
            None => {
                s.record(
                    FindingKind::FlushAfterFree,
                    addr,
                    "flush of an unregistered (freed) cell".to_string(),
                );
                return;
            }
            Some(c) => c.dirty_seq,
        };
        let redundant = {
            let t = s.thread();
            let redundant = match t.op.as_mut() {
                Some(op) => !op.flushed.insert((addr, seq)),
                None => false,
            };
            t.pending.push((addr, seq));
            redundant
        };
        if redundant {
            s.record(
                FindingKind::RedundantFlush,
                addr,
                format!("word flushed twice at write seq {seq} within one operation"),
            );
        }
    }

    fn on_fence(&self) {
        let mut s = self.state.lock();
        let t = s.thread();
        let in_op = t.op.is_some();
        let pending = std::mem::take(&mut t.pending);
        if pending.is_empty() {
            if in_op {
                s.record(
                    FindingKind::RedundantFence,
                    0,
                    "fence with no flush pending on this thread".to_string(),
                );
            }
            return;
        }
        let mut freed = Vec::new();
        for (addr, seq) in pending {
            match s.cells.get_mut(&addr) {
                Some(c) => c.persisted_seq = c.persisted_seq.max(seq),
                None => freed.push(addr),
            }
        }
        for addr in freed {
            s.record(
                FindingKind::FlushAfterFree,
                addr,
                "cell freed between its flush and the fence".to_string(),
            );
        }
    }
}

/// The dynamic persistency sanitizer. See the [module docs](self).
///
/// # Example
///
/// ```
/// use nvtraverse_pmem::{Backend, PCell, Sim, SimHandle};
/// use nvtraverse_vet::Vet;
///
/// let sim = SimHandle::new();
/// let _g = sim.enter();
/// let vet = Vet::install(&sim);
/// let cell: Box<PCell<u64, Sim>> = Box::new(PCell::new(0));
/// sim.register_cell(cell.addr() as usize);
/// vet.op("store+persist", || {
///     cell.store(7);
///     Sim::flush(cell.addr());
///     Sim::fence();
/// });
/// let report = vet.finish(&sim);
/// assert!(report.is_clean());
/// ```
pub struct Vet {
    shared: Arc<Shared>,
}

impl fmt::Debug for Vet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.shared.state.lock();
        f.debug_struct("Vet")
            .field("cells", &s.cells.len())
            .field("findings", &s.findings.len())
            .finish()
    }
}

impl Vet {
    /// Creates a sanitizer and installs it as `sim`'s observer (replacing
    /// any previous observer).
    ///
    /// Cells already registered before installation are unknown to the
    /// sanitizer; install before building the structure under test.
    pub fn install(sim: &SimHandle) -> Vet {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
        });
        sim.set_observer(Some(shared.clone()));
        Vet { shared }
    }

    /// Runs `f` as one delimited operation.
    ///
    /// Within the scope, flush/fence redundancy is tracked; when `f`
    /// returns, every non-volatile word the operation wrote (and did not
    /// free) must be persisted, or a [`FindingKind::DirtyAtReturn`] error
    /// is recorded against `label`.
    pub fn op<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        {
            let mut s = self.shared.state.lock();
            s.ops += 1;
            let t = s.thread();
            assert!(t.op.is_none(), "Vet::op scopes do not nest");
            t.op = Some(OpState {
                label: label.to_string(),
                written: HashSet::new(),
                flushed: HashSet::new(),
            });
        }
        let r = f();
        let mut s = self.shared.state.lock();
        let op = s
            .thread()
            .op
            .take()
            .expect("Vet::op scope vanished mid-operation");
        let mut dirty: Vec<usize> = op
            .written
            .iter()
            .copied()
            .filter(|addr| {
                s.cells
                    .get(addr)
                    .is_some_and(|c| !c.volatile && c.unpersisted())
            })
            .collect();
        dirty.sort_unstable();
        for addr in dirty {
            s.record(
                FindingKind::DirtyAtReturn,
                addr,
                format!("operation `{}` returned with this word unpersisted", op.label),
            );
        }
        r
    }

    /// Snapshot of the findings so far without uninstalling.
    pub fn report(&self) -> VetReport {
        let s = self.shared.state.lock();
        VetReport {
            findings: s.findings.clone(),
            counts: s.counts.clone(),
            ops: s.ops,
        }
    }

    /// Uninstalls the sanitizer from `sim` and returns the final report.
    pub fn finish(self, sim: &SimHandle) -> VetReport {
        sim.set_observer(None);
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{Backend, PCell, Sim};

    fn setup() -> (SimHandle, nvtraverse_pmem::sim::SimGuard) {
        let sim = SimHandle::new();
        let g = sim.enter();
        (sim, g)
    }

    fn reg_cell(sim: &SimHandle, v: u64) -> Box<PCell<u64, Sim>> {
        let c = Box::new(PCell::new(v));
        sim.register_cell(c.addr() as usize);
        c
    }

    #[test]
    fn clean_store_flush_fence_has_no_findings() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        vet.op("store", || {
            c.store(5);
            Sim::flush(c.addr());
            Sim::fence();
        });
        let r = vet.finish(&sim);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.warnings(), 0, "{:?}", r.findings);
        assert_eq!(r.ops, 1);
    }

    #[test]
    fn dirty_at_return_is_flagged() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        vet.op("leaky", || c.store(5));
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::DirtyAtReturn), 1, "{:?}", r.findings);
    }

    #[test]
    fn flush_without_fence_still_dirty_at_return() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        vet.op("no-fence", || {
            c.store(5);
            Sim::flush(c.addr());
        });
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::DirtyAtReturn), 1, "{:?}", r.findings);
    }

    #[test]
    fn unpersisted_publish_is_flagged_and_persisted_publish_is_not() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        // A "link" cell and a "node" the link will point at.
        let link = reg_cell(&sim, 0);
        let node: Box<[u64; 2]> = Box::new([0, 0]);
        let addr = node.as_ptr() as usize;
        sim.register_range(addr, 16);

        // Publish without persisting the node: flagged.
        let link_cell: &PCell<u64, Sim> = &link;
        assert!(link_cell.compare_exchange(0, addr as u64).is_ok());
        let r = vet.report();
        assert_eq!(r.count(FindingKind::UnpersistedPublish), 1, "{:?}", r.findings);

        // Persist the node, then republish: no new finding.
        Sim::flush(addr as *const u8);
        Sim::flush((addr + 8) as *const u8);
        Sim::fence();
        assert!(link_cell.compare_exchange(addr as u64, 0).is_ok());
        assert!(link_cell.compare_exchange(0, addr as u64).is_ok());
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::UnpersistedPublish), 1, "{:?}", r.findings);
    }

    #[test]
    fn volatile_marked_links_are_exempt_from_publish_check() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let link = reg_cell(&sim, 0);
        nvtraverse_pmem::sim::current_mark_volatile_range(link.addr() as usize, 8);
        let node: Box<[u64; 1]> = Box::new([0]);
        let addr = node.as_ptr() as usize;
        sim.register_range(addr, 8);
        let link_cell: &PCell<u64, Sim> = &link;
        assert!(link_cell.compare_exchange(0, addr as u64).is_ok());
        // A write to a volatile cell is also exempt from dirty-at-return.
        let r = vet.finish(&sim);
        assert_eq!(r.errors(), 0, "{:?}", r.findings);
    }

    #[test]
    fn flush_after_free_is_flagged() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let node: Box<[u64; 1]> = Box::new([7]);
        let addr = node.as_ptr() as usize;
        sim.register_range(addr, 8);
        sim.deregister_range(addr, 8);
        Sim::flush(addr as *const u8);
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::FlushAfterFree), 1, "{:?}", r.findings);
    }

    #[test]
    fn free_between_flush_and_fence_is_flagged() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let node: Box<[u64; 1]> = Box::new([7]);
        let addr = node.as_ptr() as usize;
        sim.register_range(addr, 8);
        Sim::flush(addr as *const u8);
        sim.deregister_range(addr, 8);
        Sim::fence();
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::FlushAfterFree), 1, "{:?}", r.findings);
    }

    #[test]
    fn redundant_flush_and_fence_warn_within_an_op() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        vet.op("wasteful", || {
            c.store(1);
            Sim::flush(c.addr());
            Sim::flush(c.addr()); // same word, same write seq
            Sim::fence();
            Sim::fence(); // nothing pending
        });
        let r = vet.finish(&sim);
        assert_eq!(r.count(FindingKind::RedundantFlush), 1, "{:?}", r.findings);
        assert_eq!(r.count(FindingKind::RedundantFence), 1, "{:?}", r.findings);
        assert!(r.is_clean(), "warnings must not be errors: {:?}", r.findings);
    }

    #[test]
    fn freed_writes_do_not_leak_dirty_at_return() {
        // A failed insert allocates, writes, then frees — no finding.
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        vet.op("alloc-free", || {
            let node: Box<PCell<u64, Sim>> = Box::new(PCell::new(0));
            sim.register_cell(node.addr() as usize);
            node.store(3);
            drop(node); // PCell drop deregisters
        });
        let r = vet.finish(&sim);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn report_json_is_well_formed() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        vet.op("leak \"quoted\"", || c.store(1));
        let r = vet.finish(&sim);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dirty-at-return\":1"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
    }

    #[test]
    fn observer_uninstalls_on_finish() {
        let (sim, _g) = setup();
        let vet = Vet::install(&sim);
        let c = reg_cell(&sim, 0);
        let r = vet.finish(&sim);
        assert!(r.is_clean());
        c.store(9); // no observer: must not panic or record
    }
}
