//! `nvt-lint` — source-level persistency-protocol lints, CI gate.
//!
//! Usage: `nvt-lint [WORKSPACE_ROOT]` (default: current directory).
//! Prints one `path:line: rule: message` per violation and exits non-zero
//! if any were found. See `nvtraverse_vet::lint` for the rule table and
//! the allow-annotation syntax.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "nvt-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match nvtraverse_vet::lint_workspace(&root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                eprintln!("nvt-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("nvt-lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("nvt-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
