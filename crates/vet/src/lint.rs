//! Source-level protocol lints (the `nvt-lint` binary's engine).
//!
//! A dependency-free, token-level analyzer over the workspace's own `.rs`
//! files (no `syn` in `third_party/`, so the lexing is hand-rolled: line
//! and nested block comments, plain/raw/byte strings, char literals and
//! lifetimes are recognized; everything else is treated as code tokens).
//!
//! # Rules
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `repr-c-pcell` | all first-party crates | every struct containing a `PCell` field carries `#[repr(C)]` (or `transparent`) so field offsets — and therefore flush addresses and recovery layout — are defined |
//! | `safety-comment` | `pmem`, `pool`, `structures` | every `unsafe` block/fn/impl/extern carries a `// SAFETY:` comment (or `# Safety` doc section for fns) |
//! | `raw-pcell-access` | `structures` | no raw `PCell::{load, store, compare_exchange, swap, peek_bits}` outside an explicit allowlist — shared-cell traffic must route through the `Durability` policy so flushes/fences are placed by the protocol |
//! | `wall-clock` | `pmem`, `core`, `structures`, `pool` | no `Instant::now` / `SystemTime` — wall-clock reads on persistence-critical paths are nondeterministic across crash/recovery |
//!
//! # Allowlist annotations
//!
//! ```text
//! // nvt-lint: allow(raw-pcell-access): recovery reads raw bits by design
//! let bits = cell.peek_bits();
//! ```
//!
//! A line annotation allows the named rule on its own line and the next
//! line. Regions bracket larger spans (recovery walks, helping sections):
//!
//! ```text
//! // nvt-lint: begin-allow(raw-pcell-access): quiescent recovery rebuild
//! ...
//! // nvt-lint: end-allow(raw-pcell-access)
//! ```
//!
//! Every `allow`/`begin-allow` must state a reason after the colon;
//! unbalanced regions are themselves violations. `#[cfg(test)]` modules
//! are skipped entirely (tests legitimately use `peek_bits` to inspect
//! post-crash state).

use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule; see the [module docs](self) for the rule table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `#[repr(C)]` required on structs containing `PCell` fields.
    ReprCPcell,
    /// `// SAFETY:` comments required on `unsafe` code.
    SafetyComment,
    /// No raw `PCell` accesses outside the allowlist.
    RawPcellAccess,
    /// No `Instant::now` / `SystemTime` in persistence-critical crates.
    WallClock,
}

impl Rule {
    /// Every rule.
    pub const ALL: [Rule; 4] = [
        Rule::ReprCPcell,
        Rule::SafetyComment,
        Rule::RawPcellAccess,
        Rule::WallClock,
    ];

    /// Stable kebab-case name used in diagnostics and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ReprCPcell => "repr-c-pcell",
            Rule::SafetyComment => "safety-comment",
            Rule::RawPcellAccess => "raw-pcell-access",
            Rule::WallClock => "wall-clock",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as passed to [`lint_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable specifics.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---- lexer ----------------------------------------------------------------

/// Source split into per-line code (literals and comments blanked to
/// spaces) and per-line comment text.
struct Scanned {
    code: Vec<String>,
    comments: Vec<String>,
}

fn scan(source: &str) -> Scanned {
    let mut code: Vec<String> = vec![String::new()];
    let mut comments: Vec<String> = vec![String::new()];
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let n = bytes.len();

    macro_rules! push_code {
        ($c:expr) => {{
            code.last_mut().unwrap().push($c);
            comments.last_mut().unwrap().push(' ');
        }};
    }
    macro_rules! push_comment {
        ($c:expr) => {{
            code.last_mut().unwrap().push(' ');
            comments.last_mut().unwrap().push($c);
        }};
    }
    macro_rules! newline {
        () => {{
            code.push(String::new());
            comments.push(String::new());
        }};
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments).
                while i < n && bytes[i] != '\n' {
                    push_comment!(bytes[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 0usize;
                while i < n {
                    if bytes[i] == '\n' {
                        newline!();
                        i += 1;
                        continue;
                    }
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        push_comment!('/');
                        push_comment!('*');
                        i += 2;
                        continue;
                    }
                    if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        push_comment!('*');
                        push_comment!('/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    push_comment!(bytes[i]);
                    i += 1;
                }
            }
            '"' => {
                // Plain string literal.
                push_code!('"');
                i += 1;
                while i < n {
                    match bytes[i] {
                        '\\' if i + 1 < n => {
                            // A `\<newline>` line continuation must still
                            // advance the line counter.
                            push_code!(' ');
                            if bytes[i + 1] == '\n' {
                                newline!();
                            } else {
                                push_code!(' ');
                            }
                            i += 2;
                        }
                        '"' => {
                            push_code!('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            newline!();
                            i += 1;
                        }
                        _ => {
                            push_code!(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' | 'b'
                if is_raw_string_start(&bytes, i) =>
            {
                // Raw (possibly byte) string: r"..", r#".."#, br#".."#.
                let mut j = i;
                while j < n && (bytes[j] == 'r' || bytes[j] == 'b') {
                    push_code!(bytes[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < n && bytes[j] == '#' {
                    push_code!('#');
                    hashes += 1;
                    j += 1;
                }
                push_code!('"'); // opening quote
                j += 1;
                'raw: while j < n {
                    if bytes[j] == '\n' {
                        newline!();
                        j += 1;
                        continue;
                    }
                    if bytes[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && bytes[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            push_code!('"');
                            for _ in 0..hashes {
                                push_code!('#');
                            }
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    push_code!(' ');
                    j += 1;
                }
                i = j;
            }
            '\'' => {
                // Char literal vs lifetime.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal.
                    push_code!('\'');
                    i += 1;
                    while i < n && bytes[i] != '\'' {
                        push_code!(' ');
                        i += 1;
                    }
                    if i < n {
                        push_code!('\'');
                        i += 1;
                    }
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    // 'x'
                    push_code!('\'');
                    push_code!(' ');
                    push_code!('\'');
                    i += 3;
                } else {
                    // Lifetime (or label): keep as code.
                    push_code!('\'');
                    i += 1;
                }
            }
            c => {
                push_code!(c);
                i += 1;
            }
        }
    }

    Scanned { code, comments }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // r" r# b" (byte string) br" br# — but not an identifier like `radius`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j >= bytes.len() {
            return false;
        }
        if bytes[j] == '"' {
            return true; // b"...": treat like a raw-ish string (no escapes matter for us)
        }
    }
    if j >= bytes.len() || bytes[j] != 'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

// ---- allow annotations ----------------------------------------------------

struct Allows {
    /// `allowed[rule][line]` (0-based line).
    per_rule: std::collections::HashMap<Rule, Vec<bool>>,
    violations: Vec<(usize, Rule, String)>,
}

fn parse_allows(scanned: &Scanned) -> Allows {
    use std::collections::HashMap;
    let lines = scanned.comments.len();
    let mut per_rule: HashMap<Rule, Vec<bool>> = HashMap::new();
    for r in Rule::ALL {
        per_rule.insert(r, vec![false; lines]);
    }
    let mut violations = Vec::new();
    let mut open: HashMap<Rule, usize> = HashMap::new();

    for (ln, comment) in scanned.comments.iter().enumerate() {
        let Some(pos) = comment.find("nvt-lint:") else {
            continue;
        };
        let directive = comment[pos + "nvt-lint:".len()..].trim();
        let (verb, rest) = match directive.find('(') {
            Some(p) => (directive[..p].trim(), &directive[p + 1..]),
            None => {
                violations.push((
                    ln,
                    Rule::ALL[0],
                    format!("malformed nvt-lint directive: `{directive}`"),
                ));
                continue;
            }
        };
        let Some(close) = rest.find(')') else {
            violations.push((ln, Rule::ALL[0], "unclosed rule name in nvt-lint directive".into()));
            continue;
        };
        let rule_name = rest[..close].trim();
        let tail = rest[close + 1..].trim();
        let Some(rule) = Rule::from_name(rule_name) else {
            violations.push((ln, Rule::ALL[0], format!("unknown rule `{rule_name}` in nvt-lint directive")));
            continue;
        };
        match verb {
            "allow" | "begin-allow" => {
                let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
                if reason.is_empty() {
                    violations.push((
                        ln,
                        rule,
                        format!("nvt-lint {verb}({rule}) must state a reason: `: why`"),
                    ));
                    continue;
                }
                if verb == "allow" {
                    let flags = per_rule.get_mut(&rule).unwrap();
                    flags[ln] = true;
                    if ln + 1 < lines {
                        flags[ln + 1] = true;
                    }
                } else {
                    if open.insert(rule, ln).is_some() {
                        violations.push((ln, rule, format!("nested begin-allow({rule}) region")));
                    }
                }
            }
            "end-allow" => match open.remove(&rule) {
                Some(start) => {
                    let flags = per_rule.get_mut(&rule).unwrap();
                    for l in flags.iter_mut().take(ln + 1).skip(start) {
                        *l = true;
                    }
                }
                None => violations.push((ln, rule, format!("end-allow({rule}) without begin-allow"))),
            },
            other => violations.push((ln, rule, format!("unknown nvt-lint verb `{other}`"))),
        }
    }
    for (rule, start) in open {
        violations.push((start, rule, format!("begin-allow({rule}) region never closed")));
    }
    Allows { per_rule, violations }
}

// ---- #[cfg(test)] module masking ------------------------------------------

/// Blanks out the bodies of `#[cfg(test)] mod … { … }` so rules skip them.
fn mask_test_modules(code: &mut [String]) {
    let mut ln = 0;
    while ln < code.len() {
        if code[ln].contains("#[cfg(test)]") {
            // Find the opening brace of the following item.
            let mut depth = 0i64;
            let mut started = false;
            let mut l = ln;
            'outer: while l < code.len() {
                let line: Vec<char> = code[l].chars().collect();
                for (ci, &c) in line.iter().enumerate() {
                    match c {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => {
                            depth -= 1;
                        }
                        _ => continue,
                    }
                    if started && depth == 0 {
                        // Blank from the line after the attr through here.
                        for masked in code.iter_mut().take(l + 1).skip(ln) {
                            *masked = masked.chars().map(|_| ' ').collect();
                        }
                        let _ = ci;
                        ln = l;
                        break 'outer;
                    }
                }
                l += 1;
            }
        }
        ln += 1;
    }
}

// ---- rules ----------------------------------------------------------------

fn word_at(line: &str, idx: usize, word: &str) -> bool {
    let b = line.as_bytes();
    let end = idx + word.len();
    if end > b.len() || &line[idx..end] != word {
        return false;
    }
    let before_ok = idx == 0 || {
        let c = b[idx - 1] as char;
        !c.is_alphanumeric() && c != '_'
    };
    let after_ok = end == b.len() || {
        let c = b[end] as char;
        !c.is_alphanumeric() && c != '_'
    };
    before_ok && after_ok
}

/// Find every word-boundary occurrence of `word` in `line`.
fn find_words(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(word) {
        let idx = from + p;
        if word_at(line, idx, word) {
            out.push(idx);
        }
        from = idx + word.len();
    }
    out
}

fn check_repr_c_pcell(code: &[String], out: &mut Vec<(usize, String)>) {
    for ln in 0..code.len() {
        for idx in find_words(&code[ln], "struct") {
            // Name follows; find the body (next top-level `{`, `(`, or `;`).
            let mut l = ln;
            let mut ci = idx + "struct".len();
            let (mut body_start, mut opener) = (None, ' ');
            'find: while l < code.len() {
                let chars: Vec<char> = code[l].chars().collect();
                while ci < chars.len() {
                    match chars[ci] {
                        '{' | '(' => {
                            body_start = Some((l, ci));
                            opener = chars[ci];
                            break 'find;
                        }
                        ';' => break 'find,
                        _ => {}
                    }
                    ci += 1;
                }
                l += 1;
                ci = 0;
            }
            let Some((bl, bc)) = body_start else {
                continue; // unit struct
            };
            let closer = if opener == '{' { '}' } else { ')' };
            // Collect the body text.
            let mut body = String::new();
            let mut depth = 0i64;
            let (mut l, mut ci) = (bl, bc);
            'body: while l < code.len() {
                let chars: Vec<char> = code[l].chars().collect();
                while ci < chars.len() {
                    let c = chars[ci];
                    if c == opener {
                        depth += 1;
                    } else if c == closer {
                        depth -= 1;
                        if depth == 0 {
                            break 'body;
                        }
                    }
                    body.push(c);
                    ci += 1;
                }
                body.push('\n');
                l += 1;
                ci = 0;
            }
            // Only *inline* PCell fields constrain the struct's own layout;
            // a `*mut PCell`, `&PCell` or `Box<PCell>` field does not.
            let inline_pcell = find_words(&body, "PCell").into_iter().any(|p| {
                let before = body[..p].trim_end();
                !(before.ends_with("*mut")
                    || before.ends_with("*const")
                    || before.ends_with('&')
                    || before.ends_with("Box<")
                    || before.ends_with("Arc<")
                    || before.ends_with("Rc<")
                    || before.ends_with("NonNull<"))
            });
            if !inline_pcell {
                continue;
            }
            // Gather preceding attribute lines.
            let mut attrs = String::new();
            let mut a = ln;
            while a > 0 {
                a -= 1;
                let t = code[a].trim();
                if t.starts_with("#[") || t.starts_with("#![") || (t.is_empty() && !code[a].is_empty())
                {
                    attrs.push_str(t);
                    attrs.push('\n');
                    continue;
                }
                if t.is_empty() {
                    // Comment-only or blank line: keep scanning upward past
                    // doc comments.
                    continue;
                }
                break;
            }
            // Attributes may share the decl line (`#[repr(C)] struct S`).
            attrs.push_str(&code[ln][..idx]);
            if !repr_is_layout_stable(&attrs) {
                out.push((
                    ln,
                    "struct contains PCell fields but no #[repr(C)] / #[repr(transparent)]; \
                     flush addresses and recovery need a defined layout"
                        .to_string(),
                ));
            }
        }
    }
}

fn repr_is_layout_stable(attrs: &str) -> bool {
    let mut from = 0;
    while let Some(p) = attrs[from..].find("repr(") {
        let start = from + p + "repr(".len();
        let inner = match attrs[start..].find(')') {
            Some(e) => &attrs[start..start + e],
            None => &attrs[start..],
        };
        for part in inner.split(',') {
            let part = part.trim();
            if part == "C" || part == "transparent" {
                return true;
            }
        }
        from = start;
    }
    false
}

fn check_safety_comments(scanned: &Scanned, code: &[String], out: &mut Vec<(usize, String)>) {
    for ln in 0..code.len() {
        let occurrences = find_words(&code[ln], "unsafe");
        if occurrences.is_empty() {
            continue;
        }
        // What follows the keyword decides the required comment style.
        let after = {
            let idx = occurrences[0] + "unsafe".len();
            let mut rest: String = code[ln][idx..].to_string();
            let mut l = ln + 1;
            while rest.trim().is_empty() && l < code.len() {
                rest = code[l].clone();
                l += 1;
            }
            rest.trim_start().to_string()
        };
        let is_fn = after.starts_with("fn ") || after.starts_with("fn(");
        // Look for a SAFETY comment: same line or up to 3 lines above
        // (10 for fns — a trait impl's `// SAFETY:` sits above the
        // `unsafe impl` header, several lines before the method).
        let window = if is_fn { 10 } else { 3 };
        let nearby_safety = (ln.saturating_sub(window)..=ln)
            .any(|l| scanned.comments[l].contains("SAFETY"));
        // `unsafe fn` may instead document a `# Safety` section (doc
        // comments can sit above attributes, a ways up).
        let doc_safety = is_fn
            && (ln.saturating_sub(30)..=ln).any(|l| scanned.comments[l].contains("# Safety"));
        if !nearby_safety && !doc_safety {
            let what = if is_fn {
                "unsafe fn needs a `# Safety` doc section or a `// SAFETY:` comment"
            } else {
                "unsafe code needs a `// SAFETY:` comment within the 3 lines above"
            };
            out.push((ln, what.to_string()));
        }
    }
}

fn check_raw_pcell_access(code: &[String], out: &mut Vec<(usize, String)>) {
    // (method, PCell arity) — an atomic's same-named method takes more
    // arguments (the `Ordering`s), which is how the two are told apart.
    const METHODS: [(&str, usize); 5] = [
        ("load", 0),
        ("store", 1),
        ("compare_exchange", 2),
        ("swap", 1),
        ("peek_bits", 0),
    ];
    for ln in 0..code.len() {
        for (method, arity) in METHODS {
            let pat = format!(".{method}");
            let mut from = 0;
            while let Some(p) = code[ln][from..].find(&pat) {
                let idx = from + p;
                from = idx + pat.len();
                // Must be followed by `(` and be a word boundary.
                let end = idx + pat.len();
                if !word_at(&code[ln], idx + 1, method) {
                    continue;
                }
                let rest = &code[ln][end..];
                if !rest.trim_start().starts_with('(') {
                    continue;
                }
                if let Some(args) = count_args(code, ln, end) {
                    if args == arity {
                        out.push((
                            ln,
                            format!(
                                "raw PCell::{method} — route through the Durability policy \
                                 (t_load / c_load / c_store / c_cas) or annotate why not"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Counts top-level arguments of the call whose `(` is at/after
/// `(line, col)`; `None` if the parens never close (truncated scan).
fn count_args(code: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut args = 0usize;
    let mut any = false;
    let mut l = line;
    let mut ci = col;
    while l < code.len() {
        let chars: Vec<char> = code[l].chars().collect();
        while ci < chars.len() {
            let c = chars[ci];
            match c {
                '(' | '[' => {
                    depth += 1;
                }
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(if any { args + 1 } else { 0 });
                    }
                }
                ',' if depth == 1 => args += 1,
                c if depth >= 1 && !c.is_whitespace() => any = true,
                _ => {}
            }
            ci += 1;
        }
        l += 1;
        ci = 0;
        if l > line + 40 {
            return None; // give up on absurd spans
        }
    }
    None
}

fn check_wall_clock(code: &[String], out: &mut Vec<(usize, String)>) {
    for (ln, line) in code.iter().enumerate() {
        if !find_words(line, "SystemTime").is_empty() || line.contains("Instant::now") {
            out.push((
                ln,
                "wall-clock read in a persistence-critical crate; timing must not \
                 leak into durable state or recovery decisions"
                    .to_string(),
            ));
        }
    }
}

// ---- entry points ---------------------------------------------------------

/// Lints one source file against `rules`, honouring allow annotations and
/// skipping `#[cfg(test)]` modules. `file` is only used for labels.
pub fn lint_source(file: &str, source: &str, rules: &[Rule]) -> Vec<Violation> {
    let scanned = scan(source);
    let allows = parse_allows(&scanned);
    let mut code = scanned.code.clone();
    mask_test_modules(&mut code);

    let mut out: Vec<Violation> = allows
        .violations
        .iter()
        .map(|(ln, rule, msg)| Violation {
            file: file.to_string(),
            line: ln + 1,
            rule: *rule,
            message: msg.clone(),
        })
        .collect();

    for &rule in rules {
        let mut found: Vec<(usize, String)> = Vec::new();
        match rule {
            Rule::ReprCPcell => check_repr_c_pcell(&code, &mut found),
            Rule::SafetyComment => check_safety_comments(&scanned, &code, &mut found),
            Rule::RawPcellAccess => check_raw_pcell_access(&code, &mut found),
            Rule::WallClock => check_wall_clock(&code, &mut found),
        }
        let allowed = &allows.per_rule[&rule];
        for (ln, message) in found {
            if allowed.get(ln).copied().unwrap_or(false) {
                continue;
            }
            out.push(Violation {
                file: file.to_string(),
                line: ln + 1,
                rule,
                message,
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Which rules apply to a workspace-relative path; empty to skip the file.
pub fn rules_for(rel_path: &str) -> Vec<Rule> {
    let p = rel_path.replace('\\', "/");
    if p.contains("third_party/") || p.contains("/target/") || p.starts_with("target/") {
        return Vec::new();
    }
    if !p.ends_with(".rs") {
        return Vec::new();
    }
    // Only crate sources (and the umbrella's src/); tests and benches may
    // legitimately poke raw state. `tests.rs` modules are `#[cfg(test)]`-
    // gated at their `mod` declaration, which a per-file scan can't see.
    let in_crates = p.starts_with("crates/") && p.contains("/src/");
    let in_umbrella = p.starts_with("src/");
    if !in_crates && !in_umbrella {
        return Vec::new();
    }
    if p.ends_with("/tests.rs") || p.contains("/tests/") {
        return Vec::new();
    }
    let crate_name = p
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let mut rules = vec![Rule::ReprCPcell];
    if matches!(crate_name, "pmem" | "pool" | "structures") {
        rules.push(Rule::SafetyComment);
    }
    if crate_name == "structures" {
        rules.push(Rule::RawPcellAccess);
    }
    if matches!(crate_name, "pmem" | "core" | "structures" | "pool") {
        rules.push(Rule::WallClock);
    }
    rules
}

/// Lints every applicable `.rs` file under `root` (a workspace checkout).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    collect_rs_files(&root.join("src"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&f)?;
        out.extend(lint_source(&rel, &source, &rules));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, rules: &[Rule]) -> Vec<Violation> {
        lint_source("test.rs", src, rules)
    }

    #[test]
    fn repr_c_missing_is_flagged_and_present_is_not() {
        let bad = "pub struct Node<B: Backend> {\n    next: PCell<u64, B>,\n}\n";
        let v = lint(bad, &[Rule::ReprCPcell]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ReprCPcell);
        assert_eq!(v[0].line, 1);

        let good = "#[repr(C)]\npub struct Node<B: Backend> {\n    next: PCell<u64, B>,\n}\n";
        assert!(lint(good, &[Rule::ReprCPcell]).is_empty());
        let transparent = "#[repr(transparent)]\nstruct W { c: PCell<u64, Noop> }\n";
        assert!(lint(transparent, &[Rule::ReprCPcell]).is_empty());
        let with_align = "#[repr(C, align(64))]\nstruct W { c: PCell<u64, Noop> }\n";
        assert!(lint(with_align, &[Rule::ReprCPcell]).is_empty());
        let no_pcell = "struct Plain { x: u64 }\n";
        assert!(lint(no_pcell, &[Rule::ReprCPcell]).is_empty());
    }

    #[test]
    fn safety_comment_rule() {
        let bad = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint(bad, &[Rule::SafetyComment]);
        assert_eq!(v.len(), 1, "{v:?}");

        let good = "fn f(p: *mut u8) {\n    // SAFETY: caller owns p\n    unsafe { p.write(0) };\n}\n";
        assert!(lint(good, &[Rule::SafetyComment]).is_empty());

        let doc_fn = "/// Does things.\n///\n/// # Safety\n///\n/// `p` must be valid.\npub unsafe fn g(p: *mut u8) {}\n";
        assert!(lint(doc_fn, &[Rule::SafetyComment]).is_empty(), "{:?}", lint(doc_fn, &[Rule::SafetyComment]));
    }

    #[test]
    fn raw_pcell_access_rule_distinguishes_atomics() {
        let bad = "fn f() {\n    let x = cell.load();\n    cell.store(x);\n    let _ = cell.compare_exchange(a, b);\n    let _ = cell.peek_bits();\n}\n";
        let v = lint(bad, &[Rule::RawPcellAccess]);
        assert_eq!(v.len(), 4, "{v:?}");

        let atomics = "fn f() {\n    let x = a.load(Ordering::SeqCst);\n    a.store(1, Ordering::SeqCst);\n    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n    let _ = a.swap(2, Ordering::SeqCst);\n}\n";
        assert!(lint(atomics, &[Rule::RawPcellAccess]).is_empty(), "{:?}", lint(atomics, &[Rule::RawPcellAccess]));
    }

    #[test]
    fn wall_clock_rule() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint(bad, &[Rule::WallClock]).len(), 1);
        let bad2 = "use std::time::SystemTime;\n";
        assert_eq!(lint(bad2, &[Rule::WallClock]).len(), 1);
        let ok = "fn f() { let d = Duration::from_secs(1); }\n";
        assert!(lint(ok, &[Rule::WallClock]).is_empty());
    }

    #[test]
    fn line_allow_suppresses_with_reason() {
        let src = "fn f() {\n    // nvt-lint: allow(raw-pcell-access): recovery reads raw bits\n    let x = cell.load();\n}\n";
        assert!(lint(src, &[Rule::RawPcellAccess]).is_empty());

        let no_reason = "fn f() {\n    // nvt-lint: allow(raw-pcell-access)\n    let x = cell.load();\n}\n";
        let v = lint(no_reason, &[Rule::RawPcellAccess]);
        assert!(
            v.iter().any(|v| v.message.contains("reason")),
            "missing-reason must be a violation: {v:?}"
        );
    }

    #[test]
    fn region_allow_and_unbalanced_region() {
        let src = "fn f() {\n    // nvt-lint: begin-allow(raw-pcell-access): quiescent rebuild\n    let x = cell.load();\n    let y = cell.peek_bits();\n    // nvt-lint: end-allow(raw-pcell-access)\n    let z = other.load();\n}\n";
        let v = lint(src, &[Rule::RawPcellAccess]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);

        let unbalanced = "// nvt-lint: begin-allow(wall-clock): forever\nfn f() {}\n";
        let v = lint(unbalanced, &[Rule::WallClock]);
        assert!(v.iter().any(|v| v.message.contains("never closed")), "{v:?}");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = cell.peek_bits(); let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint(src, &[Rule::RawPcellAccess, Rule::WallClock]).is_empty());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = "fn f() {\n    let s = \"cell.load()\";\n    // cell.load() in a comment\n    let r = r#\"Instant::now()\"#;\n}\n";
        assert!(lint(src, &[Rule::RawPcellAccess, Rule::WallClock]).is_empty());
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "fn f() {\n    let s = \"a \\\n        b\";\n    let t = std::time::Instant::now();\n}\n";
        let v = lint(src, &[Rule::WallClock]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn rules_for_scopes_by_crate() {
        assert!(rules_for("crates/structures/src/list.rs").contains(&Rule::RawPcellAccess));
        assert!(!rules_for("crates/server/src/lib.rs").contains(&Rule::RawPcellAccess));
        assert!(rules_for("crates/pmem/src/sim.rs").contains(&Rule::SafetyComment));
        assert!(!rules_for("crates/server/src/lib.rs").contains(&Rule::WallClock));
        assert!(rules_for("third_party/rand/src/lib.rs").is_empty());
        assert!(rules_for("tests/common/mod.rs").is_empty());
    }
}
