//! The generic operation driver: the paper's Algorithm 2, executable.
//!
//! A data structure exposes its three methods through [`TraversalOps`] and
//! [`run_operation`] composes them, *automatically* inserting the
//! `ensureReachable` and `makePersistent` steps of Protocol 1 between the
//! traversal and the critical method:
//!
//! ```text
//! T operation(Node root, T' input) {
//!   while (true) {
//!     Node entry = findEntry(root, input);
//!     List<Node> nodes = traverse(entry, input);
//!     ensureReachable(nodes.first());            // injected
//!     makePersistent(nodes);                     // injected
//!     bool restart, T val = critical(nodes, input);
//!     if (!restart) return val; } }
//! ```
//!
//! The driver is generic over the structure's [`Durability`] policy, so the
//! very same `TraversalOps` implementation yields the original algorithm, the
//! NVTraverse version, or a baseline, depending on one type parameter.

use crate::policy::Durability;
use nvtraverse_ebr::Guard;

/// Maximum number of field addresses one traversal may ask to persist.
///
/// Protocol 1 flushes only fields of the traversal's returned *window*, which
/// every structure in this repository bounds by a small constant (the paper's
/// key point: O(1) flushes after an O(n) journey).
pub const MAX_PERSIST_FIELDS: usize = 16;

/// The set of addresses Protocol 1 must persist before the critical method.
///
/// Collected by [`TraversalOps::collect_persist_set`]; the driver hands the
/// parent address to [`Durability::ensure_reachable`] and the field addresses
/// to [`Durability::make_persistent`].
#[derive(Debug)]
pub struct PersistSet {
    parent: Option<*const u8>,
    fields: [*const u8; MAX_PERSIST_FIELDS],
    len: usize,
}

impl Default for PersistSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistSet {
    /// An empty persist set.
    pub fn new() -> Self {
        PersistSet {
            parent: None,
            fields: [std::ptr::null(); MAX_PERSIST_FIELDS],
            len: 0,
        }
    }

    /// Records the address of the pointer that keeps the window reachable
    /// (the original/current parent link — Lemma 4.1).
    pub fn set_parent(&mut self, addr: *const u8) {
        self.parent = Some(addr);
    }

    /// Adds one field address the traversal read in a returned node.
    /// Duplicates are dropped — a window's left/right nodes often share
    /// fields, and each address needs only one flush per Protocol 1 round.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_PERSIST_FIELDS`] distinct fields are
    /// added — a traversal data structure must return an O(1)-size window.
    pub fn push(&mut self, addr: *const u8) {
        if self.fields[..self.len].contains(&addr) {
            return;
        }
        assert!(
            self.len < MAX_PERSIST_FIELDS,
            "persist window exceeded MAX_PERSIST_FIELDS; \
             is this really a traversal data structure?"
        );
        self.fields[self.len] = addr;
        self.len += 1;
    }

    /// The recorded parent address, if any.
    pub fn parent(&self) -> Option<*const u8> {
        self.parent
    }

    /// The recorded field addresses.
    pub fn fields(&self) -> &[*const u8] {
        &self.fields[..self.len]
    }
}

/// Outcome of a critical method: either the operation's value or a restart
/// request (Algorithm 1's `restart` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Critical<T> {
    /// The operation attempt completed with this value.
    Done(T),
    /// The attempt lost a race; re-run `findEntry → traverse → critical`
    /// with the *same input* (paper §3: "restart with the same input values
    /// as before").
    Restart,
}

/// The three methods of a traversal data structure (paper §3, Algorithm 1).
///
/// Property 3 (Operation Data) is enforced structurally: each method receives
/// only the operation input, the entry/window produced by the previous stage,
/// and an epoch guard — no other channel exists between attempts.
pub trait TraversalOps {
    /// The durability policy the structure was instantiated with.
    type D: Durability;
    /// The operation input (key, value, operation kind).
    type Input: Copy;
    /// The operation result.
    type Output;
    /// An entry point into the core tree.
    type Entry: Copy;
    /// The window of nodes returned by the traversal (a path suffix).
    type Window;

    /// Picks the entry point for this input (may simply return the root).
    fn find_entry(&self, guard: &Guard, input: Self::Input) -> Self::Entry;

    /// Walks from `entry` making only local decisions; reads shared memory
    /// but never writes it (Property 4).
    fn traverse(&self, guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window;

    /// Reports which addresses Protocol 1 must persist for this window: the
    /// parent link that keeps the window reachable and the mutable fields the
    /// traversal read in the returned nodes.
    fn collect_persist_set(&self, window: &Self::Window, out: &mut PersistSet);

    /// Performs the modifications (Protocol 2 is applied by calling the
    /// `c_*` methods of [`Durability`]) or computes the return value.
    fn critical(
        &self,
        guard: &Guard,
        window: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output>;
}

/// Runs one operation on a traversal data structure (Algorithm 2).
///
/// Retries on [`Critical::Restart`] and issues the Protocol 1 and
/// return-fence persistence steps automatically. This function *is* the
/// automatic part of the transformation: a structure author writes the three
/// methods and never reasons about flushes between them.
pub fn run_operation<S: TraversalOps>(structure: &S, guard: &Guard, input: S::Input) -> S::Output {
    loop {
        let entry = structure.find_entry(guard, input);
        let window = structure.traverse(guard, entry, input);
        let mut persist = PersistSet::new();
        structure.collect_persist_set(&window, &mut persist);
        if let Some(parent) = persist.parent() {
            // `make_persistent` flushes every field anyway, so a parent
            // that is also a field would be flushed twice; the fence in
            // `make_persistent` covers both orders.
            if !persist.fields().contains(&parent) {
                <S::D as Durability>::ensure_reachable(parent);
            }
        }
        <S::D as Durability>::make_persistent(persist.fields());
        match structure.critical(guard, window, input) {
            Critical::Done(value) => {
                <S::D as Durability>::before_return();
                return value;
            }
            Critical::Restart => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NvTraverse, Volatile};
    use nvtraverse_ebr::Collector;
    use nvtraverse_pmem::{Count, Noop, PCell};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A fake one-cell "structure" that restarts a configurable number of
    /// times, to pin down the driver's control flow.
    struct Bouncer<D: Durability> {
        cell: PCell<u64, D::B>,
        restarts_left: AtomicUsize,
        traversals: AtomicUsize,
    }

    impl<D: Durability> TraversalOps for Bouncer<D> {
        type D = D;
        type Input = u64;
        type Output = u64;
        type Entry = ();
        type Window = u64;

        fn find_entry(&self, _g: &Guard, _i: u64) {}
        fn traverse(&self, _g: &Guard, _e: (), _i: u64) -> u64 {
            self.traversals.fetch_add(1, Ordering::Relaxed);
            self.cell.load()
        }
        fn collect_persist_set(&self, _w: &u64, out: &mut PersistSet) {
            out.set_parent(self.cell.addr());
            out.push(self.cell.addr());
        }
        fn critical(&self, _g: &Guard, w: u64, input: u64) -> Critical<u64> {
            if self.restarts_left.load(Ordering::Relaxed) > 0 {
                self.restarts_left.fetch_sub(1, Ordering::Relaxed);
                return Critical::Restart;
            }
            Critical::Done(w + input)
        }
    }

    #[test]
    fn driver_returns_critical_value() {
        let b = Bouncer::<Volatile> {
            cell: PCell::new(40),
            restarts_left: AtomicUsize::new(0),
            traversals: AtomicUsize::new(0),
        };
        let c = Collector::new();
        let g = c.pin();
        assert_eq!(run_operation(&b, &g, 2), 42);
        assert_eq!(b.traversals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn driver_reruns_full_attempt_on_restart() {
        let b = Bouncer::<Volatile> {
            cell: PCell::new(0),
            restarts_left: AtomicUsize::new(3),
            traversals: AtomicUsize::new(0),
        };
        let c = Collector::new();
        let g = c.pin();
        let _ = run_operation(&b, &g, 1);
        // 3 restarts + 1 success = 4 complete attempts, each re-traversing.
        assert_eq!(b.traversals.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn driver_issues_protocol_one_per_attempt() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let b = Bouncer::<NvTraverse<Count<Noop>>> {
            cell: PCell::new(0),
            restarts_left: AtomicUsize::new(1),
            traversals: AtomicUsize::new(0),
        };
        let c = Collector::new();
        let g = c.pin();
        let before = nvtraverse_pmem::stats::snapshot();
        let _ = run_operation(&b, &g, 1);
        let d = nvtraverse_pmem::stats::snapshot().since(before);
        // Two attempts: the parent is also the (sole) persist-set field, so
        // `ensure_reachable` is skipped and each attempt is one flush + the
        // makePersistent fence. The critical section writes nothing, so the
        // closing before_return fence has no pending flush and is elided.
        assert_eq!(d.flushes, 2);
        assert_eq!(d.fences, 2);
    }

    #[test]
    fn driver_flushes_distinct_parent_separately() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        /// Like `Bouncer` but with a parent link distinct from the window
        /// field, so Protocol 1 must flush both.
        struct TwoCell {
            parent: PCell<u64, Count<Noop>>,
            field: PCell<u64, Count<Noop>>,
        }
        impl TraversalOps for TwoCell {
            type D = NvTraverse<Count<Noop>>;
            type Input = ();
            type Output = ();
            type Entry = ();
            type Window = ();

            fn find_entry(&self, _g: &Guard, _i: ()) {}
            fn traverse(&self, _g: &Guard, _e: (), _i: ()) {}
            fn collect_persist_set(&self, _w: &(), out: &mut PersistSet) {
                out.set_parent(self.parent.addr());
                out.push(self.field.addr());
                out.push(self.field.addr()); // duplicate: must be dropped
            }
            fn critical(&self, _g: &Guard, _w: (), _i: ()) -> Critical<()> {
                Critical::Done(())
            }
        }
        let s = TwoCell {
            parent: PCell::new(0),
            field: PCell::new(0),
        };
        let c = Collector::new();
        let g = c.pin();
        let before = nvtraverse_pmem::stats::snapshot();
        run_operation(&s, &g, ());
        let d = nvtraverse_pmem::stats::snapshot().since(before);
        // ensure_reachable(parent) + make_persistent([field]) + its fence;
        // the duplicated field is flushed once.
        assert_eq!(d.flushes, 2);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn persist_set_capacity_is_enforced() {
        let mut ps = PersistSet::new();
        for i in 0..MAX_PERSIST_FIELDS {
            ps.push((8 * (i + 1)) as *const u8);
        }
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ps.push((8 * (MAX_PERSIST_FIELDS + 1)) as *const u8)
        }))
        .is_err());
    }

    #[test]
    fn persist_set_drops_duplicate_fields() {
        let mut ps = PersistSet::new();
        ps.push(8 as *const u8);
        ps.push(16 as *const u8);
        ps.push(8 as *const u8);
        assert_eq!(ps.fields(), &[8 as *const u8, 16 as *const u8]);
    }

    #[test]
    fn persist_set_records_parent_and_fields() {
        let mut ps = PersistSet::new();
        assert!(ps.parent().is_none());
        ps.set_parent(8 as *const u8);
        ps.push(16 as *const u8);
        ps.push(24 as *const u8);
        assert_eq!(ps.parent(), Some(8 as *const u8));
        assert_eq!(ps.fields(), &[16 as *const u8, 24 as *const u8]);
    }
}
