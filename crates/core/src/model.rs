//! Reference models and the durable-linearizability verdict logic used by
//! the crash tests.
//!
//! Durable linearizability (Izraelevitz et al., adopted by the paper §2)
//! requires that after removing crash events the history is linearizable: the
//! effect of every *completed* operation survives the crash, and each
//! operation *in flight* at the crash either takes full effect or none.
//!
//! The crash tests arrange for every thread to own a disjoint key range, so
//! the per-key operation history is sequential and the allowed post-recovery
//! states can be computed exactly, key by key, by [`key_verdict`].

use std::collections::BTreeMap;

/// A sequential reference set with the same semantics as [`DurableSet`]
/// (insert fails on duplicates, remove fails on absent keys).
///
/// Property-based tests run random operation sequences against a real
/// structure and this model in lockstep.
///
/// [`DurableSet`]: crate::set::DurableSet
///
/// # Example
///
/// ```
/// use nvtraverse::model::ModelSet;
///
/// let mut m = ModelSet::new();
/// assert!(m.insert(1, 10));
/// assert!(!m.insert(1, 11)); // duplicate
/// assert_eq!(m.get(1), Some(10));
/// assert!(m.remove(1));
/// assert!(!m.remove(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelSet {
    map: BTreeMap<u64, u64>,
}

impl ModelSet {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts; `false` if the key was present (value unchanged).
    pub fn insert(&mut self, key: u64, value: u64) -> bool {
        use std::collections::btree_map::Entry;
        match self.map.entry(key) {
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Removes; `false` if the key was absent.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Current value for `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// A mutating set operation, as recorded by crash-test workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// `insert(key, _)` and whether it returned `true`.
    Insert {
        /// The key inserted.
        key: u64,
        /// Whether the insert reported success.
        succeeded: bool,
    },
    /// `remove(key)` and whether it returned `true`.
    Remove {
        /// The key removed.
        key: u64,
        /// Whether the remove reported success.
        succeeded: bool,
    },
}

impl MutOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            MutOp::Insert { key, .. } | MutOp::Remove { key, .. } => key,
        }
    }
}

/// The set of post-recovery membership states durable linearizability allows
/// for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyVerdict {
    /// The key may legally be present after recovery.
    pub may_be_present: bool,
    /// The key may legally be absent after recovery.
    pub may_be_absent: bool,
}

impl KeyVerdict {
    /// Checks an observed membership against the verdict.
    pub fn allows(&self, present: bool) -> bool {
        if present {
            self.may_be_present
        } else {
            self.may_be_absent
        }
    }
}

/// Computes the allowed post-recovery states of one key, given that all
/// mutating operations on this key were issued by a single thread (so their
/// order is the program order).
///
/// * `initially_present` — membership after the (persisted) prefill.
/// * `completed` — mutating ops on this key that returned before the crash,
///   in program order. Their effects must survive.
/// * `in_flight` — the op (at most one: the owner thread's last) that had
///   started but not returned when the crash hit. It may take effect or not.
///
/// # Example
///
/// ```
/// use nvtraverse::model::{key_verdict, MutOp};
///
/// // Completed insert, crash during a later remove: both states legal.
/// let v = key_verdict(
///     false,
///     &[MutOp::Insert { key: 7, succeeded: true }],
///     Some(MutOp::Remove { key: 7, succeeded: false }),
/// );
/// assert!(v.may_be_present && v.may_be_absent);
///
/// // Completed insert, nothing in flight: the key MUST be there.
/// let v = key_verdict(false, &[MutOp::Insert { key: 7, succeeded: true }], None);
/// assert!(v.may_be_present && !v.may_be_absent);
/// ```
pub fn key_verdict(
    initially_present: bool,
    completed: &[MutOp],
    in_flight: Option<MutOp>,
) -> KeyVerdict {
    // Membership after the last completed mutating op (set semantics make
    // this depend only on the last op's kind).
    let base = match completed.last() {
        Some(MutOp::Insert { .. }) => true,
        Some(MutOp::Remove { .. }) => false,
        None => initially_present,
    };
    match in_flight {
        None => KeyVerdict {
            may_be_present: base,
            may_be_absent: !base,
        },
        Some(MutOp::Insert { .. }) => KeyVerdict {
            may_be_present: true,
            may_be_absent: !base,
        },
        Some(MutOp::Remove { .. }) => KeyVerdict {
            may_be_present: base,
            may_be_absent: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(key: u64, succeeded: bool) -> MutOp {
        MutOp::Insert { key, succeeded }
    }
    fn rem(key: u64, succeeded: bool) -> MutOp {
        MutOp::Remove { key, succeeded }
    }

    #[test]
    fn model_set_has_set_semantics() {
        let mut m = ModelSet::new();
        assert!(m.insert(5, 50));
        assert!(!m.insert(5, 51), "duplicate insert must fail");
        assert_eq!(m.get(5), Some(50), "failed insert must not overwrite");
        assert!(m.remove(5));
        assert!(!m.remove(5));
        assert!(m.is_empty());
    }

    #[test]
    fn model_set_iterates_in_key_order() {
        let mut m = ModelSet::new();
        for k in [5u64, 1, 3] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn no_ops_means_prefill_membership_is_mandatory() {
        let v = key_verdict(true, &[], None);
        assert!(v.allows(true) && !v.allows(false));
        let v = key_verdict(false, &[], None);
        assert!(!v.allows(true) && v.allows(false));
    }

    #[test]
    fn completed_ops_are_mandatory() {
        let v = key_verdict(false, &[ins(1, true)], None);
        assert!(v.allows(true) && !v.allows(false));
        let v = key_verdict(false, &[ins(1, true), rem(1, true)], None);
        assert!(!v.allows(true) && v.allows(false));
    }

    #[test]
    fn last_completed_op_wins() {
        let history = [ins(1, true), rem(1, true), ins(1, true)];
        let v = key_verdict(false, &history, None);
        assert!(v.allows(true) && !v.allows(false));
    }

    #[test]
    fn in_flight_insert_permits_both_only_if_absent_allowed() {
        // Base absent + in-flight insert: either state.
        let v = key_verdict(false, &[], Some(ins(1, false)));
        assert!(v.allows(true) && v.allows(false));
        // Base present + in-flight insert: must stay present (an unapplied
        // insert cannot *remove* the key).
        let v = key_verdict(true, &[], Some(ins(1, false)));
        assert!(v.allows(true) && !v.allows(false));
    }

    #[test]
    fn in_flight_remove_permits_both_only_if_present_allowed() {
        let v = key_verdict(true, &[], Some(rem(1, false)));
        assert!(v.allows(true) && v.allows(false));
        let v = key_verdict(false, &[], Some(rem(1, false)));
        assert!(!v.allows(true) && v.allows(false));
    }

    #[test]
    fn failed_completed_ops_still_pin_membership() {
        // A *completed* failed insert proves the key was present at its
        // linearization point; with set semantics the key is still present.
        let v = key_verdict(true, &[ins(1, false)], None);
        assert!(v.allows(true) && !v.allows(false));
    }

    #[test]
    fn mut_op_key_accessor() {
        assert_eq!(ins(9, true).key(), 9);
        assert_eq!(rem(3, false).key(), 3);
    }
}
