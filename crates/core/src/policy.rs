//! Durability policies: *where* flushes and fences are placed.
//!
//! This module is the paper's transformation made executable. A data
//! structure in traversal form performs every shared-memory access through
//! one of the methods of [`Durability`], classified exactly as the paper
//! classifies accesses:
//!
//! * [`t_load`](Durability::t_load) / [`t_load_link`](Durability::t_load_link)
//!   — reads inside the `traverse` method,
//! * [`ensure_reachable`](Durability::ensure_reachable) and
//!   [`make_persistent`](Durability::make_persistent) — the two injected
//!   steps between `traverse` and `critical` (Protocol 1),
//! * [`c_load`](Durability::c_load), [`c_cas`](Durability::c_cas),
//!   [`c_store`](Durability::c_store), … — accesses inside the `critical`
//!   method (Protocol 2),
//! * [`load_fixed`](Durability::load_fixed) — reads of immutable fields,
//!   which never need flushing after initialization (§4.4: "no flush —
//!   immutable"),
//! * [`persist_new_node`](Durability::persist_new_node) — flushing a freshly
//!   initialized node, with the single fence deferred to just before the
//!   linking CAS (§4.2),
//! * [`before_return`](Durability::before_return) — the fence before an
//!   operation returns.
//!
//! Each implementation of the trait is one of the systems compared in the
//! paper's evaluation; see the crate-level table.
//!
//! The closing fence of every durable policy routes through
//! [`nvtraverse_pmem::batch`]: inside a
//! [`FenceBatch`](nvtraverse_pmem::batch::FenceBatch) scope it is deferred
//! to the batch's single shared fence (the server's group-commit path);
//! outside any scope it is issued immediately, exactly as the protocols
//! place it. Only `before_return` defers — every other fence orders stores
//! for concurrent helpers and stays put.

use crate::marked::MarkedPtr;
use nvtraverse_obs as obs;
use nvtraverse_pmem::{Backend, Noop, PCell, Word};
use std::marker::PhantomData;

/// Issues `B::fence()` only when this thread has unfenced flushes.
///
/// A protocol fence's one job is draining the issuing thread's flush queue
/// (SFENCE semantics — it orders nothing across threads that their own
/// fences don't already order), so with no flush in flight it is a no-op
/// and the policies elide it. [`nvtraverse_pmem::flushes_pending`] is
/// conservative: it can over-report (an extra fence), never under-report,
/// so elision cannot lose a fence that could matter.
#[inline]
fn fence_if_pending<B: Backend>() {
    if nvtraverse_pmem::flushes_pending() {
        B::fence();
    }
}

// Every flush-bearing policy method opens an `obs::phase` scope so that
// flushes and fences recorded by an attributing backend (`MmapBackend`,
// `Count`) carry the pipeline stage that issued them — the paper's
// traversal/critical split made observable. Methods that cannot flush
// (traversal reads under NvTraverse, the Volatile policy entirely) open no
// scope and stay zero-cost.

/// A durability policy: the placement of flushes and fences.
///
/// All methods are static; policies are zero-sized type parameters, so the
/// "transformation" is applied by the compiler at monomorphization time with
/// no runtime dispatch. For [`Volatile`] every method optimizes to a plain
/// atomic access.
pub trait Durability: Send + Sync + 'static {
    /// The flush/fence backend this policy drives.
    type B: Backend;

    /// Whether the policy produces a durable (recoverable) structure.
    /// `false` only for [`Volatile`].
    const DURABLE: bool;

    // ---- traversal phase -------------------------------------------------

    /// Read of a mutable shared scalar during `traverse`.
    fn t_load<T: Word>(cell: &PCell<T, Self::B>) -> T;

    /// Read of a link (pointer word) during `traverse`.
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, Self::B>) -> MarkedPtr<T>;

    // ---- between traverse and critical (Protocol 1) ----------------------

    /// Flush the pointer that connects the traversal's first returned node to
    /// the rest of the tree (the *original parent* of Supplement 2, or the
    /// current parent under the Lemma 4.1 optimization).
    fn ensure_reachable(addr: *const u8);

    /// Flush every field the traversal read in its returned nodes, then
    /// fence. The fence also covers [`Durability::ensure_reachable`].
    fn make_persistent(addrs: &[*const u8]);

    // ---- critical phase (Protocol 2) --------------------------------------

    /// Read of a mutable shared scalar in `critical`: flush after the read.
    fn c_load<T: Word>(cell: &PCell<T, Self::B>) -> T;

    /// Read of a link in `critical`: flush after the read.
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, Self::B>) -> MarkedPtr<T>;

    /// Read of an immutable field (initialized before the node was linked
    /// in): never flushed, under any policy.
    #[inline]
    fn load_fixed<T: Word>(cell: &PCell<T, Self::B>) -> T {
        cell.load()
    }

    /// Shared store in `critical`: fence before, flush after.
    fn c_store<T: Word>(cell: &PCell<T, Self::B>, value: T);

    /// Shared CAS on a scalar in `critical`: fence before, flush after.
    ///
    /// # Errors
    ///
    /// `Err(actual)` when the cell did not hold `current`.
    fn c_cas<T: Word>(cell: &PCell<T, Self::B>, current: T, new: T) -> Result<T, T>;

    /// Shared CAS on a link in `critical`: fence before, flush after.
    ///
    /// Link CASes are distinguished from scalar CASes because the
    /// link-and-persist policy tags link words with a dirty bit; the expected
    /// and observed values are compared *modulo* that bit.
    ///
    /// # Errors
    ///
    /// `Err(actual)` (dirty bit stripped) when the link did not hold
    /// `current`.
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, Self::B>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>>;

    /// Flush a freshly initialized node's memory (before it is linked in).
    /// No fence: "a process executes flushes after initializing each field,
    /// but only needs to fence once before atomically inserting the new node"
    /// (§4.2) — that fence is the one inside the linking
    /// [`c_cas_link`](Durability::c_cas_link).
    fn persist_new_node(addr: *const u8, len: usize);

    /// Fence before the operation returns its result (Protocol 2, last rule).
    fn before_return();
}

/// No persistence at all: the original lock-free algorithm.
///
/// This is the paper's non-durable baseline ("orig"); it exists so the exact
/// same data-structure code can be benchmarked with and without durability.
#[derive(Debug, Clone, Copy, Default)]
pub struct Volatile;

impl Durability for Volatile {
    type B = Noop;
    const DURABLE: bool = false;

    #[inline(always)]
    fn t_load<T: Word>(cell: &PCell<T, Noop>) -> T {
        cell.load()
    }
    #[inline(always)]
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, Noop>) -> MarkedPtr<T> {
        cell.load()
    }
    #[inline(always)]
    fn ensure_reachable(_addr: *const u8) {}
    #[inline(always)]
    fn make_persistent(_addrs: &[*const u8]) {}
    #[inline(always)]
    fn c_load<T: Word>(cell: &PCell<T, Noop>) -> T {
        cell.load()
    }
    #[inline(always)]
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, Noop>) -> MarkedPtr<T> {
        cell.load()
    }
    #[inline(always)]
    fn c_store<T: Word>(cell: &PCell<T, Noop>, value: T) {
        cell.store(value);
    }
    #[inline(always)]
    fn c_cas<T: Word>(cell: &PCell<T, Noop>, current: T, new: T) -> Result<T, T> {
        cell.compare_exchange(current, new)
    }
    #[inline(always)]
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, Noop>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        cell.compare_exchange(current, new).map(drop)
    }
    #[inline(always)]
    fn persist_new_node(_addr: *const u8, _len: usize) {}
    #[inline(always)]
    fn before_return() {}
}

/// The paper's transformation (§4): nothing persists during the traversal;
/// Protocol 1 persists the traversal's destination; Protocol 2 persists every
/// shared access in the critical method.
#[derive(Debug, Clone, Copy, Default)]
pub struct NvTraverse<B>(PhantomData<fn() -> B>);

impl<B: Backend> Durability for NvTraverse<B> {
    type B = B;
    const DURABLE: bool = true;

    #[inline(always)]
    fn t_load<T: Word>(cell: &PCell<T, B>) -> T {
        // The journey is not persisted.
        cell.load()
    }
    #[inline(always)]
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        cell.load()
    }
    #[inline]
    fn ensure_reachable(addr: *const u8) {
        let _p = obs::phase(obs::Phase::Critical);
        B::flush(addr);
    }
    #[inline]
    fn make_persistent(addrs: &[*const u8]) {
        let _p = obs::phase(obs::Phase::Critical);
        for &a in addrs {
            B::flush(a);
        }
        B::fence();
    }
    #[inline]
    fn c_load<T: Word>(cell: &PCell<T, B>) -> T {
        let _p = obs::phase(obs::Phase::Critical);
        let v = cell.load();
        B::flush(cell.addr());
        v
    }
    #[inline]
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        let _p = obs::phase(obs::Phase::Critical);
        let v = cell.load();
        B::flush(cell.addr());
        v
    }
    #[inline]
    fn c_store<T: Word>(cell: &PCell<T, B>, value: T) {
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        cell.store(value);
        B::flush(cell.addr());
    }
    #[inline]
    fn c_cas<T: Word>(cell: &PCell<T, B>, current: T, new: T) -> Result<T, T> {
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        let r = cell.compare_exchange(current, new);
        B::flush(cell.addr());
        r
    }
    #[inline]
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, B>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        let r = cell.compare_exchange(current, new);
        B::flush(cell.addr());
        r.map(drop)
    }
    #[inline]
    fn persist_new_node(addr: *const u8, len: usize) {
        let _p = obs::phase(obs::Phase::Critical);
        B::flush_range(addr, len);
    }
    #[inline]
    fn before_return() {
        if nvtraverse_pmem::batch::defer_closing_fence() {
            return; // absorbed by the enclosing FenceBatch
        }
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
    }
}

/// The general transformation of Izraelevitz et al. (DISC 2016): a flush and
/// a fence between every two shared-memory instructions, traversal included.
///
/// Correct for *any* linearizable lock-free algorithm, but as the paper
/// measures, 13×–56× slower than NVTraverse on traversal-dominated
/// structures, because the entire journey is persisted.
#[derive(Debug, Clone, Copy, Default)]
pub struct Izraelevitz<B>(PhantomData<fn() -> B>);

impl<B: Backend> Izraelevitz<B> {
    #[inline]
    fn psync(addr: *const u8) {
        B::flush(addr);
        B::fence();
    }
}

impl<B: Backend> Durability for Izraelevitz<B> {
    type B = B;
    const DURABLE: bool = true;

    #[inline]
    fn t_load<T: Word>(cell: &PCell<T, B>) -> T {
        let _p = obs::phase(obs::Phase::Traversal);
        let v = cell.load();
        Self::psync(cell.addr());
        v
    }
    #[inline]
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        let _p = obs::phase(obs::Phase::Traversal);
        let v = cell.load();
        Self::psync(cell.addr());
        v
    }
    #[inline(always)]
    fn ensure_reachable(_addr: *const u8) {
        // Everything was already persisted access-by-access.
    }
    #[inline(always)]
    fn make_persistent(_addrs: &[*const u8]) {}
    #[inline]
    fn c_load<T: Word>(cell: &PCell<T, B>) -> T {
        let _p = obs::phase(obs::Phase::Critical);
        let v = cell.load();
        Self::psync(cell.addr());
        v
    }
    #[inline]
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        let _p = obs::phase(obs::Phase::Critical);
        let v = cell.load();
        Self::psync(cell.addr());
        v
    }
    #[inline]
    fn load_fixed<T: Word>(cell: &PCell<T, B>) -> T {
        // The general transformation has no notion of immutability: it
        // persists after this read like any other. Reads of fixed fields
        // happen during the journey, so they count as traversal traffic.
        let _p = obs::phase(obs::Phase::Traversal);
        let v = cell.load();
        Self::psync(cell.addr());
        v
    }
    #[inline]
    fn c_store<T: Word>(cell: &PCell<T, B>, value: T) {
        let _p = obs::phase(obs::Phase::Critical);
        cell.store(value);
        Self::psync(cell.addr());
    }
    #[inline]
    fn c_cas<T: Word>(cell: &PCell<T, B>, current: T, new: T) -> Result<T, T> {
        let _p = obs::phase(obs::Phase::Critical);
        let r = cell.compare_exchange(current, new);
        Self::psync(cell.addr());
        r
    }
    #[inline]
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, B>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        let _p = obs::phase(obs::Phase::Critical);
        let r = cell.compare_exchange(current, new);
        Self::psync(cell.addr());
        r.map(drop)
    }
    #[inline]
    fn persist_new_node(addr: *const u8, len: usize) {
        let _p = obs::phase(obs::Phase::Critical);
        B::flush_range(addr, len);
        B::fence();
    }
    #[inline(always)]
    fn before_return() {
        if nvtraverse_pmem::batch::defer_closing_fence() {
            return; // absorbed by the enclosing FenceBatch
        }
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
    }
}

/// Link-and-persist (David et al., "Log-Free Concurrent Data Structures",
/// USENIX ATC 2018; also Wang et al., ICDE 2018) — the hand-tuned durable
/// competitor of the paper's §5.3 (the "Log Free" series).
///
/// Every link word carries a *dirty* bit. A modifying CAS installs the new
/// link with the dirty bit set, flushes, and then clears the bit with a
/// second CAS; any reader that observes a dirty link helps: it flushes the
/// word, fences, clears the bit, and proceeds. A clean link is therefore
/// *known persisted* and is never flushed again — saving flushes under
/// contention at the price of one extra CAS per flush, which is exactly the
/// trade-off the paper's DRAM-machine figures explore.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkPersist<B>(PhantomData<fn() -> B>);

impl<B: Backend> LinkPersist<B> {
    /// The shared read protocol: load; if dirty, persist and help clean.
    /// `at` tags the helping flush+fence with the phase of the read that
    /// triggered it (a dirty link seen mid-traversal is traversal traffic).
    #[inline]
    fn load_link_helping<T>(cell: &PCell<MarkedPtr<T>, B>, at: obs::Phase) -> MarkedPtr<T> {
        let v = cell.load();
        if v.is_dirty() {
            let _p = obs::phase(at);
            B::flush(cell.addr());
            B::fence();
            // Best-effort: if it fails someone else cleaned (or changed) it.
            let _ = cell.compare_exchange(v, v.without_dirty());
            v.without_dirty()
        } else {
            v
        }
    }
}

impl<B: Backend> Durability for LinkPersist<B> {
    type B = B;
    const DURABLE: bool = true;

    #[inline]
    fn t_load<T: Word>(cell: &PCell<T, B>) -> T {
        cell.load()
    }
    #[inline]
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        Self::load_link_helping(cell, obs::Phase::Traversal)
    }
    #[inline(always)]
    fn ensure_reachable(_addr: *const u8) {
        // Every link the traversal followed was persisted on sight.
    }
    #[inline(always)]
    fn make_persistent(_addrs: &[*const u8]) {}
    #[inline]
    fn c_load<T: Word>(cell: &PCell<T, B>) -> T {
        let _p = obs::phase(obs::Phase::Critical);
        let v = cell.load();
        B::flush(cell.addr());
        v
    }
    #[inline]
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        Self::load_link_helping(cell, obs::Phase::Critical)
    }
    #[inline]
    fn c_store<T: Word>(cell: &PCell<T, B>, value: T) {
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        cell.store(value);
        B::flush(cell.addr());
    }
    #[inline]
    fn c_cas<T: Word>(cell: &PCell<T, B>, current: T, new: T) -> Result<T, T> {
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        let r = cell.compare_exchange(current, new);
        B::flush(cell.addr());
        r
    }
    #[inline]
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, B>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        debug_assert!(!current.is_dirty() && !new.is_dirty());
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
        loop {
            // The stored word may carry the dirty bit; compare modulo it.
            let observed = cell.load();
            if observed.without_dirty() != current {
                // Make sure the failure we report is persisted before the
                // caller acts on it (same help rule as reads).
                if observed.is_dirty() {
                    B::flush(cell.addr());
                    B::fence();
                    let _ = cell.compare_exchange(observed, observed.without_dirty());
                }
                return Err(observed.without_dirty());
            }
            match cell.compare_exchange(observed, new.with_dirty()) {
                Ok(_) => {
                    B::flush(cell.addr());
                    // Clear the dirty bit; failure means a helper already did.
                    let _ = cell.compare_exchange(new.with_dirty(), new);
                    return Ok(());
                }
                Err(_) => continue,
            }
        }
    }
    #[inline]
    fn persist_new_node(addr: *const u8, len: usize) {
        let _p = obs::phase(obs::Phase::Critical);
        B::flush_range(addr, len);
    }
    #[inline]
    fn before_return() {
        if nvtraverse_pmem::batch::defer_closing_fence() {
            return; // absorbed by the enclosing FenceBatch
        }
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
    }
}

/// SOFT-style minimal flushing (Zuriel et al., "Efficient Lock-Free Durable
/// Sets", OOPSLA 2019): link words are **volatile** — never flushed, never
/// fenced — and the only thing an operation persists is the node's validity
/// header, reaching the one-flush-per-update floor the hardware can't beat.
///
/// The division of labour differs from every other policy here: durability
/// lives in per-node *state* (a sealed/tombstoned validity word), not in the
/// link structure, and recovery rebuilds all links from the surviving valid
/// nodes. Consequently this policy is only correct for structures designed
/// for it (`nvtraverse_structures::soft_list`, `soft_hash`), which route
/// exactly one persistent word (or one fresh node header) through the
/// flushing methods per operation:
///
/// * traversal *and* critical reads are plain loads — SOFT reads are free;
/// * Protocol 1 ([`ensure_reachable`](Durability::ensure_reachable) /
///   [`make_persistent`](Durability::make_persistent)) is empty — there is
///   no persistent link structure to make reachable;
/// * [`c_cas_link`](Durability::c_cas_link) is a plain CAS: links are
///   volatile;
/// * [`c_cas`](Durability::c_cas) / [`c_store`](Durability::c_store) flush
///   the written word (the validity transition) with **no** pre-fence — the
///   single fence of the operation is [`before_return`](Durability::before_return);
/// * [`persist_new_node`](Durability::persist_new_node) flushes the fresh
///   node's validity header (the insert's one flush).
#[derive(Debug, Clone, Copy, Default)]
pub struct Soft<B>(PhantomData<fn() -> B>);

impl<B: Backend> Durability for Soft<B> {
    type B = B;
    const DURABLE: bool = true;

    #[inline(always)]
    fn t_load<T: Word>(cell: &PCell<T, B>) -> T {
        cell.load()
    }
    #[inline(always)]
    fn t_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        cell.load()
    }
    #[inline(always)]
    fn ensure_reachable(_addr: *const u8) {
        // No persistent links: nothing to reconnect.
    }
    #[inline(always)]
    fn make_persistent(_addrs: &[*const u8]) {}
    #[inline(always)]
    fn c_load<T: Word>(cell: &PCell<T, B>) -> T {
        // Unlike NvTraverse, critical reads are free too: correctness never
        // depends on a read value being persistent, only on validity words.
        cell.load()
    }
    #[inline(always)]
    fn c_load_link<T>(cell: &PCell<MarkedPtr<T>, B>) -> MarkedPtr<T> {
        cell.load()
    }
    #[inline]
    fn c_store<T: Word>(cell: &PCell<T, B>, value: T) {
        let _p = obs::phase(obs::Phase::Critical);
        cell.store(value);
        B::flush(cell.addr());
    }
    #[inline]
    fn c_cas<T: Word>(cell: &PCell<T, B>, current: T, new: T) -> Result<T, T> {
        // The validity transition (seal → tombstone): CAS + flush, fence
        // deferred to `before_return` — the remove's single fence.
        let _p = obs::phase(obs::Phase::Critical);
        let r = cell.compare_exchange(current, new);
        B::flush(cell.addr());
        r
    }
    #[inline(always)]
    fn c_cas_link<T>(
        cell: &PCell<MarkedPtr<T>, B>,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
    ) -> Result<(), MarkedPtr<T>> {
        // Links are volatile state, rebuilt by recovery: plain CAS.
        cell.compare_exchange(current, new).map(drop)
    }
    #[inline]
    fn persist_new_node(addr: *const u8, len: usize) {
        // The insert's one flush: the fresh node's validity header. The
        // SOFT structures pass only the persistent header prefix, not the
        // (volatile) link word.
        let _p = obs::phase(obs::Phase::Critical);
        B::flush_range(addr, len);
    }
    #[inline]
    fn before_return() {
        if nvtraverse_pmem::batch::defer_closing_fence() {
            return; // absorbed by the enclosing FenceBatch
        }
        let _p = obs::phase(obs::Phase::Critical);
        fence_if_pending::<B>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{stats, Count};

    type CB = Count<Noop>;

    fn counted<R>(f: impl FnOnce() -> R) -> (stats::Snapshot, R) {
        let _guard = test_lock();
        let before = stats::snapshot();
        let r = f();
        (stats::snapshot().since(before), r)
    }

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn volatile_never_flushes_or_fences() {
        // Volatile is pinned to the Noop backend, so by construction it
        // cannot flush; this test documents DURABLE = false instead.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(!Volatile::DURABLE);
        }
        let c: PCell<u64, Noop> = PCell::new(1);
        assert_eq!(Volatile::c_load(&c), 1);
        assert_eq!(Volatile::c_cas(&c, 1, 2), Ok(1));
    }

    #[test]
    fn nvtraverse_traversal_reads_are_free() {
        let c: PCell<u64, CB> = PCell::new(1);
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::null());
        let (d, _) = counted(|| {
            let _ = NvTraverse::<CB>::t_load(&c);
            let _ = NvTraverse::<CB>::t_load_link(&l);
            let _ = NvTraverse::<CB>::load_fixed(&c);
        });
        assert_eq!((d.flushes, d.fences), (0, 0), "the journey must be free");
    }

    #[test]
    fn nvtraverse_critical_read_flushes_once() {
        let c: PCell<u64, CB> = PCell::new(1);
        let (d, _) = counted(|| NvTraverse::<CB>::c_load(&c));
        assert_eq!((d.flushes, d.fences), (1, 0));
    }

    #[test]
    fn nvtraverse_cas_pre_fence_is_elided_without_pending_flushes() {
        let c: PCell<u64, CB> = PCell::new(1);
        // No flush in flight on this thread: the pre-fence is a no-op and
        // is elided, leaving only the post-CAS flush.
        let (d, r) = counted(|| NvTraverse::<CB>::c_cas(&c, 1, 2));
        assert_eq!(r, Ok(1));
        assert_eq!((d.flushes, d.fences), (1, 0));
    }

    #[test]
    fn nvtraverse_cas_fences_before_when_a_flush_is_pending() {
        let c: PCell<u64, CB> = PCell::new(1);
        let (d, r) = counted(|| {
            // The critical read's flush is still unfenced when the CAS
            // runs, so the pre-fence must be issued to persist it.
            let _ = NvTraverse::<CB>::c_load(&c);
            NvTraverse::<CB>::c_cas(&c, 1, 2)
        });
        assert_eq!(r, Ok(1));
        assert_eq!((d.flushes, d.fences), (2, 1));
    }

    #[test]
    fn nvtraverse_make_persistent_is_one_fence() {
        let a: PCell<u64, CB> = PCell::new(1);
        let b: PCell<u64, CB> = PCell::new(2);
        let (d, _) = counted(|| {
            NvTraverse::<CB>::ensure_reachable(a.addr());
            NvTraverse::<CB>::make_persistent(&[a.addr(), b.addr()]);
        });
        assert_eq!((d.flushes, d.fences), (3, 1));
    }

    #[test]
    fn izraelevitz_persists_every_traversal_read() {
        let c: PCell<u64, CB> = PCell::new(1);
        let (d, _) = counted(|| {
            let _ = Izraelevitz::<CB>::t_load(&c);
            let _ = Izraelevitz::<CB>::t_load(&c);
            let _ = Izraelevitz::<CB>::load_fixed(&c);
        });
        assert_eq!((d.flushes, d.fences), (3, 3), "the journey costs full price");
    }

    #[test]
    fn izraelevitz_skips_protocol_one() {
        let a: PCell<u64, CB> = PCell::new(1);
        let (d, _) = counted(|| {
            Izraelevitz::<CB>::ensure_reachable(a.addr());
            Izraelevitz::<CB>::make_persistent(&[a.addr()]);
        });
        assert_eq!((d.flushes, d.fences), (0, 0));
    }

    #[test]
    fn link_persist_clean_link_reads_are_free() {
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::null());
        let (d, _) = counted(|| LinkPersist::<CB>::t_load_link(&l));
        assert_eq!((d.flushes, d.fences), (0, 0));
    }

    #[test]
    fn link_persist_dirty_link_read_helps_and_cleans() {
        let node = Box::into_raw(Box::new(1u64));
        let dirty = MarkedPtr::new(node).with_dirty();
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(dirty);
        let (d, v) = counted(|| LinkPersist::<CB>::t_load_link(&l));
        assert_eq!(v, MarkedPtr::new(node), "dirty bit must be stripped");
        assert!(!l.load().is_dirty(), "reader must clean the link");
        assert_eq!((d.flushes, d.fences), (1, 1));
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn link_persist_cas_installs_then_cleans() {
        let node = Box::into_raw(Box::new(1u64));
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::null());
        let (d, r) =
            counted(|| LinkPersist::<CB>::c_cas_link(&l, MarkedPtr::null(), MarkedPtr::new(node)));
        assert!(r.is_ok());
        let stored = l.load();
        assert_eq!(stored, MarkedPtr::new(node));
        assert!(!stored.is_dirty());
        assert_eq!(d.flushes, 1);
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn link_persist_cas_succeeds_against_dirty_current() {
        // Another thread installed `a` but hasn't cleaned it yet; our CAS
        // expecting clean `a` must still succeed (comparison modulo dirty).
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::new(a).with_dirty());
        let r = {
            let _g = test_lock();
            LinkPersist::<CB>::c_cas_link(&l, MarkedPtr::new(a), MarkedPtr::new(b))
        };
        assert!(r.is_ok());
        assert_eq!(l.load(), MarkedPtr::new(b));
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn link_persist_cas_failure_reports_clean_value() {
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::new(a).with_dirty());
        let r = {
            let _g = test_lock();
            LinkPersist::<CB>::c_cas_link(&l, MarkedPtr::new(b), MarkedPtr::new(b))
        };
        assert_eq!(r, Err(MarkedPtr::new(a)));
        assert!(!l.load().is_dirty(), "failed CAS must still help clean");
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn soft_reads_and_links_are_free() {
        let c: PCell<u64, CB> = PCell::new(1);
        let l: PCell<MarkedPtr<u64>, CB> = PCell::new(MarkedPtr::null());
        let (d, _) = counted(|| {
            let _ = Soft::<CB>::t_load(&c);
            let _ = Soft::<CB>::t_load_link(&l);
            let _ = Soft::<CB>::c_load(&c);
            let _ = Soft::<CB>::c_load_link(&l);
            Soft::<CB>::ensure_reachable(c.addr());
            Soft::<CB>::make_persistent(&[c.addr()]);
            let _ = Soft::<CB>::c_cas_link(&l, MarkedPtr::null(), MarkedPtr::null());
        });
        assert_eq!(
            (d.flushes, d.fences),
            (0, 0),
            "SOFT persists nothing but validity words"
        );
    }

    #[test]
    fn soft_update_shape_is_one_flush_one_fence() {
        // The whole persistence cost of a SOFT update: one flush of the
        // validity word (or fresh header) + the closing fence.
        let v: PCell<u64, CB> = PCell::new(1);
        let (ins, _) = counted(|| {
            Soft::<CB>::persist_new_node(v.addr(), 8);
            Soft::<CB>::before_return();
        });
        assert_eq!((ins.flushes, ins.fences), (1, 1));
        let (rem, r) = counted(|| {
            let r = Soft::<CB>::c_cas(&v, 1, 2);
            Soft::<CB>::before_return();
            r
        });
        assert_eq!(r, Ok(1));
        assert_eq!((rem.flushes, rem.fences), (1, 1));
    }

    #[test]
    fn before_return_defers_inside_a_fence_batch() {
        use nvtraverse_pmem::batch::FenceBatch;
        let (d, _) = counted(|| {
            let b = FenceBatch::<CB>::begin();
            for _ in 0..4 {
                NvTraverse::<CB>::before_return();
                Soft::<CB>::before_return();
            }
            assert_eq!(b.close(), 8, "every closing fence must defer");
        });
        assert_eq!(d.fences, 1, "eight deferred closing fences, one sfence");

        // Outside a batch the protocols are unchanged: after a critical
        // write (flush pending) the closing fence is issued immediately.
        let c: PCell<u64, CB> = PCell::new(0);
        let (d, _) = counted(|| {
            NvTraverse::<CB>::c_store(&c, 1);
            NvTraverse::<CB>::before_return();
        });
        assert_eq!(d.fences, 1);

        // A read-only operation leaves nothing to persist, so the closing
        // fence is elided entirely.
        let (d, _) = counted(NvTraverse::<CB>::before_return);
        assert_eq!(d.fences, 0);
    }

    #[test]
    fn policy_flush_counts_per_op_shape() {
        // The quantity the whole paper is about: per critical-section CAS,
        // NVT pays 1 flush + 1 fence; Izraelevitz pays the same *per access*,
        // traversal included. Simulate a 10-step traversal + 1 CAS.
        let cells: Vec<PCell<u64, CB>> = (0..10).map(PCell::new).collect();
        let target: PCell<u64, CB> = PCell::new(0);

        let (nvt, _) = counted(|| {
            for c in &cells {
                let _ = NvTraverse::<CB>::t_load(c);
            }
            NvTraverse::<CB>::make_persistent(&[cells[9].addr()]);
            let _ = NvTraverse::<CB>::c_cas(&target, 0, 1);
            NvTraverse::<CB>::before_return();
        });
        let (izr, _) = counted(|| {
            for c in &cells {
                let _ = Izraelevitz::<CB>::t_load(c);
            }
            Izraelevitz::<CB>::make_persistent(&[cells[9].addr()]);
            let _ = Izraelevitz::<CB>::c_cas(&target, 1, 2);
            Izraelevitz::<CB>::before_return();
        });
        assert!(
            nvt.flushes * 3 < izr.flushes,
            "NVT {nvt:?} should flush far less than Izraelevitz {izr:?}"
        );
    }
}
