//! The uniform set/map interface all evaluated structures implement, plus
//! the pool-reopen entry point for structures that live in a persistent
//! pool file.
//!
//! The paper evaluates five set implementations (list, hash table, two BSTs,
//! skiplist) under a common harness (§5.1: prefill to half the key range,
//! uniform keys, insert/delete/lookup mixes). [`DurableSet`] is that common
//! surface, so benchmarks, stress tests and crash tests are written once.
//!
//! [`PoolAttach`] + [`PooledHandle`] add the cross-process lifecycle for
//! *every* traversal structure — set-shaped or not (queue, stack, priority
//! queue): create a structure inside a `nvtraverse-pool` file, find it again
//! by name after a restart (`Pool::open` → root lookup → `recover()`), and
//! keep the pool mapped for as long as the structure is in use.
//! [`PooledSet`] is the set-flavoured alias kept from when only the sets
//! were pool-instantiable. [`PoolTrace`] is the reachability half of that
//! lifecycle: it lets `Pool::open`'s mark-sweep recovery GC walk each
//! root's persistent node graph so blocks stranded by a crash are swept
//! back to the pool's free lists before the structure attaches.

use nvtraverse_pool::Pool;
use std::io;
use std::mem::ManuallyDrop;
use std::ops::Deref;
use std::path::Path;

/// One set operation, used as the driver input for set-shaped structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp<K, V> {
    /// Insert `(key, value)`; fails if the key is present.
    Insert(K, V),
    /// Remove `key`; fails if absent.
    Remove(K),
    /// Look up `key`.
    Get(K),
}

/// A concurrent, optionally durable, set/map with 64-bit keys and values.
///
/// `insert`/`remove`/`get` are linearizable (and durably linearizable for
/// durable policies). `len` and `recover` are *not* concurrent operations:
/// they must be called in quiescent states (testing, and the post-crash
/// recovery phase, respectively).
pub trait DurableSet<K, V>: Send + Sync {
    /// Inserts `key → value`. Returns `false` if the key was already present
    /// (set semantics: the existing value is kept, as in the paper's C++
    /// implementations).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key`, returning `true` if it was present.
    fn remove(&self, key: K) -> bool;

    /// Returns the value associated with `key`, if any.
    fn get(&self, key: K) -> Option<V>;

    /// Returns whether `key` is present.
    fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys present. Quiescent only.
    fn len(&self) -> usize;

    /// Whether the set is empty. Quiescent only.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery (paper §4 "Recovery"): runs the structure's
    /// `disconnect(root)` (Supplement 1) to finish physically deleting every
    /// marked node, and rebuilds any volatile auxiliary parts (e.g. skiplist
    /// towers). A no-op for volatile policies.
    ///
    /// Must be called before any other operation after a crash, and only
    /// then (§2: "Processes call the recovery operation before any other
    /// operation after a crash event").
    fn recover(&self);
}

/// A structure that can live inside a persistent [`Pool`] and be found
/// again, by name, after the process restarts.
///
/// Every structure in `nvtraverse-structures` implements this — the sets
/// (`HarrisList`, `HashMapDs`, `SkipList`, `EllenBst`, `NmBst`) *and* the
/// non-set shapes (`MsQueue`, `TreiberStack`, `PriorityQueue`), which is the
/// paper's §3 generality claim made operational: any traversal data
/// structure, not just sets, survives a crash when its core is persistent
/// and its auxiliary parts are rebuilt on recovery.
///
/// # Lifecycle
///
/// ```text
/// first process            crash / exit           any later process
/// ─────────────            ────────────           ─────────────────
/// Pool::create ─┐
///               ├─ create_in_pool(pool, "name")   Pool::open ─┐
/// operations …  │      (root registered)                      ├─ attach_to_pool(pool, "name")
///               └─ [SIGKILL / power loss / drop]              ├─ recover_attached()
///                                                             └─ operations …
/// ```
///
/// [`PooledHandle`] packages both columns into single calls
/// ([`PooledHandle::create`] / [`PooledHandle::open`]). Implementations
/// register their root node in the pool's root registry at creation and
/// rebuild their in-memory handle from that root on
/// [`PoolAttach::attach_to_pool`].
///
/// # What the root must encode
///
/// Everything volatile must be *recomputable* from what the root reaches:
/// the skiplist registers only its head tower and rebuilds every upper
/// level from the bottom list; the queue registers its anchor and
/// recomputes the tail shortcut by walking from the head; the hash table
/// registers a persistent bucket-offset table and rebuilds its volatile
/// `Box<[HarrisList]>` handle from it. See `ARCHITECTURE.md`'s
/// per-structure recovery table.
pub trait PoolAttach: Sized {
    /// Builds a fresh, empty instance whose every node lives in `pool`, and
    /// registers its root under `name`.
    ///
    /// Installs `pool` as the process-wide allocation target (the
    /// `libvmmalloc` model, paper §5.1): all subsequent node allocations in
    /// this process are served from the pool.
    ///
    /// # Errors
    ///
    /// Fails when the root registry is full or `name` is invalid.
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self>;

    /// Re-attaches to the instance previously registered under `name`.
    ///
    /// Returns `None` when the root is absent or the pool was
    /// [rebased](Pool::is_rebased) (embedded absolute pointers would be
    /// invalid). Also installs `pool` as the allocation target.
    ///
    /// # Safety
    ///
    /// The root must have been registered by `create_in_pool` of the *same*
    /// concrete type (same key/value/durability parameters): the registry
    /// stores untyped offsets.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self>;

    /// Runs the structure's post-crash recovery (the `disconnect(root)` pass
    /// of paper §4, plus any volatile-auxiliary rebuild). Set-shaped
    /// structures forward [`DurableSet::recover`]; queue/stack/priority
    /// queue forward their inherent `recover` — either way, pooled
    /// lifecycles need no key/value type annotations.
    fn recover_attached(&self);

    /// The EBR collector this structure retires nodes into.
    ///
    /// [`PooledHandle`] drains it before letting go of the pool: nodes
    /// retired but not yet reclaimed hold allocated pool blocks, and
    /// without a drain every close would leak them in the file until the
    /// next open's recovery GC sweeps them.
    fn collector_of(&self) -> &nvtraverse_ebr::Collector;
}

/// A [`PoolAttach`] structure whose persistent node graph can be walked
/// from its root — the mark phase of the pool's root-driven mark-sweep
/// recovery GC (see `nvtraverse_pool::gc`).
///
/// `Pool::open` cannot know which concrete structure type each registered
/// root belongs to: the root registry stores untyped offsets. This trait
/// closes the gap — [`PooledHandle`] registers a type-erased shim of
/// [`PoolTrace::trace`] under the root's name before every open (and
/// [`register_pool_tracer`] does the same for roots attached by hand), so
/// open-time recovery can prove which allocated blocks are reachable and
/// sweep the rest back to the free lists.
///
/// # Contract for implementations
///
/// `trace` runs during `Pool::open`, **before** `attach_to_pool` and
/// `recover()`, single-threaded, on a quiescent heap whose block headers
/// have all been verified. An implementation must
/// [`mark`](nvtraverse_pool::Marker::mark) every block that the structure's
/// recovery pass — or any later operation — may reach from `root`:
///
/// * **Follow marked / logically-deleted links.** A reachable-but-marked
///   node is still linked into the structure; `recover()` will trim it and
///   retire it through the collector, so the sweep must not free it first.
///   Walk exactly the links `recover()` walks.
/// * **Do not follow volatile auxiliary state.** Links that recovery
///   rebuilds without reading (skiplist tower levels, the queue's tail
///   shortcut) may be stale after a crash; tracing through them would at
///   best mark garbage and at worst chase dangling pointers. The
///   [`Marker`](nvtraverse_pool::Marker) validates every pointer against
///   the block headers, but validation cannot turn a wrong walk into a
///   right one.
/// * **Keep operation descriptors recovery dereferences.** The Ellen BST's
///   helping recovery reads `Info` records out of non-`CLEAN` update words
///   and then dereferences the nodes they name (including a pending
///   insert's not-yet-linked subtree); all of those must be marked.
///
/// Everything allocated but unmarked after all roots are traced is swept.
/// An implementation that under-marks therefore frees live data — which is
/// why the trait is `unsafe` — while one that over-marks (conservatively
/// keeping, say, a CLEAN descriptor) merely delays reclamation of a
/// bounded set of blocks to the structure's own retire path.
///
/// # Safety
///
/// Implementors assert that `trace`, given a root created by
/// `create_in_pool` of this exact type, marks a superset of the blocks any
/// post-recovery execution can reach, dereferencing only memory valid
/// under the structure's invariants.
///
/// # Example: leaked blocks are reclaimed at the next open
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::{DurableSet, PooledHandle};
/// use nvtraverse::pmem::MmapBackend;
/// use nvtraverse_structures::list::HarrisList;
///
/// type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
/// let path = std::env::temp_dir().join(format!("doc-trace-{}.pool", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
///
/// let list = PooledHandle::<List>::create(&path, 4 << 20, "gc-demo")?;
/// for k in 0..64u64 { list.insert(k, k); }
/// for k in 0..64u64 { list.remove(k); }
/// // Strand a block on purpose: allocated, reachable from no root — the
/// // durable state a crash mid-operation (or mid-EBR) leaves behind.
/// let _orphan = list.pool().alloc(64, 8).unwrap();
/// list.close()?;
///
/// // PooledHandle::open registers List's tracer for "gc-demo", so the
/// // open-time mark-sweep runs and reclaims exactly the orphan (the clean
/// // close already drained every retired node).
/// let list = PooledHandle::<List>::open(&path, "gc-demo")?;
/// let report = list.pool().recovery_report();
/// assert!(report.gc_ran);
/// assert_eq!(report.reclaimed_blocks, 1);
/// assert!(report.reclaimed_bytes >= 64);
/// # list.close()?; std::fs::remove_file(&path)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub unsafe trait PoolTrace: PoolAttach {
    /// Marks every block reachable from `root` (a payload pointer to this
    /// structure's registered root block) in `marker`.
    ///
    /// # Safety
    ///
    /// `root` must be the root of a structure created by
    /// `Self::create_in_pool`, in a pool mapped at its preferred base,
    /// quiescent, with verified block headers — the exact state
    /// `Pool::open` recovery provides.
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>);
}

/// Registers `S`'s [`PoolTrace::trace`] as the recovery-GC tracer for the
/// root named `name` of the pool file at `pool_path` (newest registration
/// wins; the registry is scoped per pool path, so unrelated pools reusing
/// a root name are unaffected).
///
/// [`PooledHandle`] calls this automatically; call it by hand before
/// `Pool::open` for roots you attach directly with
/// [`PoolAttach::attach_to_pool`] — the open-time GC only runs when
/// *every* root name in the pool has a tracer.
///
/// Returns the tracer this registration displaced, if any — callers whose
/// subsequent attach fails should restore it (as [`PooledHandle::open`]
/// does) rather than leave their own assertion behind.
///
/// # Safety
///
/// The caller asserts that the root registered under `name` in the pool at
/// `pool_path` was created by `S::create_in_pool` (same concrete type
/// parameters) — the same contract [`PoolAttach::attach_to_pool`]
/// requires. Tracing a root as the wrong type misreads pool memory and can
/// sweep live blocks.
pub unsafe fn register_pool_tracer<S: PoolTrace>(
    pool_path: impl AsRef<Path>,
    name: &str,
) -> Option<nvtraverse_pool::TraceFn> {
    // SAFETY: forwarded to the caller (identical contract).
    unsafe { nvtraverse_pool::register_tracer(pool_path.as_ref(), name, trace_shim::<S>) }
}

/// Undoes a [`register_pool_tracer`] whose attach failed: puts back the
/// displaced tracer, or removes the entry when there was none.
fn restore_tracer(path: &Path, name: &str, prev: Option<nvtraverse_pool::TraceFn>) {
    match prev {
        // SAFETY: re-asserting exactly what the previous registrant
        // (whose registration we displaced) had already asserted.
        Some(f) => {
            unsafe { nvtraverse_pool::register_tracer(path, name, f) };
        }
        None => nvtraverse_pool::unregister_tracer(path, name),
    }
}

/// The type-erased shim stored in the pool's tracer registry.
unsafe fn trace_shim<S: PoolTrace>(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
    // SAFETY: forwarded from the registry's per-name type contract.
    unsafe { S::trace(root, marker) }
}

/// Drains `collector` fully: retired-but-unreclaimed nodes are freed back
/// to the heap that issued them (for a pooled structure, the pool file).
///
/// Three passes because the epoch advance needs two ticks to age out the
/// newest bags, plus one to collect them. [`PooledHandle`] calls this on
/// close/drop; for a structure created directly via
/// [`PoolAttach::create_in_pool`], prefer wrapping it with
/// [`PooledHandle::adopt`] (which also drains) over managing the drain and
/// `std::mem::forget` by hand.
pub fn drain_collector(collector: &nvtraverse_ebr::Collector) {
    for _ in 0..3 {
        collector.synchronize();
    }
}

/// Owning handle for a pool-resident structure: the pool mapping plus the
/// attached structure, with the right drop order and **no node teardown**.
///
/// Dropping a structure normally frees all of its nodes — exactly wrong for
/// one that lives in a pool and must be found again on the next open.
/// `PooledHandle` therefore never runs the structure's destructor; dropping
/// the handle just unmaps the pool (after an `msync`).
///
/// This is the paper's §2 lifecycle as an API: *"Processes call the recovery
/// operation before any other operation after a crash event"* —
/// [`PooledHandle::open`] performs exactly `Pool::open` → root lookup →
/// `recover()` before handing the structure out.
///
/// # Worked example: create → (crash) → reopen
///
/// The first block below plays the role of the process that dies; the
/// second is the process that comes back up. After a real `SIGKILL`
/// the reopen path is byte-for-byte the same `open` call — the only
/// difference is that `recover()` then has marked nodes or stale volatile
/// shortcuts to repair (exercised for every structure in
/// `tests/crash_process.rs`).
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::{DurableSet, PooledHandle};
/// use nvtraverse::pmem::MmapBackend;
/// use nvtraverse_structures::list::HarrisList;
///
/// type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
///
/// let path = std::env::temp_dir().join(format!("doc-pooled-{}.pool", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
///
/// // "First process": create a pool file holding a named list, mutate it,
/// // and let go. `close` syncs the mapping; a crash instead of a close
/// // loses at most the in-flight operation (durable linearizability).
/// let list = PooledHandle::<List>::create(&path, 4 << 20, "accounts")?;
/// assert!(list.insert(7, 700));
/// assert!(list.insert(8, 800));
/// assert!(list.remove(8));
/// list.close()?;
///
/// // "Second process": Pool::open → root lookup → recover(), in one call.
/// let list = PooledHandle::<List>::open(&path, "accounts")?;
/// assert_eq!(list.get(7), Some(700));
/// assert_eq!(list.get(8), None, "removes are as durable as inserts");
/// assert!(list.insert(9, 900), "recovered structure is fully usable");
/// list.close()?;
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct PooledHandle<S: PoolAttach> {
    inner: ManuallyDrop<S>,
    pool: Pool,
    /// Set by `close()` so Drop does not repeat the collector drain.
    drained_on_close: bool,
}

/// The set-flavoured name [`PooledHandle`] grew out of, kept as an alias:
/// existing code (and the paper's framing, where the evaluated structures
/// are sets) reads naturally with it, while queue/stack lifecycles use
/// [`PooledHandle`] directly.
pub type PooledSet<S> = PooledHandle<S>;

impl<S: PoolTrace> PooledHandle<S> {
    /// Creates `path` as a new pool of `capacity` bytes holding a fresh
    /// structure registered under `name`.
    ///
    /// Also registers `S`'s recovery-GC tracer for `name`
    /// ([`register_pool_tracer`]), so later opens in this process can
    /// mark-sweep the pool.
    ///
    /// # Errors
    ///
    /// Fails if the file exists or pool creation/registration fails.
    pub fn create(path: impl AsRef<Path>, capacity: u64, name: &str) -> io::Result<Self> {
        let path = path.as_ref();
        // Creation never runs the GC, so the tracer is registered only
        // after the pool exists — a create that fails against somebody
        // else's pool file must not leave a tracer asserting a type that
        // pool's root never had.
        let pool = Pool::create(path, capacity)?;
        // SAFETY: the root named `name` is created right below by this very
        // type, which is exactly the tracer registration contract.
        let prev = unsafe { register_pool_tracer::<S>(path, name) };
        let inner = match S::create_in_pool(&pool, name) {
            Ok(inner) => inner,
            Err(e) => {
                // The root was never registered: retract the assertion.
                restore_tracer(path, name, prev);
                return Err(e);
            }
        };
        Ok(PooledHandle {
            inner: ManuallyDrop::new(inner),
            pool,
            drained_on_close: false,
        })
    }

    /// Reopens the pool at `path`, attaches to the structure registered
    /// under `name`, and runs its recovery.
    ///
    /// `S`'s recovery-GC tracer is registered for `name` *before* the pool
    /// opens, so when every other root of the pool also has a tracer (the
    /// single-root case trivially, multi-root pools via
    /// [`register_pool_tracer`] or [`PooledHandle::adopt`]), the open runs
    /// the mark-sweep GC and reclaims every block a previous crash
    /// stranded — see `RecoveryReport::reclaimed_blocks`.
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot be opened, was rebased, or holds no root
    /// named `name`.
    pub fn open(path: impl AsRef<Path>, name: &str) -> io::Result<Self> {
        let path = path.as_ref();
        // SAFETY: attach_to_pool below requires the root to be of type `S`;
        // registering S's tracer for it is the same assertion, made before
        // Pool::open so the recovery GC can use it. A failed open restores
        // the previous registration: an open that could not attach must
        // not leave its own type assertion behind (nor delete one a live
        // handle legitimately installed).
        let prev = unsafe { register_pool_tracer::<S>(path, name) };
        let attempt: io::Result<Self> = (|| {
            let pool = Pool::open(path)?;
            // SAFETY: deferred to the caller's choice of `S` — see PoolAttach.
            let inner = unsafe { S::attach_to_pool(&pool, name) }.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    if pool.is_rebased() {
                        format!("pool was rebased; absolute pointers for root {name:?} are invalid")
                    } else {
                        format!("pool has no root named {name:?}")
                    },
                )
            })?;
            inner.recover_attached();
            Ok(PooledHandle {
                inner: ManuallyDrop::new(inner),
                pool,
                drained_on_close: false,
            })
        })();
        if attempt.is_err() {
            restore_tracer(path, name, prev);
        }
        attempt
    }

    /// [`PooledHandle::open`] if `path` holds the named structure, otherwise
    /// creates what is missing — the restart-loop entry point.
    ///
    /// Heals both interrupted-create states: a pool file whose creation
    /// never completed (no magic) is recreated by
    /// [`Pool::open_or_create`], and a valid pool whose root named `name`
    /// was never registered (crash between pool creation and root
    /// registration) gets a fresh structure created in it.
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot be opened/created or was rebased.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        capacity: u64,
        name: &str,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        if !path.exists() {
            return Self::create(path, capacity, name);
        }
        // SAFETY: same contract as in `open` — the root is attached (or
        // created) as `S` right below; restored on failure.
        let prev = unsafe { register_pool_tracer::<S>(path, name) };
        let attempt: io::Result<Self> = (|| {
            let pool = Pool::open_or_create(path, capacity)?;
            // SAFETY: deferred to the caller's choice of `S` — see PoolAttach.
            let inner = match unsafe { S::attach_to_pool(&pool, name) } {
                Some(inner) => {
                    inner.recover_attached();
                    inner
                }
                None if !pool.is_rebased() => {
                    // The pool is healthy but the root was never registered:
                    // finish the interrupted creation.
                    S::create_in_pool(&pool, name)?
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "pool was rebased; absolute pointers for root {name:?} are invalid"
                        ),
                    ));
                }
            };
            Ok(PooledHandle {
                inner: ManuallyDrop::new(inner),
                pool,
                drained_on_close: false,
            })
        })();
        if attempt.is_err() {
            restore_tracer(path, name, prev);
        }
        attempt
    }

    /// Wraps an already-created or already-attached structure into a
    /// handle — for *secondary* roots sharing one open pool, where
    /// [`PooledHandle::create`]/[`PooledHandle::open`] (which own the pool
    /// mapping) don't fit. `name` is the root name the structure was
    /// created or attached under.
    ///
    /// The structure gains the same guarantees as a primary one: its
    /// destructor will never run — **including on panic unwind**, where a
    /// bare structure's drop would free live pool nodes and destroy the
    /// file's contents — and retired nodes are drained back to the pool
    /// before the handle lets go. Adoption also registers `S`'s
    /// recovery-GC tracer for `name`, so the *next* open of this pool in
    /// this process knows how to trace the secondary root (the open-time
    /// mark-sweep needs a tracer for every root).
    ///
    /// When adopting a freshly [attached](PoolAttach::attach_to_pool)
    /// structure, run [`PoolAttach::recover_attached`] first (as
    /// [`PooledHandle::open`] does).
    ///
    /// # Panics
    ///
    /// Panics when `pool` has no root named `name` — the structure being
    /// adopted cannot have been created or attached under that name, so
    /// registering its tracer there would poison the next open's GC.
    pub fn adopt(pool: &Pool, inner: S, name: &str) -> Self {
        assert!(
            pool.root(name).is_some(),
            "adopt: pool has no root named {name:?} — wrong name for the adopted structure"
        );
        // SAFETY: the caller created/attached `inner` under `name` as this
        // type (attach_to_pool's own contract) — the tracer assertion is
        // the same statement, scoped to this pool's path.
        unsafe { register_pool_tracer::<S>(pool.path(), name) };
        PooledHandle {
            inner: ManuallyDrop::new(inner),
            pool: pool.clone(),
            drained_on_close: false,
        }
    }
}

impl<S: PoolAttach> PooledHandle<S> {
    /// The underlying pool (for roots, stats, `sync`, …).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Reclaims every retired-but-unreclaimed node now.
    ///
    /// Retired nodes hold allocated pool blocks until the collector frees
    /// them; draining before the pool goes away keeps those blocks from
    /// leaking in the file. Called automatically on drop/close; quiescence
    /// is the caller's responsibility (as for [`DurableSet::recover`]).
    pub fn drain_retired(&self) {
        drain_collector(self.inner.collector_of());
    }

    /// Flushes the mapping to the backing file and detaches **without**
    /// freeing any live node (the normal way to let go of a pooled
    /// structure).
    pub fn close(mut self) -> io::Result<()> {
        self.drain_retired();
        self.drained_on_close = true;
        self.pool.sync()
    }
}

impl<S: PoolAttach> Drop for PooledHandle<S> {
    fn drop(&mut self) {
        // Return retired nodes' blocks to the pool while it is still mapped
        // (the live structure itself is deliberately NOT dropped).
        if !self.drained_on_close {
            self.drain_retired();
        }
    }
}

impl<S: PoolAttach> Deref for PooledHandle<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.inner
    }
}

impl<S: PoolAttach> std::fmt::Debug for PooledHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledHandle").field("pool", &self.pool).finish()
    }
}
