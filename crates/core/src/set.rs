//! The uniform set/map interface all evaluated structures implement.
//!
//! The paper evaluates five set implementations (list, hash table, two BSTs,
//! skiplist) under a common harness (§5.1: prefill to half the key range,
//! uniform keys, insert/delete/lookup mixes). [`DurableSet`] is that common
//! surface, so benchmarks, stress tests and crash tests are written once.

/// One set operation, used as the driver input for set-shaped structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp<K, V> {
    /// Insert `(key, value)`; fails if the key is present.
    Insert(K, V),
    /// Remove `key`; fails if absent.
    Remove(K),
    /// Look up `key`.
    Get(K),
}

/// A concurrent, optionally durable, set/map with 64-bit keys and values.
///
/// `insert`/`remove`/`get` are linearizable (and durably linearizable for
/// durable policies). `len` and `recover` are *not* concurrent operations:
/// they must be called in quiescent states (testing, and the post-crash
/// recovery phase, respectively).
pub trait DurableSet<K, V>: Send + Sync {
    /// Inserts `key → value`. Returns `false` if the key was already present
    /// (set semantics: the existing value is kept, as in the paper's C++
    /// implementations).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key`, returning `true` if it was present.
    fn remove(&self, key: K) -> bool;

    /// Returns the value associated with `key`, if any.
    fn get(&self, key: K) -> Option<V>;

    /// Returns whether `key` is present.
    fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys present. Quiescent only.
    fn len(&self) -> usize;

    /// Whether the set is empty. Quiescent only.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery (paper §4 "Recovery"): runs the structure's
    /// `disconnect(root)` (Supplement 1) to finish physically deleting every
    /// marked node, and rebuilds any volatile auxiliary parts (e.g. skiplist
    /// towers). A no-op for volatile policies.
    ///
    /// Must be called before any other operation after a crash, and only
    /// then (§2: "Processes call the recovery operation before any other
    /// operation after a crash event").
    fn recover(&self);
}
