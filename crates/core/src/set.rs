//! The uniform set/map interface all evaluated structures implement, plus
//! the pool-reopen entry point for structures that live in a persistent
//! pool file.
//!
//! The paper evaluates five set implementations (list, hash table, two BSTs,
//! skiplist) under a common harness (§5.1: prefill to half the key range,
//! uniform keys, insert/delete/lookup mixes). [`DurableSet`] is that common
//! surface, so benchmarks, stress tests and crash tests are written once.
//!
//! [`PoolAttach`] + [`PooledHandle`] add the cross-process lifecycle for
//! *every* traversal structure — set-shaped or not (queue, stack, priority
//! queue): create a structure inside a `nvtraverse-pool` file, find it again
//! by name after a restart, and keep the pool mapped for as long as the
//! structure is in use.
//!
//! The entry point is the **typed-root API** ([`TypedRoots`], implemented
//! for [`Pool`]): build a pool with `Pool::builder()`, then
//! `pool.root::<S>("name")` / `pool.create_root::<S>("name")` /
//! `pool.root_or_create::<S>("name")` — each returns a ready
//! [`PooledHandle<S>`] with the structure attached, recovered, and its
//! [`PoolTrace`] tracer auto-registered for the recovery GC. Because the
//! handle just holds a clone of the (first-class, multi-instance) pool,
//! any number of roots and any number of pools coexist in one process —
//! the former stringly-typed attach/adopt/register dance survives only as
//! deprecated shims. [`PoolTrace`] is the reachability half of the
//! lifecycle: it lets the pool's mark-sweep recovery GC walk each root's
//! persistent node graph so blocks stranded by a crash are swept back to
//! the pool's free lists before the structure attaches.

use crate::detect::{OpError, OpToken};
use nvtraverse_pool::{OpId, Pool};
use std::io;
use std::mem::ManuallyDrop;
use std::ops::Deref;
use std::path::Path;

/// One set operation, used as the driver input for set-shaped structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp<K, V> {
    /// Insert `(key, value)`; fails if the key is present.
    Insert(K, V),
    /// Remove `key`; fails if absent.
    Remove(K),
    /// Look up `key`.
    Get(K),
}

/// A concurrent, optionally durable, set/map with 64-bit keys and values.
///
/// `insert`/`remove`/`get` are linearizable (and durably linearizable for
/// durable policies). `len` and `recover` are *not* concurrent operations:
/// they must be called in quiescent states (testing, and the post-crash
/// recovery phase, respectively).
pub trait DurableSet<K, V>: Send + Sync {
    /// Inserts `key → value`. Returns `false` if the key was already present
    /// (set semantics: the existing value is kept, as in the paper's C++
    /// implementations).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key`, returning `true` if it was present.
    fn remove(&self, key: K) -> bool;

    /// Returns the value associated with `key`, if any.
    fn get(&self, key: K) -> Option<V>;

    /// [`insert`](Self::insert), with the call's latency recorded into the
    /// thread's current observability target (see
    /// `nvtraverse_obs::attribute_to`) as an
    /// [`Insert`](nvtraverse_obs::OpKind::Insert) sample. Identical to plain
    /// `insert` when recording is disabled or no target is attributed.
    fn timed_insert(&self, key: K, value: V) -> bool {
        nvtraverse_obs::timed(nvtraverse_obs::OpKind::Insert, || self.insert(key, value))
    }

    /// [`remove`](Self::remove), recorded as a
    /// [`Remove`](nvtraverse_obs::OpKind::Remove) latency sample.
    fn timed_remove(&self, key: K) -> bool {
        nvtraverse_obs::timed(nvtraverse_obs::OpKind::Remove, || self.remove(key))
    }

    /// [`get`](Self::get), recorded as a
    /// [`Get`](nvtraverse_obs::OpKind::Get) latency sample.
    fn timed_get(&self, key: K) -> Option<V> {
        nvtraverse_obs::timed(nvtraverse_obs::OpKind::Get, || self.get(key))
    }

    /// Returns whether `key` is present.
    fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// [`insert`](Self::insert), but fallible: a full pool reports
    /// [`OpError::PoolFull`] instead of panicking, with nothing allocated
    /// and nothing changed — the structure (and the rest of the pool)
    /// stays fully usable. The default forwards to plain `insert` for
    /// structures whose allocation cannot fail (volatile policies).
    ///
    /// # Errors
    ///
    /// [`OpError::PoolFull`] when the backing pool is exhausted.
    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        Ok(self.insert(key, value))
    }

    /// [`remove`](Self::remove), but fallible like
    /// [`try_insert`](Self::try_insert). Removal frees memory, so pool
    /// exhaustion cannot fail it — the default simply forwards — but the
    /// symmetric signature lets callers treat mutations uniformly.
    ///
    /// # Errors
    ///
    /// None in practice; see above.
    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        Ok(self.remove(key))
    }

    /// **Detectable** [`insert`](Self::insert) ("Tracking in Order to
    /// Recover"): runs the insert through `token`'s operation-descriptor
    /// slot, so that after a crash
    /// [`Pool::op_outcome`](nvtraverse_pool::Pool::op_outcome) answers
    /// whether this exact operation took effect. Returns the operation's
    /// durable [`OpId`] and the usual set-semantics flag (`true` =
    /// inserted, `false` = key already present).
    ///
    /// Implemented by `HarrisList` and `HashMapDs` (under durable
    /// policies); everything else keeps this default.
    ///
    /// # Errors
    ///
    /// [`OpError::Unsupported`] (the default), or
    /// [`OpError::PoolFull`] — in which case the descriptor may be armed
    /// but never publishes, and recovery classifies it `NotApplied`.
    fn insert_detectable(
        &self,
        token: &mut OpToken,
        key: K,
        value: V,
    ) -> Result<(OpId, bool), OpError> {
        let _ = (token, key, value);
        Err(OpError::Unsupported)
    }

    /// **Detectable** [`remove`](Self::remove) — see
    /// [`insert_detectable`](Self::insert_detectable). `true` = removed,
    /// `false` = key was absent.
    ///
    /// # Errors
    ///
    /// [`OpError::Unsupported`] (the default).
    fn remove_detectable(&self, token: &mut OpToken, key: K) -> Result<(OpId, bool), OpError> {
        let _ = (token, key);
        Err(OpError::Unsupported)
    }

    /// Number of keys present. Quiescent only.
    fn len(&self) -> usize;

    /// Whether the set is empty. Quiescent only.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery (paper §4 "Recovery"): runs the structure's
    /// `disconnect(root)` (Supplement 1) to finish physically deleting every
    /// marked node, and rebuilds any volatile auxiliary parts (e.g. skiplist
    /// towers). A no-op for volatile policies.
    ///
    /// Must be called before any other operation after a crash, and only
    /// then (§2: "Processes call the recovery operation before any other
    /// operation after a crash event").
    fn recover(&self);
}

/// A structure that can live inside a persistent [`Pool`] and be found
/// again, by name, after the process restarts.
///
/// Every structure in `nvtraverse-structures` implements this — the sets
/// (`HarrisList`, `HashMapDs`, `SkipList`, `EllenBst`, `NmBst`) *and* the
/// non-set shapes (`MsQueue`, `TreiberStack`, `PriorityQueue`), which is the
/// paper's §3 generality claim made operational: any traversal data
/// structure, not just sets, survives a crash when its core is persistent
/// and its auxiliary parts are rebuilt on recovery.
///
/// # Lifecycle
///
/// ```text
/// first process            crash / exit           any later process
/// ─────────────            ────────────           ─────────────────
/// Pool::create ─┐
///               ├─ create_in_pool(pool, "name")   Pool::open ─┐
/// operations …  │      (root registered)                      ├─ attach_to_pool(pool, "name")
///               └─ [SIGKILL / power loss / drop]              ├─ recover_attached()
///                                                             └─ operations …
/// ```
///
/// [`PooledHandle`] packages both columns into single calls
/// ([`PooledHandle::create`] / [`PooledHandle::open`]). Implementations
/// register their root node in the pool's root registry at creation and
/// rebuild their in-memory handle from that root on
/// [`PoolAttach::attach_to_pool`].
///
/// # What the root must encode
///
/// Everything volatile must be *recomputable* from what the root reaches:
/// the skiplist registers only its head tower and rebuilds every upper
/// level from the bottom list; the queue registers its anchor and
/// recomputes the tail shortcut by walking from the head; the hash table
/// registers a persistent bucket-offset table and rebuilds its volatile
/// `Box<[HarrisList]>` handle from it. See `ARCHITECTURE.md`'s
/// per-structure recovery table.
pub trait PoolAttach: Sized {
    /// Builds a fresh, empty instance whose every node lives in `pool`, and
    /// registers its root under `name`.
    ///
    /// The instance **captures a [`PoolCtx`](crate::alloc::PoolCtx) for `pool`** and re-enters it
    /// around its allocating operations, so all of its node allocations —
    /// now and after this call returns — are served from this pool, with
    /// no process-global state: structures in different pools coexist and
    /// allocate concurrently.
    ///
    /// # Errors
    ///
    /// Fails when the root registry is full or `name` is invalid.
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self>;

    /// Re-attaches to the instance previously registered under `name`.
    ///
    /// Returns `None` when the root is absent or the pool was
    /// [rebased](Pool::is_rebased) (embedded absolute pointers would be
    /// invalid). Like `create_in_pool`, the attached instance captures a
    /// [`PoolCtx`](crate::alloc::PoolCtx) for `pool`.
    ///
    /// # Safety
    ///
    /// The root must have been registered by `create_in_pool` of the *same*
    /// concrete type (same key/value/durability parameters): the registry
    /// stores untyped offsets.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self>;

    /// Runs the structure's post-crash recovery (the `disconnect(root)` pass
    /// of paper §4, plus any volatile-auxiliary rebuild). Set-shaped
    /// structures forward [`DurableSet::recover`]; queue/stack/priority
    /// queue forward their inherent `recover` — either way, pooled
    /// lifecycles need no key/value type annotations.
    fn recover_attached(&self);

    /// The EBR collector this structure retires nodes into.
    ///
    /// [`PooledHandle`] drains it before letting go of the pool: nodes
    /// retired but not yet reclaimed hold allocated pool blocks, and
    /// without a drain every close would leak them in the file until the
    /// next open's recovery GC sweeps them.
    fn collector_of(&self) -> &nvtraverse_ebr::Collector;

    /// Settles the pool's still-unresolved operation descriptors
    /// ([`Pool::unresolved_ops`]) against this structure's **recovered**
    /// state: re-run the lookup the descriptor describes and report
    /// `Committed`/`NotApplied` back through [`Pool::resolve_op`]. Called
    /// by the typed-root open path after [`recover_attached`]
    /// (quiescent, recovery finished), so `Pool::op_outcome` has an answer
    /// for every descriptor by the time the open returns a handle.
    ///
    /// The default does nothing — correct for every structure without
    /// detectable operations (their pools never arm a descriptor).
    ///
    /// [`recover_attached`]: PoolAttach::recover_attached
    fn resolve_detectable(&self, pool: &Pool) {
        let _ = pool;
    }
}

/// A [`PoolAttach`] structure whose persistent node graph can be walked
/// from its root — the mark phase of the pool's root-driven mark-sweep
/// recovery GC (see `nvtraverse_pool::gc`).
///
/// `Pool::open` cannot know which concrete structure type each registered
/// root belongs to: the root registry stores untyped offsets. This trait
/// closes the gap — [`PooledHandle`] registers a type-erased shim of
/// [`PoolTrace::trace`] under the root's name before every open (and
/// [`register_pool_tracer`] does the same for roots attached by hand), so
/// open-time recovery can prove which allocated blocks are reachable and
/// sweep the rest back to the free lists.
///
/// # Contract for implementations
///
/// `trace` runs during `Pool::open`, **before** `attach_to_pool` and
/// `recover()`, single-threaded, on a quiescent heap whose block headers
/// have all been verified. An implementation must
/// [`mark`](nvtraverse_pool::Marker::mark) every block that the structure's
/// recovery pass — or any later operation — may reach from `root`:
///
/// * **Follow marked / logically-deleted links.** A reachable-but-marked
///   node is still linked into the structure; `recover()` will trim it and
///   retire it through the collector, so the sweep must not free it first.
///   Walk exactly the links `recover()` walks.
/// * **Do not follow volatile auxiliary state.** Links that recovery
///   rebuilds without reading (skiplist tower levels, the queue's tail
///   shortcut) may be stale after a crash; tracing through them would at
///   best mark garbage and at worst chase dangling pointers. The
///   [`Marker`](nvtraverse_pool::Marker) validates every pointer against
///   the block headers, but validation cannot turn a wrong walk into a
///   right one.
/// * **Keep operation descriptors recovery dereferences.** The Ellen BST's
///   helping recovery reads `Info` records out of non-`CLEAN` update words
///   and then dereferences the nodes they name (including a pending
///   insert's not-yet-linked subtree); all of those must be marked.
///
/// Everything allocated but unmarked after all roots are traced is swept.
/// An implementation that under-marks therefore frees live data — which is
/// why the trait is `unsafe` — while one that over-marks (conservatively
/// keeping, say, a CLEAN descriptor) merely delays reclamation of a
/// bounded set of blocks to the structure's own retire path.
///
/// # Safety
///
/// Implementors assert that `trace`, given a root created by
/// `create_in_pool` of this exact type, marks a superset of the blocks any
/// post-recovery execution can reach, dereferencing only memory valid
/// under the structure's invariants.
///
/// # Example: leaked blocks are reclaimed at the next open
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::pool::Pool;
/// use nvtraverse::{DurableSet, TypedRoots};
/// use nvtraverse::pmem::MmapBackend;
/// use nvtraverse_structures::list::HarrisList;
///
/// type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
/// let path = std::env::temp_dir().join(format!("doc-trace-{}.pool", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
///
/// let pool = Pool::builder().path(&path).capacity(4 << 20).create()?;
/// let list = pool.create_root::<List>("gc-demo")?;
/// for k in 0..64u64 { list.insert(k, k); }
/// for k in 0..64u64 { list.remove(k); }
/// // Strand a block on purpose: allocated, reachable from no root — the
/// // durable state a crash mid-operation (or mid-EBR) leaves behind.
/// let _orphan = pool.alloc(64, 8).unwrap();
/// list.close()?;
/// drop(pool);
///
/// // root::<List> registers List's tracer for "gc-demo", so the mark-sweep
/// // runs before the structure attaches and reclaims exactly the orphan
/// // (the clean close already drained every retired node).
/// let pool = Pool::builder().path(&path).open()?;
/// let list = pool.root::<List>("gc-demo")?;
/// let report = pool.recovery_report();
/// assert!(report.gc_ran);
/// assert_eq!(report.reclaimed_blocks, 1);
/// assert!(report.reclaimed_bytes >= 64);
/// # list.close()?; drop(pool); std::fs::remove_file(&path)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub unsafe trait PoolTrace: PoolAttach {
    /// Marks every block reachable from `root` (a payload pointer to this
    /// structure's registered root block) in `marker`.
    ///
    /// # Safety
    ///
    /// `root` must be the root of a structure created by
    /// `Self::create_in_pool`, in a pool mapped at its preferred base,
    /// quiescent, with verified block headers — the exact state
    /// `Pool::open` recovery provides.
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>);
}

/// Registers `S`'s [`PoolTrace::trace`] as the recovery-GC tracer for the
/// root named `name` of the pool file at `pool_path` (newest registration
/// wins; the registry is scoped per pool path, so unrelated pools reusing
/// a root name are unaffected).
///
/// [`PooledHandle`] calls this automatically; call it by hand before
/// `Pool::open` for roots you attach directly with
/// [`PoolAttach::attach_to_pool`] — the open-time GC only runs when
/// *every* root name in the pool has a tracer.
///
/// Returns the tracer this registration displaced, if any — callers whose
/// subsequent attach fails should restore it (as [`PooledHandle::open`]
/// does) rather than leave their own assertion behind.
///
/// # Safety
///
/// The caller asserts that the root registered under `name` in the pool at
/// `pool_path` was created by `S::create_in_pool` (same concrete type
/// parameters) — the same contract [`PoolAttach::attach_to_pool`]
/// requires. Tracing a root as the wrong type misreads pool memory and can
/// sweep live blocks.
pub unsafe fn register_pool_tracer<S: PoolTrace>(
    pool_path: impl AsRef<Path>,
    name: &str,
) -> Option<nvtraverse_pool::TraceFn> {
    // SAFETY: forwarded to the caller (identical contract).
    unsafe { nvtraverse_pool::register_tracer(pool_path.as_ref(), name, trace_shim::<S>) }
}

/// Undoes a [`register_pool_tracer`] whose subsequent open/attach failed:
/// puts back the displaced tracer, or removes the entry when there was
/// none. Pair every speculative registration with this on the failure
/// path — a failed attach must not leave its type assertion in the
/// process-global registry (the pool could later hold a different type).
pub fn restore_pool_tracer(path: &Path, name: &str, prev: Option<nvtraverse_pool::TraceFn>) {
    match prev {
        // SAFETY: re-asserting exactly what the previous registrant
        // (whose registration we displaced) had already asserted.
        Some(f) => {
            unsafe { nvtraverse_pool::register_tracer(path, name, f) };
        }
        None => nvtraverse_pool::unregister_tracer(path, name),
    }
}

/// The type-erased shim stored in the pool's tracer registry.
unsafe fn trace_shim<S: PoolTrace>(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
    // SAFETY: forwarded from the registry's per-name type contract.
    unsafe { S::trace(root, marker) }
}

/// **Typed roots** — the extension of [`Pool`] that turns a root *name*
/// into a ready, attached structure handle in one call:
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::pmem::MmapBackend;
/// use nvtraverse::pool::Pool;
/// use nvtraverse::{DurableSet, TypedRoots};
/// use nvtraverse_structures::list::HarrisList;
///
/// type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
/// let path = std::env::temp_dir().join(format!("doc-typed-{}.pool", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
///
/// // First process: build the pool, create a named root in it.
/// let pool = Pool::builder().path(&path).capacity(4 << 20).create()?;
/// let list = pool.create_root::<List>("accounts")?;
/// list.insert(7, 700);
/// list.close()?;
/// drop(pool);
///
/// // Any later process: open the pool, ask for the root by name + type.
/// let pool = Pool::builder().path(&path).open()?;
/// let list = pool.root::<List>("accounts")?;
/// assert_eq!(list.get(7), Some(700));
/// # list.close()?; drop(pool); std::fs::remove_file(&path)?;
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// Each method auto-registers `S`'s [`PoolTrace`] tracer for the root (so
/// the recovery GC can prove reachability at the next open — and, via
/// [`Pool::run_pending_gc`], at *this* open when the tracer arrives before
/// the first attach), runs the structure's recovery where applicable, and
/// returns a [`PooledHandle`] that shares the pool: call the methods as
/// many times as there are roots, on as many pools as are open. This
/// retires the stringly-typed `attach_to_pool` → `recover_attached` →
/// `register_pool_tracer` → `adopt` dance (all still available, deprecated
/// or as the low-level layer underneath).
///
/// # Type contract
///
/// Like the deprecated `PooledHandle::open`, `root::<S>` trusts the caller
/// that the root named `name` **was created as `S`** (same key/value/policy
/// parameters): the pool's root registry stores untyped offsets, so a wrong
/// `S` misreads pool memory — the same contract
/// [`PoolAttach::attach_to_pool`] states. Creating and opening through this
/// API keeps the assertion in exactly one place per root name.
pub trait TypedRoots {
    /// Attaches to the root named `name` as an `S`, runs its recovery, and
    /// returns the owning handle. Registers `S`'s tracer for `name` and —
    /// when this is the first attach and every root is now traceable —
    /// runs the pool's [pending recovery GC](Pool::run_pending_gc) first.
    ///
    /// # Errors
    ///
    /// Fails when the pool has no root named `name` or was
    /// [rebased](Pool::is_rebased).
    fn root<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>>;

    /// Creates a fresh `S` whose nodes live in this pool, registered under
    /// `name`, and returns the owning handle. Registers `S`'s tracer.
    ///
    /// # Errors
    ///
    /// Fails when the root registry is full or `name` is invalid/taken by
    /// an incompatible slot state.
    fn create_root<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>>;

    /// [`TypedRoots::root`] if the root exists, otherwise
    /// [`TypedRoots::create_root`] — heals a crash that died between pool
    /// creation and root registration.
    ///
    /// # Errors
    ///
    /// Fails when the pool was rebased or creation fails.
    fn root_or_create<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>>;
}

impl TypedRoots for Pool {
    fn root<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>> {
        // SAFETY: attach_to_pool below requires the root to be of type `S`;
        // registering S's tracer for it is the same assertion. A failed
        // attach restores the previous registration (it must not leave a
        // type assertion behind, nor delete one a live handle installed).
        let prev = unsafe { register_pool_tracer::<S>(self.path(), name) };
        // With the tracer in hand the open-time GC may have become
        // provable; collect before anything attaches.
        self.run_pending_gc();
        // Count the attach *before* it happens: from here on a concurrent
        // `root::<T>` must never run the deferred GC (this structure's
        // recovery may be mutating the heap). A failed attach leaves the
        // count raised — conservative, the safe direction.
        self.note_attach();
        let attempt: io::Result<PooledHandle<S>> = (|| {
            // SAFETY: deferred to the caller's choice of `S` — see the
            // trait-level type contract.
            let inner = unsafe { S::attach_to_pool(self, name) }.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    if self.is_rebased() {
                        format!("pool was rebased; absolute pointers for root {name:?} are invalid")
                    } else {
                        format!("pool has no root named {name:?}")
                    },
                )
            })?;
            inner.recover_attached();
            // Recovery done and quiescent: let the structure answer the
            // descriptors the descriptor table alone could not classify.
            inner.resolve_detectable(self);
            Ok(PooledHandle::from_attached(self.clone(), inner))
        })();
        match attempt {
            Ok(handle) => Ok(handle),
            Err(e) => {
                restore_pool_tracer(self.path(), name, prev);
                Err(e)
            }
        }
    }

    fn create_root<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>> {
        // Refuse to overwrite a live root: the raw registry's
        // `set_root_offset` replaces an existing slot, which would orphan
        // the previous structure's entire node graph (the next open's GC
        // would then reclaim it — silent data loss). A torn slot
        // (offset 0, crash mid-registration) is the one overwrite that
        // *is* healing, so it passes.
        if matches!(self.root_offset(name), Some(off) if off != 0) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "pool already has a root named {name:?} — open it with \
                     `root::<S>` (or `root_or_create`) instead of creating over it"
                ),
            ));
        }
        // Creation mutates the heap: conservatively disable the deferred
        // GC up front (reachability of a mid-create heap is not provable).
        self.note_attach();
        // SAFETY: the root named `name` is created right below by this very
        // type — exactly the tracer registration contract.
        let prev = unsafe { register_pool_tracer::<S>(self.path(), name) };
        match S::create_in_pool(self, name) {
            Ok(inner) => Ok(PooledHandle::from_attached(self.clone(), inner)),
            Err(e) => {
                // The root was never registered: retract the assertion.
                restore_pool_tracer(self.path(), name, prev);
                Err(e)
            }
        }
    }

    fn root_or_create<S: PoolTrace>(&self, name: &str) -> io::Result<PooledHandle<S>> {
        if self.is_rebased() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("pool was rebased; absolute pointers for root {name:?} are invalid"),
            ));
        }
        match self.root_offset(name) {
            // A torn slot (offset 0, crash mid-registration) is healed by
            // re-creating, same as a missing root.
            Some(off) if off != 0 => self.root::<S>(name),
            _ => self.create_root::<S>(name),
        }
    }
}

/// Drains `collector` fully: retired-but-unreclaimed nodes are freed back
/// to the heap that issued them (for a pooled structure, the pool file).
///
/// Three passes because the epoch advance needs two ticks to age out the
/// newest bags, plus one to collect them. [`PooledHandle`] calls this on
/// close/drop; for a structure created directly via
/// [`PoolAttach::create_in_pool`], prefer wrapping it with
/// [`PooledHandle::adopt`] (which also drains) over managing the drain and
/// `std::mem::forget` by hand.
pub fn drain_collector(collector: &nvtraverse_ebr::Collector) {
    for _ in 0..3 {
        collector.synchronize();
    }
}

/// Owning handle for a pool-resident structure: the pool mapping plus the
/// attached structure, with the right drop order and **no node teardown**.
///
/// Dropping a structure normally frees all of its nodes — exactly wrong for
/// one that lives in a pool and must be found again on the next open.
/// `PooledHandle` therefore never runs the structure's destructor; dropping
/// the handle just unmaps the pool (after an `msync`).
///
/// This is the paper's §2 lifecycle as an API: *"Processes call the recovery
/// operation before any other operation after a crash event"* —
/// [`TypedRoots::root`] performs exactly root lookup → attach → `recover()`
/// before handing the handle out.
///
/// # Worked example: create → (crash) → reopen
///
/// The first block below plays the role of the process that dies; the
/// second is the process that comes back up. After a real `SIGKILL`
/// the reopen path is byte-for-byte the same open + `root::<S>` calls — the
/// only difference is that `recover()` then has marked nodes or stale
/// volatile shortcuts to repair (exercised for every structure in
/// `tests/crash_process.rs`).
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::pool::Pool;
/// use nvtraverse::{DurableSet, TypedRoots};
/// use nvtraverse::pmem::MmapBackend;
/// use nvtraverse_structures::list::HarrisList;
///
/// type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
///
/// let path = std::env::temp_dir().join(format!("doc-pooled-{}.pool", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
///
/// // "First process": create a pool file holding a named list, mutate it,
/// // and let go. `close` syncs the mapping; a crash instead of a close
/// // loses at most the in-flight operation (durable linearizability).
/// let pool = Pool::builder().path(&path).capacity(4 << 20).create()?;
/// let list = pool.create_root::<List>("accounts")?;
/// assert!(list.insert(7, 700));
/// assert!(list.insert(8, 800));
/// assert!(list.remove(8));
/// list.close()?;
/// drop(pool);
///
/// // "Second process": open → root lookup → recover(), two calls.
/// let pool = Pool::builder().path(&path).open()?;
/// let list = pool.root::<List>("accounts")?;
/// assert_eq!(list.get(7), Some(700));
/// assert_eq!(list.get(8), None, "removes are as durable as inserts");
/// assert!(list.insert(9, 900), "recovered structure is fully usable");
/// list.close()?;
/// # drop(pool); std::fs::remove_file(&path)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct PooledHandle<S: PoolAttach> {
    inner: ManuallyDrop<S>,
    pool: Pool,
    /// Set by `close()` so Drop does not repeat the collector drain.
    drained_on_close: bool,
}

/// The set-flavoured name [`PooledHandle`] grew out of, kept as an alias.
#[deprecated(note = "use `PooledHandle` (the alias was set-specific naming)")]
pub type PooledSet<S> = PooledHandle<S>;

impl<S: PoolTrace> PooledHandle<S> {
    /// One-call create: `Pool::builder().create()` +
    /// [`TypedRoots::create_root`].
    ///
    /// # Errors
    ///
    /// Fails if the file exists or pool creation/registration fails.
    #[deprecated(
        note = "use `Pool::builder().path(…).capacity(…).create()` then \
                `pool.create_root::<S>(name)`"
    )]
    pub fn create(path: impl AsRef<Path>, capacity: u64, name: &str) -> io::Result<Self> {
        let pool = Pool::builder().path(path).capacity(capacity).create()?;
        pool.create_root::<S>(name)
    }

    /// One-call reopen: `Pool::builder().open()` + [`TypedRoots::root`]
    /// (which also runs the pending recovery GC for a single-root pool —
    /// the behaviour this shim always had).
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot be opened, was rebased, or holds no root
    /// named `name`.
    #[deprecated(
        note = "use `Pool::builder().path(…).open()` then `pool.root::<S>(name)`"
    )]
    pub fn open(path: impl AsRef<Path>, name: &str) -> io::Result<Self> {
        let pool = Pool::builder().path(path).open()?;
        pool.root::<S>(name)
    }

    /// One-call restart-loop entry point:
    /// `Pool::builder().open_or_create()` followed by
    /// [`TypedRoots::root_or_create`]. Heals both interrupted-create states
    /// (pool file without magic; pool without the named root).
    ///
    /// # Errors
    ///
    /// Fails when the pool cannot be opened/created or was rebased.
    #[deprecated(
        note = "use `Pool::builder().path(…).capacity(…).open_or_create()` then \
                `pool.root_or_create::<S>(name)`"
    )]
    pub fn open_or_create(
        path: impl AsRef<Path>,
        capacity: u64,
        name: &str,
    ) -> io::Result<Self> {
        let pool = Pool::builder().path(path).capacity(capacity).open_or_create()?;
        pool.root_or_create::<S>(name)
    }

    /// Wraps an already-created or already-attached structure into a
    /// handle. `name` is the root name the structure was created or
    /// attached under; its tracer is registered, and the handle guarantees
    /// the structure's destructor never runs (even on panic unwind).
    ///
    /// # Panics
    ///
    /// Panics when `pool` has no root named `name` — the structure being
    /// adopted cannot have been created or attached under that name, so
    /// registering its tracer there would poison the next open's GC.
    #[deprecated(
        note = "secondary roots are first-class now: use `pool.create_root::<S>(name)` / \
                `pool.root::<S>(name)` instead of create/attach + adopt"
    )]
    pub fn adopt(pool: &Pool, inner: S, name: &str) -> Self {
        assert!(
            pool.root_offset(name).is_some(),
            "adopt: pool has no root named {name:?} — wrong name for the adopted structure"
        );
        // SAFETY: the caller created/attached `inner` under `name` as this
        // type (attach_to_pool's own contract) — the tracer assertion is
        // the same statement, scoped to this pool's path.
        unsafe { register_pool_tracer::<S>(pool.path(), name) };
        pool.note_attach();
        PooledHandle::from_attached(pool.clone(), inner)
    }
}

impl<S: PoolAttach> PooledHandle<S> {
    /// Wraps an attached (or freshly created) structure with the pool it
    /// lives in — the internal constructor behind [`TypedRoots`].
    fn from_attached(pool: Pool, inner: S) -> Self {
        PooledHandle {
            inner: ManuallyDrop::new(inner),
            pool,
            drained_on_close: false,
        }
    }

    /// The underlying pool (for roots, stats, `sync`, …).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Reclaims every retired-but-unreclaimed node now.
    ///
    /// Retired nodes hold allocated pool blocks until the collector frees
    /// them; draining before the pool goes away keeps those blocks from
    /// leaking in the file. Called automatically on drop/close; quiescence
    /// is the caller's responsibility (as for [`DurableSet::recover`]).
    pub fn drain_retired(&self) {
        drain_collector(self.inner.collector_of());
    }

    /// Flushes the mapping to the backing file and detaches **without**
    /// freeing any live node (the normal way to let go of a pooled
    /// structure).
    pub fn close(mut self) -> io::Result<()> {
        self.drain_retired();
        self.drained_on_close = true;
        self.pool.sync()
    }
}

impl<S: PoolAttach> Drop for PooledHandle<S> {
    fn drop(&mut self) {
        // Return retired nodes' blocks to the pool while it is still mapped
        // (the live structure itself is deliberately NOT dropped).
        if !self.drained_on_close {
            self.drain_retired();
        }
    }
}

impl<S: PoolAttach> Deref for PooledHandle<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.inner
    }
}

impl<S: PoolAttach> std::fmt::Debug for PooledHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledHandle").field("pool", &self.pool).finish()
    }
}
