//! Tagged pointers: the representation of every link in a core tree.
//!
//! Lock-free structures steal low pointer bits for protocol state. This
//! repository reserves three (nodes are ≥ 8-byte aligned):
//!
//! * **bit 0** — the *mark* bit: logical deletion (Harris §2.1; a marked node
//!   is frozen and awaiting physical disconnection, paper Definition 1),
//! * **bit 1** — a second algorithm bit (Natarajan–Mittal's edge *flag*;
//!   together with bit 0 it also encodes Ellen et al.'s 2-bit update state),
//! * **bit 2** — the *dirty* bit, reserved exclusively for the
//!   link-and-persist durability policy (`LinkPersist`); data-structure code
//!   never sees it set because the policy strips it on every load.

use nvtraverse_pmem::Word;
use std::fmt;
use std::marker::PhantomData;

/// Bit 0: logical deletion mark.
pub const MARK_BIT: u64 = 0b001;
/// Bit 1: second algorithm tag bit (edge flag / update-state high bit).
pub const FLAG_BIT: u64 = 0b010;
/// Bit 2: link-and-persist dirty bit (owned by the durability policy).
pub const DIRTY_BIT: u64 = 0b100;
/// All bits that are not the pointer.
pub const TAG_MASK: u64 = 0b111;
/// The two bits available to data-structure algorithms.
pub const ALG_TAG_MASK: u64 = MARK_BIT | FLAG_BIT;

/// A pointer to `T` carrying up to two algorithm tag bits (plus the policy's
/// dirty bit, invisible to algorithms).
///
/// `MarkedPtr` is [`Word`]-encodable, so it is stored in
/// [`PCell`](nvtraverse_pmem::PCell)s like every other shared field.
///
/// # Example
///
/// ```
/// use nvtraverse::marked::MarkedPtr;
///
/// let node = Box::into_raw(Box::new(7u64));
/// let p = MarkedPtr::new(node);
/// assert!(!p.is_marked());
/// let m = p.with_mark();
/// assert!(m.is_marked());
/// assert_eq!(m.ptr(), node); // the mark does not change the address
/// unsafe { drop(Box::from_raw(node)) };
/// ```
pub struct MarkedPtr<T> {
    bits: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> MarkedPtr<T> {
    /// The null pointer with no tags.
    #[inline]
    pub const fn null() -> Self {
        MarkedPtr {
            bits: 0,
            _marker: PhantomData,
        }
    }

    /// Wraps a raw pointer with no tags.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the pointer is at least 8-byte aligned (the low
    /// three bits must be free for tags).
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        let bits = ptr as usize as u64;
        debug_assert_eq!(bits & TAG_MASK, 0, "node pointers must be 8-byte aligned");
        MarkedPtr {
            bits,
            _marker: PhantomData,
        }
    }

    /// Reconstructs from raw bits (pointer plus tags).
    #[inline]
    pub const fn from_bits_raw(bits: u64) -> Self {
        MarkedPtr {
            bits,
            _marker: PhantomData,
        }
    }

    /// The raw bit representation (pointer plus tags).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The untagged pointer.
    #[inline]
    pub fn ptr(self) -> *mut T {
        (self.bits & !TAG_MASK) as usize as *mut T
    }

    /// Whether the untagged pointer is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.bits & !TAG_MASK == 0
    }

    /// Dereferences the untagged pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to a live `T` for `'a` (in this
    /// repository that protection comes from an epoch [`Guard`]).
    ///
    /// [`Guard`]: nvtraverse_ebr::Guard
    #[inline]
    pub unsafe fn deref<'a>(self) -> &'a T {
        unsafe { &*self.ptr() }
    }

    /// The two algorithm tag bits as a small integer in `0..4`.
    #[inline]
    pub fn tag(self) -> u64 {
        self.bits & ALG_TAG_MASK
    }

    /// Replaces the algorithm tag bits (dirty bit untouched).
    #[inline]
    pub fn with_tag(self, tag: u64) -> Self {
        debug_assert_eq!(tag & !ALG_TAG_MASK, 0, "tag out of range");
        MarkedPtr {
            bits: (self.bits & !ALG_TAG_MASK) | tag,
            _marker: PhantomData,
        }
    }

    /// Whether the mark (logical deletion) bit is set.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.bits & MARK_BIT != 0
    }

    /// A copy with the mark bit set.
    #[inline]
    pub fn with_mark(self) -> Self {
        MarkedPtr {
            bits: self.bits | MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// A copy with the mark bit clear.
    #[inline]
    pub fn without_mark(self) -> Self {
        MarkedPtr {
            bits: self.bits & !MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// Whether the flag bit is set.
    #[inline]
    pub fn is_flagged(self) -> bool {
        self.bits & FLAG_BIT != 0
    }

    /// A copy with the flag bit set.
    #[inline]
    pub fn with_flag(self) -> Self {
        MarkedPtr {
            bits: self.bits | FLAG_BIT,
            _marker: PhantomData,
        }
    }

    /// A copy with the flag bit clear.
    #[inline]
    pub fn without_flag(self) -> Self {
        MarkedPtr {
            bits: self.bits & !FLAG_BIT,
            _marker: PhantomData,
        }
    }

    /// A copy with all algorithm tags cleared (pointer only).
    #[inline]
    pub fn untagged(self) -> Self {
        MarkedPtr {
            bits: self.bits & !TAG_MASK,
            _marker: PhantomData,
        }
    }

    /// Whether the policy dirty bit is set. Only durability policies look at
    /// this; algorithm code never observes it.
    #[inline]
    pub fn is_dirty(self) -> bool {
        self.bits & DIRTY_BIT != 0
    }

    /// A copy with the dirty bit set (policy use only).
    #[inline]
    pub fn with_dirty(self) -> Self {
        MarkedPtr {
            bits: self.bits | DIRTY_BIT,
            _marker: PhantomData,
        }
    }

    /// A copy with the dirty bit clear (policy use only).
    #[inline]
    pub fn without_dirty(self) -> Self {
        MarkedPtr {
            bits: self.bits & !DIRTY_BIT,
            _marker: PhantomData,
        }
    }
}

impl<T> Clone for MarkedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MarkedPtr<T> {}

impl<T> PartialEq for MarkedPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits
    }
}
impl<T> Eq for MarkedPtr<T> {}

impl<T> fmt::Debug for MarkedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MarkedPtr({:p}{}{}{})",
            self.ptr(),
            if self.is_marked() { " MARK" } else { "" },
            if self.is_flagged() { " FLAG" } else { "" },
            if self.is_dirty() { " DIRTY" } else { "" },
        )
    }
}

impl<T> Default for MarkedPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Word for MarkedPtr<T> {
    #[inline]
    fn to_bits(self) -> u64 {
        self.bits
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        Self::from_bits_raw(bits)
    }
}

// SAFETY: a `MarkedPtr` is just bits; sharing it does not itself permit data
// races (dereferencing is already `unsafe`).
unsafe impl<T> Send for MarkedPtr<T> {}
unsafe impl<T> Sync for MarkedPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null_and_untagged() {
        let p: MarkedPtr<u64> = MarkedPtr::null();
        assert!(p.is_null());
        assert!(!p.is_marked() && !p.is_flagged() && !p.is_dirty());
        assert_eq!(p.tag(), 0);
    }

    #[test]
    fn mark_and_flag_are_independent() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node);
        let m = p.with_mark();
        let f = p.with_flag();
        assert!(m.is_marked() && !m.is_flagged());
        assert!(f.is_flagged() && !f.is_marked());
        assert_eq!(m.without_mark(), p);
        assert_eq!(f.without_flag(), p);
        assert_eq!(m.ptr(), node);
        assert_eq!(f.ptr(), node);
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn marked_null_is_still_null() {
        let p: MarkedPtr<u64> = MarkedPtr::null().with_mark();
        assert!(p.is_null());
        assert!(p.is_marked());
    }

    #[test]
    fn tag_round_trips_all_four_states() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node);
        for tag in [0b00, 0b01, 0b10, 0b11] {
            let t = p.with_tag(tag);
            assert_eq!(t.tag(), tag);
            assert_eq!(t.ptr(), node);
        }
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn with_tag_preserves_dirty_bit() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node).with_dirty();
        let t = p.with_tag(MARK_BIT);
        assert!(t.is_dirty(), "with_tag must not clobber the policy bit");
        assert!(t.is_marked());
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn dirty_is_invisible_to_equality_after_strip() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node);
        assert_ne!(p.with_dirty(), p);
        assert_eq!(p.with_dirty().without_dirty(), p);
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn word_round_trip() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node).with_mark().with_dirty();
        let q = <MarkedPtr<u64> as Word>::from_bits(p.to_bits());
        assert_eq!(p, q);
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn untagged_clears_everything() {
        let node = Box::into_raw(Box::new(1u64));
        let p = MarkedPtr::new(node).with_mark().with_flag().with_dirty();
        let u = p.untagged();
        assert_eq!(u, MarkedPtr::new(node));
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn deref_reads_the_value() {
        let node = Box::into_raw(Box::new(99u64));
        let p = MarkedPtr::new(node).with_mark();
        assert_eq!(unsafe { *p.deref() }, 99);
        unsafe { drop(Box::from_raw(node)) };
    }
}
