//! # NVTraverse: durably linearizable traversal data structures
//!
//! This crate implements the primary contribution of *"NVTraverse: In NVRAM
//! Data Structures, the Destination is More Important than the Journey"*
//! (Friedman, Ben-David, Wei, Blelloch, Petrank — PLDI 2020): an **automatic
//! transformation** that takes a lock-free *traversal data structure* and
//! injects flush and fence instructions so that the result is provably
//! **durably linearizable** on non-volatile main memory.
//!
//! A traversal data structure (paper §3) is a node-based core-tree structure
//! whose every operation decomposes into three methods, called in order:
//!
//! 1. `findEntry` — pick an entry point into the core tree,
//! 2. `traverse`  — walk down making only local decisions, reading but never
//!    writing shared memory, and return a suffix of the path,
//! 3. `critical`  — perform the modifications (or compute the return value),
//!    possibly asking to restart.
//!
//! The transformation (paper §4, Algorithm 2) persists **nothing during the
//! traversal**. Between `traverse` and `critical` it runs two injected steps:
//! `ensureReachable` (flush the pointer that connects the returned window to
//! the rest of the tree) and `makePersistent` (flush the fields the traversal
//! read in the returned nodes, then fence). Inside `critical`, Protocol 2
//! applies: flush after every shared read and every write/CAS, fence before
//! every write/CAS and before returning.
//!
//! ## How this crate encodes the transformation
//!
//! The paper's flush placement is captured once, in the
//! [`Durability`] policy trait, and the data structures (in
//! `nvtraverse-structures`) are written against that instrumented memory
//! interface. Instantiating the same structure with a different policy yields
//! the different systems compared in the paper's evaluation:
//!
//! | Policy | Paper series | Behaviour |
//! |--------|--------------|-----------|
//! | [`Volatile`] | "orig" | no persistence at all |
//! | [`NvTraverse<B>`] | "Traverse" | the paper's transformation |
//! | [`Izraelevitz<B>`] | "Izraelevitz" | flush+fence after *every* shared access |
//! | [`LinkPersist<B>`] | "Log Free" | David et al.'s link-and-persist (dirty-bit tagged links) |
//! | [`Soft<B>`] | SOFT (related work) | Zuriel et al.'s minimal flushing: volatile links, one validity flush per update |
//!
//! where `B` is a flush/fence [`Backend`](nvtraverse_pmem::Backend) — real
//! `clwb`/`sfence`, a counting shim, the crash simulator, or
//! [`MmapBackend`](nvtraverse_pmem::MmapBackend) over a persistent pool
//! file.
//!
//! ## Living in pool files — plural
//!
//! With the `nvtraverse-pool` crate, a structure's nodes live in a
//! memory-mapped pool file and survive process death — and pools are
//! **first-class**: open as many as you like in one process. Build a pool
//! with `Pool::builder()`, then use the typed-root API ([`TypedRoots`]):
//! `pool.create_root::<S>("name")` to create a named structure inside it,
//! `pool.root::<S>("name")` to attach + recover it after a restart — each
//! returns a [`PooledHandle`]. Every structure carries its own allocation
//! context ([`alloc::PoolCtx`]), so [`alloc::alloc_node`]/[`alloc::free`]
//! route each structure's node memory to *its* pool with no process-global
//! state (the paper's `libvmmalloc` single-heap takeover, §5.1, survives
//! only as a deprecated fallback). See `examples/pool_restart.rs`,
//! `tests/crash_process.rs`, and `nvtraverse_structures::sharded` for the
//! N-pools-at-once form.
//!
//! ## Example
//!
//! ```
//! use nvtraverse::policy::{Durability, NvTraverse, Volatile};
//! use nvtraverse_pmem::{Count, Noop, PCell, stats};
//!
//! // A shared cell read in a critical section: NVTraverse flushes it...
//! let cell: PCell<u64, Count<Noop>> = PCell::new(5);
//! let before = stats::snapshot();
//! let _ = NvTraverse::<Count<Noop>>::c_load(&cell);
//! assert!(stats::snapshot().since(before).flushes >= 1);
//!
//! // ...while the original algorithm does not.
//! let cell: PCell<u64, Noop> = PCell::new(5);
//! let _ = Volatile::c_load(&cell);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod detect;
pub mod marked;
pub mod model;
pub mod ops;
pub mod policy;
pub mod set;

pub use alloc::PoolCtx;
pub use detect::{ArmHandle, DetectablePool, OpError, OpToken};
pub use marked::MarkedPtr;
pub use pool::{OpId, OpOutcome};
pub use ops::{run_operation, Critical, PersistSet, TraversalOps};
pub use policy::{Durability, Izraelevitz, LinkPersist, NvTraverse, Soft, Volatile};
#[allow(deprecated)]
pub use set::PooledSet;
pub use set::{
    drain_collector, register_pool_tracer, restore_pool_tracer, DurableSet, PoolAttach,
    PoolTrace, PooledHandle, TypedRoots,
};

/// Convenience re-export of the persistence substrate.
pub use nvtraverse_pmem as pmem;

/// Convenience re-export of the persistent pool (file-backed heap).
pub use nvtraverse_pool as pool;

/// Convenience re-export of the epoch-based reclamation crate.
pub use nvtraverse_ebr as ebr;
