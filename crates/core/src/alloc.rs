//! Node allocation helpers: volatile heap by default, a persistent pool per
//! **allocation context**, with crash-simulator bookkeeping in both cases.
//!
//! Real NVRAM deployments allocate nodes from a persistent heap
//! (`libvmmalloc` in the paper's setup, §5.1); the allocation itself survives
//! a crash but its *contents* are only as persistent as the program's flushes
//! made them. This module follows the same shape:
//!
//! * By default, nodes come from the volatile Rust heap (`Box`) — correct
//!   for the simulator and for benchmarks that only need the flush/fence
//!   cost profile.
//! * A pool-backed structure carries a [`PoolCtx`] — its pool's allocation
//!   entry point, captured at `create_in_pool`/`attach_to_pool` time — and
//!   brackets its allocating operations with [`PoolCtx::enter`]. Inside the
//!   scope, [`alloc_node`] serves every node from *that structure's* pool
//!   file; structures living in different pools allocate correctly from
//!   different files **concurrently**, with no process-global state. (The
//!   deprecated `Pool::install_as_default` still works as a process-wide
//!   fallback for unscoped allocations.)
//! * [`free`] — together with the EBR collector's reclamation — returns each
//!   pointer to the heap that issued it, found via
//!   [`nvtraverse_pmem::heap::owner_of`]; no context needed, the address
//!   itself names the owner.
//!
//! The crash simulator mirrors a persistent heap by registering every word
//! of a new node with persisted value = poison: if the node becomes
//! reachable but was never flushed, a simulated crash visibly destroys it.
//!
//! # Scalability of the pool path
//!
//! [`alloc_node`] and [`free`] sit on the insert and remove hot paths of
//! every structure, so both stay off any global lock:
//!
//! * Entering a [`PoolCtx`] is one TLS swap; [`alloc_node`] then reaches
//!   the pool's **per-thread magazine** for the node's size class — a
//!   thread-local pop plus one header flush, whose ordering fence is
//!   deferred to the fence every durability policy already issues before
//!   durably publishing the node.
//! * [`free`] — and the EBR collector's deferred reclamation, which calls
//!   the same `owner_of` + dealloc pair per retired node — finds the owning
//!   heap via a lock-free search of the sorted region snapshot (one load
//!   plus `O(log #pools)` compares) and pushes the block into the *freeing*
//!   thread's magazine. EBR reclaims whole bags of retired nodes at once on
//!   whichever thread advances the epoch, so those frees batch naturally
//!   into that thread's magazines and drain back to the pool's sharded free
//!   lists in chunks, one CAS per chunk — remote frees never touch a global
//!   lock.

use nvtraverse_obs as obs;
use nvtraverse_pmem::heap::AllocTarget;
use nvtraverse_pmem::{heap, Backend};
use nvtraverse_pool::Pool;
use std::marker::PhantomData;

/// A structure's **allocation context**: which heap its nodes come from —
/// the volatile Rust heap ([`PoolCtx::volatile`], the default) or one
/// specific persistent pool ([`PoolCtx::of`]).
///
/// This is the value `PoolAttach` implementations capture at
/// `create_in_pool`/`attach_to_pool` and re-enter around every allocating
/// operation, which is what makes pools first-class: two structures in two
/// pools, used concurrently from the same thread or different threads, each
/// allocate from their own file. `Copy` and word-sized — carrying one per
/// structure costs nothing.
///
/// # Lifetime
///
/// A pooled context is **non-owning**: it must not be entered after the
/// last handle to its pool is dropped (the pool would be unmapped). The
/// `PooledHandle` lifecycle upholds this by construction — the handle owns
/// a pool handle for as long as the structure is reachable.
#[derive(Clone, Copy, Default)]
pub struct PoolCtx {
    target: Option<AllocTarget>,
    /// The pool's metric set, captured alongside the allocation target so
    /// every entered scope also attributes flushes/fences to the pool.
    metrics: Option<&'static obs::MetricSet>,
}

impl std::fmt::Debug for PoolCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCtx")
            .field("pooled", &self.target.is_some())
            .finish()
    }
}

impl PoolCtx {
    /// The no-pool context: entering it clears any scoped target, so
    /// allocations fall back to the deprecated process-wide installed pool
    /// if one exists, else the Rust heap (`Box`) — exactly the
    /// pre-multi-pool behaviour a legacy structure relies on. It does
    /// **not** pin `Box` against an installed fallback.
    pub const fn volatile() -> Self {
        PoolCtx {
            target: None,
            metrics: None,
        }
    }

    /// The context that allocates from `pool` (and attributes persistence
    /// traffic to `pool`'s metric set while entered).
    pub fn of(pool: &Pool) -> Self {
        PoolCtx {
            target: Some(pool.alloc_target()),
            metrics: Some(pool.metrics()),
        }
    }

    /// Snapshot of the allocation target in effect on this thread right
    /// now (an enclosing [`PoolCtx::enter`] scope, else the deprecated
    /// process-wide install, else volatile). Structure constructors call
    /// this so a structure built inside a pool scope *remembers* its pool.
    pub fn current() -> Self {
        PoolCtx {
            target: heap::current_target(),
            metrics: obs::current_target(),
        }
    }

    /// Whether this context targets a persistent pool.
    pub fn is_pooled(&self) -> bool {
        self.target.is_some()
    }

    /// Makes this context the thread's allocation target until the returned
    /// guard drops (scopes nest: the previous target is saved and
    /// restored). Pool-backed structures bracket their allocating
    /// operations with this; a [`PoolCtx::volatile`] context clears the
    /// scoped target for the scope's duration (allocations then fall back
    /// to the deprecated installed pool, else `Box` — see `volatile`).
    pub fn enter(&self) -> AllocScope {
        AllocScope {
            prev: heap::swap_scoped_target(self.target),
            // A pooled context attributes the scope's flushes/fences to its
            // pool. A volatile one leaves attribution alone — unlike the
            // allocation target, attribution has no correctness meaning, so
            // the nearest *explicit* `obs::attribute_to` keeps winning (a
            // Count-backend test attributing a volatile structure's ops to
            // a private set must not be silenced by the structure's own
            // volatile-ctx brackets).
            _obs: self.metrics.map(|m| obs::attribute_to(Some(m))),
            _not_send: PhantomData,
        }
    }
}

/// Guard of an entered [`PoolCtx`] — restores the thread's previous
/// allocation target on drop. Not `Send`: the restore must happen on the
/// thread that entered.
#[must_use = "the allocation scope ends when this guard drops"]
pub struct AllocScope {
    prev: Option<AllocTarget>,
    /// Attribution scope: flushes/fences inside the alloc scope are charged
    /// to the context's pool (restored to the previous target on drop).
    /// `None` for a volatile context — see [`PoolCtx::enter`].
    _obs: Option<obs::TargetScope>,
    _not_send: PhantomData<*mut ()>,
}

impl std::fmt::Debug for AllocScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocScope").finish()
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        heap::swap_scoped_target(self.prev);
    }
}

/// Allocates `value` as a node — from the thread's current allocation
/// target (an entered [`PoolCtx`] scope, else the deprecated process-wide
/// installed pool, else the volatile heap) — and, under a simulating
/// backend, registers the node's memory with the thread's simulation
/// context.
///
/// The returned pointer is owned by the data structure; free it with
/// [`Guard::retire`](nvtraverse_ebr::Guard::retire) after unlinking (or
/// [`free`] during teardown).
///
/// # Panics
///
/// Panics when the targeted persistent pool is exhausted: silently falling
/// back to the volatile heap would split one structure across two heaps and
/// lose the volatile part on reopen. Structures that surface exhaustion as
/// a recoverable error use [`try_alloc_node`] instead.
#[inline]
pub fn alloc_node<T, B: Backend>(value: T) -> *mut T {
    try_alloc_node::<T, B>(value)
        .expect("persistent pool exhausted (and volatile fallback would lose data)")
}

thread_local! {
    /// Set by [`try_alloc_node`] on pool exhaustion; structure `critical`
    /// sections cannot return errors through the operation driver, so they
    /// leave this flag for the calling `try_insert`/`try_*` wrapper to
    /// translate into an `OpError::PoolFull`.
    static POOL_FULL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Clears the thread's pool-exhaustion flag; call before running an
/// operation whose outcome should be checked with [`pool_full_seen`].
#[inline]
pub fn clear_pool_full() {
    POOL_FULL.with(|f| f.set(false));
}

/// Whether [`try_alloc_node`] hit pool exhaustion on this thread since the
/// last [`clear_pool_full`].
#[inline]
pub fn pool_full_seen() -> bool {
    POOL_FULL.with(|f| f.get())
}

/// [`alloc_node`], but pool exhaustion returns `None` (with the thread's
/// pool-full flag set and the pool's `pool_full` obs counter bumped)
/// instead of panicking: nothing is allocated and the volatile heap is
/// **not** used as a fallback — a full pool must surface as a recoverable
/// error, never as a structure silently split across two heaps. Volatile
/// allocations (`Box`) never fail this way.
#[inline]
pub fn try_alloc_node<T, B: Backend>(value: T) -> Option<*mut T> {
    let ptr = match heap::current_target() {
        Some(t) => {
            // SAFETY: the target pair was published together by its pool.
            let p =
                unsafe { (t.alloc)(t.ctx, std::mem::size_of::<T>(), std::mem::align_of::<T>()) }
                    as *mut T;
            if p.is_null() {
                POOL_FULL.with(|f| f.set(true));
                // The entered PoolCtx attributed this thread to its pool's
                // metric set, so the refusal is charged to the right pool.
                if let Some(m) = obs::current_target() {
                    m.add(obs::Counter::PoolFull, 1);
                }
                return None;
            }
            // SAFETY: the pool returned a block of at least size_of::<T>()
            // bytes with sufficient alignment.
            unsafe { p.write(value) };
            p
        }
        None => Box::into_raw(Box::new(value)),
    };
    if B::SIM {
        nvtraverse_pmem::sim::current_register_range(ptr as usize, std::mem::size_of::<T>());
    }
    Some(ptr)
}

/// Frees a node allocated by [`alloc_node`], returning it to whichever heap
/// issued it (persistent pool or volatile heap).
///
/// Under a simulating backend the node's **entire** registered range is
/// removed from the crash simulator before the memory is returned — the
/// `PCell` destructors only cover the cell words, and non-cell words (keys,
/// flags, padding) would otherwise linger as dangling registrations that a
/// later rollback writes through.
///
/// # Safety
///
/// `ptr` must come from [`alloc_node`], must not be reachable by any thread,
/// and must not be freed twice.
#[inline]
pub unsafe fn free<T>(ptr: *mut T) {
    nvtraverse_pmem::sim::current_deregister_range_if_active(
        ptr as usize,
        std::mem::size_of::<T>(),
    );
    if let Some((ctx, dealloc)) = heap::owner_of(ptr as *const u8) {
        unsafe {
            std::ptr::drop_in_place(ptr);
            dealloc(
                ctx,
                ptr as *mut u8,
                std::mem::size_of::<T>(),
                std::mem::align_of::<T>(),
            );
        }
    } else {
        drop(unsafe { Box::from_raw(ptr) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{Noop, PCell, Sim, SimHandle, POISON};

    struct Node<B: Backend> {
        a: PCell<u64, B>,
        b: PCell<u64, B>,
    }

    #[test]
    fn alloc_without_sim_needs_no_context() {
        let p = alloc_node::<_, Noop>(Node::<Noop> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        unsafe {
            assert_eq!((*p).a.load(), 1);
            free(p);
        }
    }

    #[test]
    fn sim_alloc_registers_every_word_as_unpersisted() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        assert_eq!(sim.tracked_cells(), 2);
        // Never flushed: a crash poisons the whole node.
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.peek_bits(), POISON);
            assert_eq!((*p).b.peek_bits(), POISON);
            free(p);
        }
        assert_eq!(sim.tracked_cells(), 0, "free must deregister the cells");
    }

    #[test]
    fn sim_alloc_then_flush_survives_crash() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(7),
            b: PCell::new(8),
        });
        <Sim as Backend>::flush_range(p as *const u8, std::mem::size_of::<Node<Sim>>());
        <Sim as Backend>::fence();
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.load(), 7);
            assert_eq!((*p).b.load(), 8);
            free(p);
        }
    }

    #[test]
    fn ebr_reclaim_deregisters_the_whole_node() {
        // A node with a non-cell word: the `PCell` destructor alone would
        // leave `key`'s registration dangling after reclamation.
        struct Mixed {
            cell: PCell<u64, Sim>,
            key: u64,
        }
        let sim = SimHandle::new();
        let _g = sim.enter();
        let baseline = sim.tracked_cells();
        let c = nvtraverse_ebr::Collector::new();
        {
            let g = c.pin();
            let p = alloc_node::<_, Sim>(Mixed {
                cell: PCell::new(1),
                key: 2,
            });
            unsafe { (*p).cell.store(3) };
            let _ = unsafe { (*p).key };
            assert!(sim.tracked_cells() > baseline);
            unsafe { g.retire(p) };
        }
        crate::drain_collector(&c);
        assert_eq!(
            sim.tracked_cells(),
            baseline,
            "reclaimed node left dangling Sim registrations"
        );
    }

    #[test]
    fn foreign_heap_pointers_route_back_to_their_heap() {
        // A fake foreign heap: hands out boxed blocks, records frees.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static FREED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn fake_dealloc(_ctx: usize, ptr: *mut u8, size: usize, align: usize) {
            FREED.fetch_add(1, Ordering::SeqCst);
            unsafe {
                std::alloc::dealloc(ptr, std::alloc::Layout::from_size_align(size, align).unwrap())
            };
        }
        let layout = std::alloc::Layout::new::<Node<Noop>>();
        let p = unsafe { std::alloc::alloc(layout) } as *mut Node<Noop>;
        unsafe {
            p.write(Node {
                a: PCell::new(1),
                b: PCell::new(2),
            })
        };
        heap::register_region(p as usize, layout.size(), 0, fake_dealloc);
        unsafe { free(p) };
        assert_eq!(FREED.load(Ordering::SeqCst), 1, "foreign dealloc not used");
        heap::unregister_region(p as usize);
    }
}
