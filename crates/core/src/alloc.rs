//! Node allocation helpers: volatile heap by default, a persistent pool when
//! one is installed, with crash-simulator bookkeeping in both cases.
//!
//! Real NVRAM deployments allocate nodes from a persistent heap
//! (`libvmmalloc` in the paper's setup, §5.1); the allocation itself survives
//! a crash but its *contents* are only as persistent as the program's flushes
//! made them. This module follows the same shape:
//!
//! * By default, nodes come from the volatile Rust heap (`Box`) — correct
//!   for the simulator and for benchmarks that only need the flush/fence
//!   cost profile.
//! * When a `nvtraverse-pool` pool is installed as the process-wide
//!   allocator (`Pool::install_as_default`, the `libvmmalloc` analogue),
//!   [`alloc_node`] serves every node from the pool file instead, and
//!   [`free`] — together with the EBR collector's reclamation — returns each
//!   pointer to the heap that issued it, found via
//!   [`nvtraverse_pmem::heap::owner_of`].
//!
//! The crash simulator mirrors a persistent heap by registering every word
//! of a new node with persisted value = poison: if the node becomes
//! reachable but was never flushed, a simulated crash visibly destroys it.
//!
//! # Scalability of the pool path
//!
//! With a pool installed, [`alloc_node`] and [`free`] sit on the insert and
//! remove hot paths of every structure, so both stay off any global lock:
//!
//! * [`alloc_node`] reaches the pool's **per-thread magazine** for the
//!   node's size class — a thread-local pop plus one header flush, whose
//!   ordering fence is deferred to the fence every durability policy
//!   already issues before durably publishing the node.
//! * [`free`] — and the EBR collector's deferred reclamation, which calls
//!   the same `owner_of` + dealloc pair per retired node — finds the owning
//!   heap via an O(1) address-range check (`heap::owner_of`'s single-region
//!   fast path) and pushes the block into the *freeing* thread's magazine.
//!   EBR reclaims whole bags of retired nodes at once on whichever thread
//!   advances the epoch, so those frees batch naturally into that thread's
//!   magazines and drain back to the pool's sharded free lists in chunks,
//!   one CAS per chunk — remote frees never touch a global lock.

use nvtraverse_pmem::{heap, Backend};

/// Allocates `value` as a node — from the installed persistent pool when one
/// is present, from the volatile heap otherwise — and, under a simulating
/// backend, registers the node's memory with the thread's simulation context.
///
/// The returned pointer is owned by the data structure; free it with
/// [`Guard::retire`](nvtraverse_ebr::Guard::retire) after unlinking (or
/// [`free`] during teardown).
///
/// # Panics
///
/// Panics when a persistent pool is installed but exhausted: silently
/// falling back to the volatile heap would split one structure across two
/// heaps and lose the volatile part on reopen.
#[inline]
pub fn alloc_node<T, B: Backend>(value: T) -> *mut T {
    let pooled = if heap::allocator_installed() {
        match heap::allocate(std::mem::size_of::<T>(), std::mem::align_of::<T>()) {
            Some(p) => Some(p as *mut T),
            // None while still installed = genuinely out of space; None
            // after a concurrent uninstall = no pool anymore, Box is right.
            None if heap::allocator_installed() => {
                panic!("persistent pool exhausted (and volatile fallback would lose data)")
            }
            None => None,
        }
    } else {
        None
    };
    let ptr = match pooled {
        Some(p) => {
            // SAFETY: the pool returned a block of at least size_of::<T>()
            // bytes with sufficient alignment.
            unsafe { p.write(value) };
            p
        }
        None => Box::into_raw(Box::new(value)),
    };
    if B::SIM {
        nvtraverse_pmem::sim::current_register_range(ptr as usize, std::mem::size_of::<T>());
    }
    ptr
}

/// Frees a node allocated by [`alloc_node`], returning it to whichever heap
/// issued it (persistent pool or volatile heap).
///
/// Under a simulating backend the node's cells deregister themselves as they
/// drop, so no extra bookkeeping is needed here.
///
/// # Safety
///
/// `ptr` must come from [`alloc_node`], must not be reachable by any thread,
/// and must not be freed twice.
#[inline]
pub unsafe fn free<T>(ptr: *mut T) {
    if let Some((ctx, dealloc)) = heap::owner_of(ptr as *const u8) {
        unsafe {
            std::ptr::drop_in_place(ptr);
            dealloc(
                ctx,
                ptr as *mut u8,
                std::mem::size_of::<T>(),
                std::mem::align_of::<T>(),
            );
        }
    } else {
        drop(unsafe { Box::from_raw(ptr) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{Noop, PCell, Sim, SimHandle, POISON};

    struct Node<B: Backend> {
        a: PCell<u64, B>,
        b: PCell<u64, B>,
    }

    #[test]
    fn alloc_without_sim_needs_no_context() {
        let p = alloc_node::<_, Noop>(Node::<Noop> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        unsafe {
            assert_eq!((*p).a.load(), 1);
            free(p);
        }
    }

    #[test]
    fn sim_alloc_registers_every_word_as_unpersisted() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        assert_eq!(sim.tracked_cells(), 2);
        // Never flushed: a crash poisons the whole node.
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.peek_bits(), POISON);
            assert_eq!((*p).b.peek_bits(), POISON);
            free(p);
        }
        assert_eq!(sim.tracked_cells(), 0, "free must deregister the cells");
    }

    #[test]
    fn sim_alloc_then_flush_survives_crash() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(7),
            b: PCell::new(8),
        });
        <Sim as Backend>::flush_range(p as *const u8, std::mem::size_of::<Node<Sim>>());
        <Sim as Backend>::fence();
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.load(), 7);
            assert_eq!((*p).b.load(), 8);
            free(p);
        }
    }

    #[test]
    fn foreign_heap_pointers_route_back_to_their_heap() {
        // A fake foreign heap: hands out boxed blocks, records frees.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static FREED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn fake_dealloc(_ctx: usize, ptr: *mut u8, size: usize, align: usize) {
            FREED.fetch_add(1, Ordering::SeqCst);
            unsafe {
                std::alloc::dealloc(ptr, std::alloc::Layout::from_size_align(size, align).unwrap())
            };
        }
        let layout = std::alloc::Layout::new::<Node<Noop>>();
        let p = unsafe { std::alloc::alloc(layout) } as *mut Node<Noop>;
        unsafe {
            p.write(Node {
                a: PCell::new(1),
                b: PCell::new(2),
            })
        };
        heap::register_region(p as usize, layout.size(), 0, fake_dealloc);
        unsafe { free(p) };
        assert_eq!(FREED.load(Ordering::SeqCst), 1, "foreign dealloc not used");
        heap::unregister_region(p as usize);
    }
}
