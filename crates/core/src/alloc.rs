//! Node allocation helpers with crash-simulator bookkeeping.
//!
//! Real NVRAM deployments allocate nodes from a persistent heap
//! (`libvmmalloc` in the paper's setup, §5.1); the allocation itself survives
//! a crash but its *contents* are only as persistent as the program's flushes
//! made them. The crash simulator mirrors this by registering every word of a
//! new node with persisted value = poison: if the node becomes reachable but
//! was never flushed, a simulated crash visibly destroys it.

use nvtraverse_pmem::Backend;

/// Heap-allocates `value` and, under a simulating backend, registers the
/// node's memory with the thread's active simulation context.
///
/// The returned pointer is owned by the data structure; free it with
/// [`Guard::retire`](nvtraverse_ebr::Guard::retire) after unlinking (or
/// [`free`] during teardown).
pub fn alloc_node<T, B: Backend>(value: T) -> *mut T {
    let ptr = Box::into_raw(Box::new(value));
    if B::SIM {
        nvtraverse_pmem::sim::current_register_range(ptr as usize, std::mem::size_of::<T>());
    }
    ptr
}

/// Frees a node allocated by [`alloc_node`].
///
/// Under a simulating backend the node's cells deregister themselves as they
/// drop, so no extra bookkeeping is needed here.
///
/// # Safety
///
/// `ptr` must come from [`alloc_node`], must not be reachable by any thread,
/// and must not be freed twice.
pub unsafe fn free<T>(ptr: *mut T) {
    drop(unsafe { Box::from_raw(ptr) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{Noop, PCell, Sim, SimHandle, POISON};

    struct Node<B: Backend> {
        a: PCell<u64, B>,
        b: PCell<u64, B>,
    }

    #[test]
    fn alloc_without_sim_needs_no_context() {
        let p = alloc_node::<_, Noop>(Node::<Noop> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        unsafe {
            assert_eq!((*p).a.load(), 1);
            free(p);
        }
    }

    #[test]
    fn sim_alloc_registers_every_word_as_unpersisted() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(1),
            b: PCell::new(2),
        });
        assert_eq!(sim.tracked_cells(), 2);
        // Never flushed: a crash poisons the whole node.
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.peek_bits(), POISON);
            assert_eq!((*p).b.peek_bits(), POISON);
            free(p);
        }
        assert_eq!(sim.tracked_cells(), 0, "free must deregister the cells");
    }

    #[test]
    fn sim_alloc_then_flush_survives_crash() {
        let sim = SimHandle::new();
        let _g = sim.enter();
        let p = alloc_node::<_, Sim>(Node::<Sim> {
            a: PCell::new(7),
            b: PCell::new(8),
        });
        <Sim as Backend>::flush_range(p as *const u8, std::mem::size_of::<Node<Sim>>());
        <Sim as Backend>::fence();
        unsafe { sim.crash_and_rollback() };
        unsafe {
            assert_eq!((*p).a.load(), 7);
            assert_eq!((*p).b.load(), 8);
            free(p);
        }
    }
}
