//! Client-side **detectable operations**: tokens, arming, and
//! linearization-point publication.
//!
//! The persistent half — the per-pool operation-descriptor table, its
//! layout, and the recovery-time classification — lives in
//! [`pool::optable`](crate::pool::optable); read its module docs first.
//! This module is the volatile machinery a structure threads through its
//! traversal/critical pipeline to drive one descriptor slot:
//!
//! * [`OpToken`] — a client's claim on one descriptor slot (one token per
//!   registered client, typically per thread). [`OpToken::begin_insert`] /
//!   [`OpToken::begin_remove`] mint the next sequence number and hand back
//!   an [`ArmHandle`].
//! * [`ArmHandle::arm`] — called inside the structure's `critical` section,
//!   immediately before the linearizing CAS: writes the descriptor's intent
//!   words (seq, kind, key, value, target tag) and flushes them. No fence
//!   of its own: the linearizing
//!   [`c_cas_link`](crate::policy::Durability::c_cas_link)'s pre-CAS fence
//!   is what orders the armed descriptor before the operation's effect, so
//!   the common path pays **+1 flush, +0 fences** here. Re-arming after a
//!   CAS-failure `Restart` rewrites the same words — idempotent.
//! * [`ArmHandle::publish`] — called at the linearization point (or the
//!   no-op decision point): CASes the result word to the sequence-stamped
//!   outcome and flushes it, ordered durable by the operation's closing
//!   [`before_return`](crate::policy::Durability::before_return) fence —
//!   again **+1 flush, +0 fences**.
//!
//! After a crash, [`Pool::op_outcome`](crate::pool::Pool::op_outcome)
//! answers whether the operation took effect; the structure's re-attached
//! lookup settles the cases the descriptor alone cannot (see
//! `pool::optable`).
//!
//! [`OpTable`] is a heap-backed stand-in for the pool table with identical
//! slot layout, for `Sim`-backend crash sweeps (pools never run on `Sim`).

use crate::pool::optable::{
    descriptor_check, encode_result, OpId, OPW_CHECK, OPW_KEY, OPW_KIND, OPW_RESULT, OPW_SEQ,
    OPW_TARGET, OPW_VALUE, OP_KIND_INSERT, OP_KIND_REMOVE, OP_RESULT_APPLIED, OP_RESULT_NOOP,
    OP_SLOT_WORDS,
};
use crate::pool::{Pool, RawOp};
use nvtraverse_pmem::Backend;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a structure operation could not run (both variants are recoverable:
/// the structure stays fully usable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The structure does not implement detectable operations.
    Unsupported,
    /// The persistent pool is exhausted: the operation allocated nothing
    /// and changed nothing. Free capacity (remove entries, or grow into a
    /// larger pool) and retry.
    PoolFull,
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Unsupported => write!(f, "structure does not support detectable operations"),
            OpError::PoolFull => write!(f, "persistent pool exhausted"),
        }
    }
}

impl std::error::Error for OpError {}

/// A client's claim on one descriptor slot: the volatile face of a
/// persistent slot obtained from [`Pool::op_token`] (or
/// [`OpTable::token`] in `Sim` tests).
///
/// `&mut` methods enforce the slot's single-writer discipline; the token is
/// `Send` (hand it to the owning thread) but deliberately not `Sync`.
#[derive(Debug)]
pub struct OpToken {
    base: *mut u64,
    slot: u16,
    /// Sequence number of the last operation begun through this token
    /// (volatile mirror of the slot's durable `seq` word).
    seq: u64,
}

// SAFETY: the slot memory is plain shared memory owned by this token's
// single writer; moving the writer to another thread is fine.
unsafe impl Send for OpToken {}

impl OpToken {
    /// Wraps a raw descriptor slot: `(slot index, slot base, last durable
    /// sequence number)` as returned by
    /// [`Pool::register_op_token_raw`](crate::pool::Pool::register_op_token_raw).
    pub fn from_raw(slot: u16, base: *mut u64, seq: u64) -> OpToken {
        OpToken { base, slot, seq }
    }

    /// The descriptor slot this token writes.
    pub fn slot(&self) -> u16 {
        self.slot
    }

    /// The identity of the last operation begun through this token, if any.
    pub fn last_op(&self) -> Option<OpId> {
        (self.seq > 0).then(|| OpId::new(self.slot, self.seq))
    }

    /// Mints the next sequence number for one insert and returns the handle
    /// the structure arms and publishes with. Nothing is written until
    /// [`ArmHandle::arm`].
    pub fn begin_insert(&mut self, key_bits: u64, value_bits: u64) -> ArmHandle {
        self.begin(OP_KIND_INSERT, key_bits, value_bits)
    }

    /// Mints the next sequence number for one remove.
    pub fn begin_remove(&mut self, key_bits: u64) -> ArmHandle {
        self.begin(OP_KIND_REMOVE, key_bits, 0)
    }

    fn begin(&mut self, kind: u64, key_bits: u64, value_bits: u64) -> ArmHandle {
        self.seq += 1;
        ArmHandle {
            base: self.base,
            id: OpId::new(self.slot, self.seq),
            kind,
            key: key_bits,
            value: value_bits,
        }
    }
}

/// One in-flight detectable operation: the writer of one descriptor slot
/// for one sequence number. `Copy` so structures can thread it through
/// their operation `Input` and retry loops freely.
#[derive(Debug, Clone, Copy)]
pub struct ArmHandle {
    base: *mut u64,
    id: OpId,
    kind: u64,
    key: u64,
    value: u64,
}

// SAFETY: same single-writer slot memory as OpToken.
unsafe impl Send for ArmHandle {}

impl ArmHandle {
    /// The durable identity this operation will have.
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The op-tag word an insert stamps into its new node
    /// ([`OpId::to_bits`] — never 0 for a real operation).
    pub fn tag(&self) -> u64 {
        self.id.to_bits()
    }

    /// Writes and flushes the descriptor's intent words — seq, kind, key,
    /// value, and `target_tag` (the removed node's op tag; [`OP_TARGET_MISS`]
    /// when a remove armed against an absent key; 0 for inserts).
    ///
    /// Call inside `critical`, before the linearizing CAS: that CAS's
    /// pre-fence (or, on the no-op paths, the closing `before_return`
    /// fence) is what makes the armed words durable — arming itself adds no
    /// fence. The stale result word is deliberately *not* flushed: its
    /// embedded sequence number already distinguishes it from this
    /// operation. Idempotent across `Restart` retries.
    ///
    /// [`OP_TARGET_MISS`]: crate::pool::optable::OP_TARGET_MISS
    pub fn arm<B: Backend>(&self, target_tag: u64) {
        slot_write::<B>(self.base, OPW_KIND, self.kind);
        slot_write::<B>(self.base, OPW_KEY, self.key);
        slot_write::<B>(self.base, OPW_VALUE, self.value);
        slot_write::<B>(self.base, OPW_TARGET, target_tag);
        slot_write::<B>(
            self.base,
            OPW_CHECK,
            descriptor_check(self.id.seq(), self.kind, self.key, self.value, target_tag),
        );
        slot_write::<B>(self.base, OPW_SEQ, self.id.seq());
        // Torn-arm safety: the 8-byte words persist individually (Sim rolls
        // back per word; hardware guarantees 8-byte failure atomicity), so a
        // crash during the fence that would have made this arm durable can
        // persist any subset of the words — including this arm's payload
        // under the *previous* arm's sequence number. The checksum word lets
        // recovery detect every such tear ([`RawOp::intact`]): a torn
        // descriptor's operation never linearized (a fence strictly precedes
        // the linearizing CAS), so classification falls back to the result
        // word, which arming never touches and which the previous operation
        // left durable. One flush covers words 0..=4 plus the checksum: the
        // slot is 64-byte-aligned, so they share a cache line (Sim flushes
        // per word — strictly more adversarial, never less durable). The
        // stale result word (the word after the checksum) is deliberately
        // not flushed.
        //
        // [`RawOp::intact`]: crate::pool::RawOp::intact
        B::flush_range(self.base as *const u8, (OPW_CHECK + 1) * 8);
    }

    /// CAS-publishes the sequence-stamped outcome into the result word and
    /// flushes it: the detectable layer's linearization-point publication.
    /// `applied` is `false` for the no-op outcomes (duplicate insert,
    /// remove miss). Ordered durable by the operation's closing
    /// `before_return` fence; adds no fence of its own.
    pub fn publish<B: Backend>(&self, applied: bool) {
        let code = if applied {
            OP_RESULT_APPLIED
        } else {
            OP_RESULT_NOOP
        };
        let word = encode_result(self.id.seq(), code);
        // SAFETY: in-bounds slot word, 8-aligned, shared memory.
        let cell = unsafe { AtomicU64::from_ptr(self.base.add(OPW_RESULT)) };
        let seen = cell.load(Ordering::Relaxed);
        if seen != word {
            if B::SIM {
                // Route through the simulator's write tracking (single
                // writer per slot, so the plain store is race-free).
                slot_write::<B>(self.base, OPW_RESULT, word);
            } else {
                // Single writer per slot: failure means an idempotent retry
                // already published this very word.
                let _ = cell.compare_exchange(seen, word, Ordering::Relaxed, Ordering::Relaxed);
            }
        }
        B::flush(unsafe { self.base.add(OPW_RESULT) } as *const u8);
    }
}

/// One descriptor-word store, visible to the crash simulator: raw volatile
/// on real backends; on `Sim` it must be a *tracked* write, otherwise the
/// simulator's flush-version monotonicity silently discards every later
/// flush of the cell and the descriptor never persists.
#[inline]
fn slot_write<B: Backend>(base: *mut u64, word: usize, bits: u64) {
    if B::SIM {
        nvtraverse_pmem::sim::current_tracked_write(unsafe { base.add(word) } as usize, bits);
    } else {
        unsafe { base.add(word).write_volatile(bits) };
    }
}

/// Extension trait: mint [`OpToken`]s from a [`Pool`]'s descriptor table.
pub trait DetectablePool {
    /// Claims the next free descriptor slot as a typed token (one per
    /// client; slots are never reused within a pool file's lifetime).
    ///
    /// # Errors
    ///
    /// Fails when the pool is exhausted, out of descriptor slots, or
    /// rebased — see
    /// [`Pool::register_op_token_raw`](crate::pool::Pool::register_op_token_raw).
    fn op_token(&self) -> std::io::Result<OpToken>;
}

impl DetectablePool for Pool {
    fn op_token(&self) -> std::io::Result<OpToken> {
        let (slot, base, seq) = self.register_op_token_raw()?;
        Ok(OpToken::from_raw(slot, base, seq))
    }
}

/// A heap-backed descriptor table with the pool table's exact slot layout,
/// for backends that never see a real pool — above all `Sim` crash sweeps,
/// where the table memory is registered with the active simulation so
/// un-flushed descriptor words roll back at a simulated crash exactly like
/// structure memory.
pub struct OpTable<B: Backend> {
    slots: Box<[SlotLine]>,
    _backend: std::marker::PhantomData<fn() -> B>,
}

/// One slot, padded and aligned to its own cache line so flush accounting
/// matches the pool table's.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct SlotLine([u64; OP_SLOT_WORDS]);

impl<B: Backend> fmt::Debug for OpTable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpTable")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl<B: Backend> OpTable<B> {
    /// Allocates a zeroed table of `slots` descriptor slots and persists
    /// the zeroed state (a simulated crash must roll untouched slots back
    /// to zero, not to poison).
    pub fn new(slots: usize) -> OpTable<B> {
        let lines = vec![SlotLine([0; OP_SLOT_WORDS]); slots].into_boxed_slice();
        let table = OpTable {
            slots: lines,
            _backend: std::marker::PhantomData,
        };
        let (addr, len) = table.region();
        if B::SIM {
            nvtraverse_pmem::sim::current_register_range(addr, len);
        }
        B::flush_range(addr as *const u8, len);
        B::fence();
        table
    }

    fn region(&self) -> (usize, usize) {
        (
            self.slots.as_ptr() as usize,
            self.slots.len() * std::mem::size_of::<SlotLine>(),
        )
    }

    fn base(&self, slot: usize) -> *mut u64 {
        assert!(slot < self.slots.len(), "op table slot out of range");
        self.slots[slot].0.as_ptr() as *mut u64
    }

    /// A token for `slot`, its sequence number re-read from the (possibly
    /// crash-rolled-back) slot memory — call again after a simulated crash
    /// to resume the slot where the surviving state says it is. Resumes
    /// past the slot's latest durable sequence number from *either* half
    /// of the descriptor ([`RawOp::latest_seq`]): the result word can run
    /// ahead of the arm words on the no-op paths.
    pub fn token(&self, slot: usize) -> OpToken {
        let seq = self.raw(slot).map_or(0, |raw| raw.latest_seq());
        OpToken::from_raw(slot as u16, self.base(slot), seq)
    }

    /// Reads `slot` back as the recovery-side [`RawOp`], or `None` while no
    /// operation ever durably recorded itself in it (neither an armed
    /// sequence number nor a published result) — the same words
    /// `Pool::open`'s snapshot would see.
    pub fn raw(&self, slot: usize) -> Option<RawOp> {
        let base = self.base(slot);
        let read = |w: usize| unsafe { base.add(w).read_volatile() };
        let seq = read(OPW_SEQ);
        (seq > 0 || read(OPW_RESULT) > 0).then(|| RawOp {
            slot: slot as u16,
            seq,
            kind: read(OPW_KIND),
            key: read(OPW_KEY),
            value: read(OPW_VALUE),
            target_tag: read(OPW_TARGET),
            result: read(OPW_RESULT),
            check: read(OPW_CHECK),
        })
    }
}

impl<B: Backend> Drop for OpTable<B> {
    fn drop(&mut self) {
        if B::SIM {
            let (addr, len) = self.region();
            nvtraverse_pmem::sim::current_deregister_range(addr, len);
        }
    }
}
