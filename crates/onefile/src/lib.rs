//! A redo-log persistent transactional memory in the spirit of **OneFile**
//! (Ramalhete, Correia, Felber, Cohen — DSN 2019), the PTM baseline of the
//! paper's evaluation (§5, the "Onefile" series).
//!
//! ## Substitution note (see DESIGN.md)
//!
//! Real OneFile is a *wait-free* PTM built on per-word CAS aggregation. This
//! crate implements the same architectural shape with a simpler concurrency
//! control, preserving exactly the performance profile the paper measures:
//!
//! * **read-only transactions are nearly free** — optimistic seqlock reads
//!   with no writes at all, which is why "OneFile does extremely well in
//!   read-only workloads. This is because OneFile is optimized for such
//!   workloads" (§5.2);
//! * **update transactions serialize and double-write** — a writer takes the
//!   single writer lock, persists a redo log (flush per entry + fence),
//!   publishes a commit marker (flush + fence), applies the writes in place
//!   (flush per word + fence) and retires the log — the 2× write
//!   amplification plus serialization that make the PTM lose to NVTraverse
//!   by growing factors as the update percentage rises.
//!
//! Recovery replays a committed-but-unapplied log, giving failure atomicity
//! for whole transactions.
//!
//! [`TmList`] and [`TmBst`] are the set structures built on the PTM for the
//! list and BST figures.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use nvtraverse_pmem::{Backend, PCell, Word};
use parking_lot::Mutex;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum redo-log entries per transaction (set operations write a handful
/// of words; 64 leaves generous headroom).
pub const LOG_CAPACITY: usize = 64;

/// One persistent redo-log slot.
#[repr(C)]
struct LogSlot<B: Backend> {
    addr: PCell<u64, B>,
    value: PCell<u64, B>,
}

/// The persistent transaction engine.
#[repr(C)]
pub struct Ptm<B: Backend> {
    /// Seqlock word: even = stable, odd = update in progress.
    seq: AtomicU64,
    /// Writers serialize (OneFile aggregates writers; the serialization
    /// point is preserved, the mechanism simplified).
    writer: Mutex<()>,
    /// Persistent redo log.
    log: Box<[LogSlot<B>]>,
    /// Persistent number of valid log entries.
    log_len: PCell<u64, B>,
    /// Persistent commit marker: non-zero ⇒ the log must be (re)applied.
    committed: PCell<u64, B>,
    _marker: PhantomData<fn() -> B>,
}

// SAFETY: all mutable state is atomic or guarded by the writer lock.
unsafe impl<B: Backend> Send for Ptm<B> {}
unsafe impl<B: Backend> Sync for Ptm<B> {}

impl<B: Backend> fmt::Debug for Ptm<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ptm")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// A write set collected by an update transaction.
pub struct Tx<'p, B: Backend> {
    ptm: &'p Ptm<B>,
    writes: Vec<(usize, u64)>,
}

impl<B: Backend> fmt::Debug for Tx<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tx")
            .field("writes", &self.writes.len())
            .finish()
    }
}

impl<B: Backend> Tx<'_, B> {
    /// Transactional read: the latest value, including this transaction's
    /// own pending writes (read-your-writes).
    pub fn read<T: Word>(&self, cell: &PCell<T, B>) -> T {
        let addr = cell.addr() as usize;
        for &(a, v) in self.writes.iter().rev() {
            if a == addr {
                return T::from_bits(v);
            }
        }
        cell.load()
    }

    /// Transactional write: buffered in the redo log until commit.
    ///
    /// # Panics
    ///
    /// Panics if the transaction exceeds [`LOG_CAPACITY`] writes.
    pub fn write<T: Word>(&mut self, cell: &PCell<T, B>, value: T) {
        assert!(
            self.writes.len() < LOG_CAPACITY,
            "transaction write set exceeds LOG_CAPACITY"
        );
        self.writes.push((cell.addr() as usize, value.to_bits()));
        let _ = self.ptm; // the lifetime ties writes to this engine
    }
}

impl<B: Backend> Default for Ptm<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Backend> Ptm<B> {
    /// Creates a fresh engine with an empty, persisted log area.
    pub fn new() -> Self {
        let log: Vec<LogSlot<B>> = (0..LOG_CAPACITY)
            .map(|_| LogSlot {
                addr: PCell::new(0),
                value: PCell::new(0),
            })
            .collect();
        let ptm = Ptm {
            seq: AtomicU64::new(0),
            writer: Mutex::new(()),
            log: log.into_boxed_slice(),
            log_len: PCell::new(0),
            committed: PCell::new(0),
            _marker: PhantomData,
        };
        B::flush(ptm.committed.addr());
        B::fence();
        ptm
    }

    /// Runs a read-only transaction. `f` may observe a torn state mid-run
    /// (it is re-executed until it runs entirely between two identical even
    /// seqlock readings), so it must not have side effects.
    pub fn read_txn<R>(&self, f: impl Fn() -> R) -> R {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let r = f();
            if self.seq.load(Ordering::Acquire) == s1 {
                return r;
            }
        }
    }

    /// Runs an update transaction: `f` buffers writes in the [`Tx`]; commit
    /// persists the redo log, marks it committed, applies it in place, and
    /// retires it — each stage fenced, so a crash anywhere yields either the
    /// whole transaction or none of it.
    pub fn update_txn<R>(&self, f: impl FnOnce(&mut Tx<'_, B>) -> R) -> R {
        let _g = self.writer.lock();
        let mut tx = Tx {
            ptm: self,
            writes: Vec::with_capacity(8),
        };
        let r = f(&mut tx);
        if tx.writes.is_empty() {
            return r;
        }
        // Stage 1: persist the redo log.
        for (i, &(addr, value)) in tx.writes.iter().enumerate() {
            self.log[i].addr.store(addr as u64);
            self.log[i].value.store(value);
            B::flush(self.log[i].addr.addr());
            B::flush(self.log[i].value.addr());
        }
        self.log_len.store(tx.writes.len() as u64);
        B::flush(self.log_len.addr());
        B::fence();
        // Stage 2: commit point.
        self.committed.store(1);
        B::flush(self.committed.addr());
        B::fence();
        // Stage 3: apply in place (readers are fenced off by the seqlock).
        self.seq.fetch_add(1, Ordering::AcqRel);
        for &(addr, value) in &tx.writes {
            let cell = unsafe { &*(addr as *const PCell<u64, B>) };
            cell.store(value);
            B::flush(cell.addr());
        }
        B::fence();
        self.seq.fetch_add(1, Ordering::AcqRel);
        // Stage 4: retire the log.
        self.committed.store(0);
        B::flush(self.committed.addr());
        B::fence();
        r
    }

    /// Post-crash recovery: if the commit marker is set, the transaction had
    /// committed but may be partially applied — replay the persisted log.
    pub fn recover(&self) {
        if self.committed.load() == 0 {
            return;
        }
        let n = self.log_len.load() as usize;
        for i in 0..n.min(LOG_CAPACITY) {
            let addr = self.log[i].addr.load();
            let value = self.log[i].value.load();
            let cell = unsafe { &*(addr as *const PCell<u64, B>) };
            cell.store(value);
            B::flush(cell.addr());
        }
        B::fence();
        self.committed.store(0);
        B::flush(self.committed.addr());
        B::fence();
    }
}

// --------------------------------------------------------------------------
// TM-based sorted linked list (the paper's OneFile list baseline).
// --------------------------------------------------------------------------

#[repr(C)]
struct TmNode<K: Word, V: Word, B: Backend> {
    key: PCell<K, B>,
    value: PCell<V, B>,
    next: PCell<*mut TmNode<K, V, B>, B>,
}

/// A sorted-list set whose operations are PTM transactions.
///
/// # Example
///
/// ```
/// use nvtraverse_onefile::TmList;
/// use nvtraverse_pmem::Clwb;
///
/// let l: TmList<u64, u64, Clwb> = TmList::new();
/// assert!(l.insert(4, 40));
/// assert_eq!(l.get(4), Some(40));
/// assert!(l.remove(4));
/// ```
pub struct TmList<K: Word, V: Word, B: Backend> {
    ptm: Ptm<B>,
    head: *mut TmNode<K, V, B>,
    /// Unlinked nodes parked until drop: optimistic readers may still be
    /// traversing them, and the PTM has no epoch scheme (real OneFile uses
    /// its wait-free reclamation; the graveyard preserves safety at the cost
    /// of reclamation, which is irrelevant to the measured shape).
    graveyard: Mutex<Vec<*mut TmNode<K, V, B>>>,
}

unsafe impl<K: Word, V: Word, B: Backend> Send for TmList<K, V, B> {}
unsafe impl<K: Word, V: Word, B: Backend> Sync for TmList<K, V, B> {}

impl<K, V, B> TmList<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        let head = Box::into_raw(Box::new(TmNode {
            key: PCell::new(K::from_bits(0)),
            value: PCell::new(V::from_bits(0)),
            next: PCell::new(std::ptr::null_mut()),
        }));
        B::flush_range(head as *const u8, std::mem::size_of::<TmNode<K, V, B>>());
        B::fence();
        TmList {
            ptm: Ptm::new(),
            head,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Find `(pred, curr)` with `curr` the first node with key ≥ `k`,
    /// reading through the transaction.
    fn locate(&self, tx: &Tx<'_, B>, k: K) -> (*mut TmNode<K, V, B>, *mut TmNode<K, V, B>) {
        unsafe {
            let mut pred = self.head;
            let mut curr = tx.read(&(*pred).next);
            while !curr.is_null() && (*curr).key.load() < k {
                pred = curr;
                curr = tx.read(&(*curr).next);
            }
            (pred, curr)
        }
    }

    /// Inserts `key → value`; `false` if present.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.ptm.update_txn(|tx| unsafe {
            let (pred, curr) = self.locate(tx, key);
            if !curr.is_null() && (*curr).key.load() == key {
                return false;
            }
            let node = Box::into_raw(Box::new(TmNode {
                key: PCell::new(key),
                value: PCell::new(value),
                next: PCell::new(curr),
            }));
            B::flush_range(node as *const u8, std::mem::size_of::<TmNode<K, V, B>>());
            tx.write(&(*pred).next, node);
            true
        })
    }

    /// Removes `key`; `false` if absent.
    pub fn remove(&self, key: K) -> bool {
        self.ptm.update_txn(|tx| unsafe {
            let (pred, curr) = self.locate(tx, key);
            if curr.is_null() || (*curr).key.load() != key {
                return false;
            }
            let succ = tx.read(&(*curr).next);
            tx.write(&(*pred).next, succ);
            self.graveyard.lock().push(curr);
            true
        })
    }

    /// Looks up `key` in a read-only transaction.
    pub fn get(&self, key: K) -> Option<V> {
        self.ptm.read_txn(|| unsafe {
            let mut curr = (*self.head).next.load();
            while !curr.is_null() && (*curr).key.load() < key {
                curr = (*curr).next.load();
            }
            if !curr.is_null() && (*curr).key.load() == key {
                Some((*curr).value.load())
            } else {
                None
            }
        })
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Quiescent length.
    pub fn len(&self) -> usize {
        let mut n = 0;
        unsafe {
            let mut c = (*self.head).next.load();
            while !c.is_null() {
                n += 1;
                c = (*c).next.load();
            }
        }
        n
    }

    /// Quiescent emptiness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery: replay a committed redo log.
    pub fn recover(&self) {
        self.ptm.recover();
    }
}

impl<K, V, B> Default for TmList<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, B> fmt::Debug for TmList<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmList").field("len", &self.len()).finish()
    }
}

impl<K: Word, V: Word, B: Backend> Drop for TmList<K, V, B> {
    fn drop(&mut self) {
        unsafe {
            let mut cur = self.head;
            while !cur.is_null() {
                let nxt = (*cur).next.load();
                drop(Box::from_raw(cur));
                cur = nxt;
            }
            for p in self.graveyard.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

// --------------------------------------------------------------------------
// TM-based internal BST (the paper's OneFile BST baseline).
// --------------------------------------------------------------------------

#[repr(C)]
struct TmBstNode<K: Word, V: Word, B: Backend> {
    key: PCell<K, B>,
    value: PCell<V, B>,
    left: PCell<*mut TmBstNode<K, V, B>, B>,
    right: PCell<*mut TmBstNode<K, V, B>, B>,
}

/// An (internal) BST set whose operations are PTM transactions.
///
/// Because update transactions serialize, the tree logic is sequential —
/// the standard textbook insert/delete — wrapped in failure-atomic
/// transactions: exactly the programming-model win (and performance loss)
/// the paper attributes to PTMs (§1, §5).
pub struct TmBst<K: Word, V: Word, B: Backend> {
    ptm: Ptm<B>,
    root: Box<PCell<*mut TmBstNode<K, V, B>, B>>,
    graveyard: Mutex<Vec<*mut TmBstNode<K, V, B>>>,
}

unsafe impl<K: Word, V: Word, B: Backend> Send for TmBst<K, V, B> {}
unsafe impl<K: Word, V: Word, B: Backend> Sync for TmBst<K, V, B> {}

impl<K, V, B> TmBst<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    /// Creates an empty tree.
    pub fn new() -> Self {
        let root = Box::new(PCell::new(std::ptr::null_mut()));
        B::flush(root.addr());
        B::fence();
        TmBst {
            ptm: Ptm::new(),
            root,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Inserts `key → value`; `false` if present.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.ptm.update_txn(|tx| unsafe {
            // Descend to the attachment cell.
            let mut cell: &PCell<*mut TmBstNode<K, V, B>, B> = &self.root;
            loop {
                let node = tx.read(cell);
                if node.is_null() {
                    break;
                }
                let nk = (*node).key.load();
                if key == nk {
                    return false;
                }
                cell = if key < nk { &(*node).left } else { &(*node).right };
            }
            let node = Box::into_raw(Box::new(TmBstNode {
                key: PCell::new(key),
                value: PCell::new(value),
                left: PCell::new(std::ptr::null_mut()),
                right: PCell::new(std::ptr::null_mut()),
            }));
            B::flush_range(node as *const u8, std::mem::size_of::<TmBstNode<K, V, B>>());
            tx.write(cell, node);
            true
        })
    }

    /// Removes `key`; `false` if absent.
    pub fn remove(&self, key: K) -> bool {
        self.ptm.update_txn(|tx| unsafe {
            let mut cell: &PCell<*mut TmBstNode<K, V, B>, B> = &self.root;
            let mut node = tx.read(cell);
            while !node.is_null() {
                let nk = (*node).key.load();
                if key == nk {
                    break;
                }
                cell = if key < nk { &(*node).left } else { &(*node).right };
                node = tx.read(cell);
            }
            if node.is_null() {
                return false;
            }
            let left = tx.read(&(*node).left);
            let right = tx.read(&(*node).right);
            if left.is_null() {
                tx.write(cell, right);
            } else if right.is_null() {
                tx.write(cell, left);
            } else {
                // Two children: splice the in-order successor up.
                let mut scell = &(*node).right;
                let mut succ = tx.read(scell);
                while !tx.read(&(*succ).left).is_null() {
                    scell = &(*succ).left;
                    succ = tx.read(scell);
                }
                let succ_right = tx.read(&(*succ).right);
                if succ == right {
                    // succ is node's direct right child: keep its right.
                    tx.write(&(*succ).left, left);
                } else {
                    tx.write(scell, succ_right);
                    tx.write(&(*succ).left, left);
                    tx.write(&(*succ).right, right);
                }
                tx.write(cell, succ);
            }
            self.graveyard.lock().push(node);
            true
        })
    }

    /// Looks up `key` in a read-only transaction.
    pub fn get(&self, key: K) -> Option<V> {
        self.ptm.read_txn(|| unsafe {
            let mut node = self.root.load();
            // Bound the walk: a torn read could in principle follow a stale
            // shape; the seqlock re-validation rejects the result anyway.
            let mut budget = 1_000_000;
            while !node.is_null() && budget > 0 {
                let nk = (*node).key.load();
                if key == nk {
                    return Some((*node).value.load());
                }
                node = if key < nk {
                    (*node).left.load()
                } else {
                    (*node).right.load()
                };
                budget -= 1;
            }
            None
        })
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Quiescent: number of keys.
    pub fn len(&self) -> usize {
        fn count<K: Word, V: Word, B: Backend>(n: *mut TmBstNode<K, V, B>) -> usize {
            if n.is_null() {
                0
            } else {
                unsafe { 1 + count((*n).left.load()) + count((*n).right.load()) }
            }
        }
        count(self.root.load())
    }

    /// Quiescent emptiness.
    pub fn is_empty(&self) -> bool {
        self.root.load().is_null()
    }

    /// Post-crash recovery: replay a committed redo log.
    pub fn recover(&self) {
        self.ptm.recover();
    }
}

impl<K, V, B> Default for TmBst<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, B> fmt::Debug for TmBst<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmBst").field("len", &self.len()).finish()
    }
}

impl<K: Word, V: Word, B: Backend> Drop for TmBst<K, V, B> {
    fn drop(&mut self) {
        fn drop_rec<K: Word, V: Word, B: Backend>(n: *mut TmBstNode<K, V, B>) {
            if !n.is_null() {
                unsafe {
                    drop_rec((*n).left.load());
                    drop_rec((*n).right.load());
                    drop(Box::from_raw(n));
                }
            }
        }
        drop_rec(self.root.load());
        for p in self.graveyard.get_mut().drain(..) {
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

impl<K, V, B> nvtraverse::DurableSet<K, V> for TmList<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn insert(&self, key: K, value: V) -> bool {
        TmList::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        TmList::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        TmList::get(self, key)
    }
    fn len(&self) -> usize {
        TmList::len(self)
    }
    fn recover(&self) {
        TmList::recover(self);
    }
}

impl<K, V, B> nvtraverse::DurableSet<K, V> for TmBst<K, V, B>
where
    K: Word + Ord,
    V: Word,
    B: Backend,
{
    fn insert(&self, key: K, value: V) -> bool {
        TmBst::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        TmBst::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        TmBst::get(self, key)
    }
    fn len(&self) -> usize {
        TmBst::len(self)
    }
    fn recover(&self) {
        TmBst::recover(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse_pmem::{Clwb, Noop};

    #[test]
    fn ptm_read_your_writes() {
        let ptm: Ptm<Noop> = Ptm::new();
        let cell: PCell<u64, Noop> = PCell::new(1);
        ptm.update_txn(|tx| {
            tx.write(&cell, 2);
            assert_eq!(tx.read(&cell), 2, "must see own pending write");
            assert_eq!(cell.load(), 1, "must not write through before commit");
        });
        assert_eq!(cell.load(), 2, "commit must apply");
    }

    #[test]
    fn ptm_empty_txn_commits_nothing() {
        let ptm: Ptm<Noop> = Ptm::new();
        let before = ptm.seq.load(Ordering::Relaxed);
        ptm.update_txn(|_tx| ());
        assert_eq!(ptm.seq.load(Ordering::Relaxed), before);
    }

    #[test]
    fn ptm_last_write_wins_within_txn() {
        let ptm: Ptm<Noop> = Ptm::new();
        let cell: PCell<u64, Noop> = PCell::new(0);
        ptm.update_txn(|tx| {
            tx.write(&cell, 1);
            tx.write(&cell, 2);
            assert_eq!(tx.read(&cell), 2);
        });
        assert_eq!(cell.load(), 2);
    }

    #[test]
    fn ptm_recovery_replays_committed_log() {
        let ptm: Ptm<Noop> = Ptm::new();
        let cell: Box<PCell<u64, Noop>> = Box::new(PCell::new(1));
        // Fabricate "crashed after commit, before apply": log says cell = 9.
        ptm.log[0].addr.store(cell.addr() as u64);
        ptm.log[0].value.store(9);
        ptm.log_len.store(1);
        ptm.committed.store(1);
        ptm.recover();
        assert_eq!(cell.load(), 9);
        assert_eq!(ptm.committed.load(), 0);
    }

    #[test]
    fn ptm_recovery_without_commit_is_noop() {
        let ptm: Ptm<Noop> = Ptm::new();
        let cell: Box<PCell<u64, Noop>> = Box::new(PCell::new(1));
        ptm.log[0].addr.store(cell.addr() as u64);
        ptm.log[0].value.store(9);
        ptm.log_len.store(1);
        // committed == 0: the transaction never reached its commit point.
        ptm.recover();
        assert_eq!(cell.load(), 1);
    }

    #[test]
    fn list_semantics() {
        let l: TmList<u64, u64, Clwb> = TmList::new();
        assert!(l.insert(2, 20));
        assert!(l.insert(1, 10));
        assert!(!l.insert(2, 99));
        assert_eq!(l.get(2), Some(20));
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn list_matches_reference_model() {
        use rand::prelude::*;
        use std::collections::BTreeMap;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let l: TmList<u64, u64, Noop> = TmList::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..2000u64 {
            let k = rng.random_range(0..64);
            match rng.random_range(0..3) {
                0 => {
                    let fresh = !model.contains_key(&k);
                    assert_eq!(l.insert(k, i), fresh, "insert({k})");
                    if fresh {
                        model.insert(k, i);
                    }
                }
                1 => assert_eq!(l.remove(k), model.remove(&k).is_some(), "remove({k})"),
                _ => assert_eq!(l.get(k), model.get(&k).copied(), "get({k})"),
            }
        }
        assert_eq!(l.len(), model.len());
    }

    #[test]
    fn bst_semantics() {
        let t: TmBst<u64, u64, Clwb> = TmBst::new();
        for k in [50u64, 30, 70, 20, 40, 60, 80] {
            assert!(t.insert(k, k));
        }
        assert!(!t.insert(50, 1));
        assert_eq!(t.len(), 7);
        // Remove leaf, one-child, two-child, and root cases.
        assert!(t.remove(20)); // leaf
        assert!(t.remove(30)); // one child
        assert!(t.remove(50)); // root with two children
        assert!(!t.remove(50));
        for k in [40u64, 60, 70, 80] {
            assert_eq!(t.get(k), Some(k), "get({k})");
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn bst_two_child_removal_when_successor_is_direct_child() {
        let t: TmBst<u64, u64, Noop> = TmBst::new();
        for k in [10u64, 5, 20, 25] {
            t.insert(k, k);
        }
        assert!(t.remove(10)); // successor (20) is 10's direct right child
        for k in [5u64, 20, 25] {
            assert_eq!(t.get(k), Some(k));
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn bst_matches_reference_model() {
        use rand::prelude::*;
        use std::collections::BTreeMap;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t: TmBst<u64, u64, Noop> = TmBst::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..3000u64 {
            let k = rng.random_range(0..128);
            match rng.random_range(0..3) {
                0 => {
                    let fresh = !model.contains_key(&k);
                    assert_eq!(t.insert(k, i), fresh, "insert({k})");
                    if fresh {
                        model.insert(k, i);
                    }
                }
                1 => assert_eq!(t.remove(k), model.remove(&k).is_some(), "remove({k})"),
                _ => assert_eq!(t.get(k), model.get(&k).copied(), "get({k})"),
            }
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let l: std::sync::Arc<TmList<u64, u64, Clwb>> = std::sync::Arc::new(TmList::new());
        for k in 0..100u64 {
            l.insert(k * 2, k);
        }
        std::thread::scope(|s| {
            for _ in 0..2 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let _ = l.get(i % 200);
                    }
                });
            }
            for t in 0..2u64 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = 1000 + t * 1000 + i;
                        assert!(l.insert(k, i));
                        assert!(l.remove(k));
                    }
                });
            }
        });
        assert_eq!(l.len(), 100);
    }

    #[test]
    fn bst_concurrent_smoke() {
        let t: std::sync::Arc<TmBst<u64, u64, Clwb>> = std::sync::Arc::new(TmBst::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 250;
                    for k in base..base + 250 {
                        assert!(t.insert(k, k));
                    }
                    for k in (base..base + 250).step_by(2) {
                        assert!(t.remove(k));
                    }
                });
            }
        });
        assert_eq!(t.len(), 500);
    }
}
