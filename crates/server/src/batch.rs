//! The batch executor: N operations, one closing fence, group commit.
//!
//! This is the server's fence-amortization path. A [`Request::Batch`]'s
//! sub-operations execute back to back inside one
//! [`FenceBatch`]: every link CAS and
//! header flush runs exactly where its durability policy puts it, but each
//! operation's *closing* fence (the policies' `before_return`) is deferred
//! and the scope's close issues a single `sfence` — the **batch durability
//! point**. Only then does [`run_batch`] return, so no reply of the batch
//! can escape to the wire before every operation in it is persistent
//! (group commit).
//!
//! The arithmetic this buys, per B-op batch:
//!
//! * **SOFT**: an update is 1 flush + 1 (closing) fence, so a batch costs
//!   B flushes + **1** fence — fences/op = 1/B, the floor.
//! * **NVTraverse**: the closing fence is one of the op's constant fence
//!   count, so a batch saves exactly B−1 fences versus B singles.
//!
//! `tests/persist_bounds.rs` pins both counts exactly.

use crate::proto::{Reply, Request};
use crate::store::{ConnTokens, KvStore};
use nvtraverse::detect::OpError;
use nvtraverse_pmem::batch::FenceBatch;
use nvtraverse_pmem::MmapBackend;

/// What one batch cost, for the server's per-batch obs attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Operations executed.
    pub ops: u64,
    /// Closing fences deferred into the shared fence (one per op whose
    /// policy would have fenced before returning).
    pub deferred_fences: u64,
    /// Real fences issued at the durability point: 1, or 0 for a batch
    /// that deferred nothing (e.g. all-miss SOFT gets need no fence).
    pub closing_fences: u64,
}

fn op_error_reply(e: OpError) -> Reply {
    match e {
        OpError::Unsupported => Reply::Unsupported,
        OpError::PoolFull => Reply::PoolFull,
    }
}

/// Executes one *data* operation (the batchable subset) with whatever
/// fence context the caller established — immediate fences outside a
/// batch, deferred inside one.
///
/// # Panics
///
/// Panics on a non-batchable request (`Stats`/`Shutdown`/`OpOutcome`/
/// nested `Batch`); the protocol decoder never produces one here.
pub fn exec_data_op(store: &KvStore, tokens: &mut ConnTokens, req: &Request) -> Reply {
    match *req {
        Request::Get(k) => match store.get(k) {
            Some(v) => Reply::Value(v),
            None => Reply::Miss,
        },
        Request::Insert(k, v) => match store.try_insert(k, v) {
            Ok(true) => Reply::Applied,
            Ok(false) => Reply::Miss,
            Err(e) => op_error_reply(e),
        },
        Request::Remove(k) => match store.try_remove(k) {
            Ok(true) => Reply::Applied,
            Ok(false) => Reply::Miss,
            Err(e) => op_error_reply(e),
        },
        Request::InsertDetectable(k, v) => {
            let shard = store.shard_index_of(k) as u32;
            match tokens.get_or_claim(store).and_then(|t| store.insert_detectable(t, k, v)) {
                Ok((id, applied)) => Reply::Detectable { applied, shard, op_id: id.to_bits() },
                Err(e) => op_error_reply(e),
            }
        }
        Request::RemoveDetectable(k) => {
            let shard = store.shard_index_of(k) as u32;
            match tokens.get_or_claim(store).and_then(|t| store.remove_detectable(t, k)) {
                Ok((id, applied)) => Reply::Detectable { applied, shard, op_id: id.to_bits() },
                Err(e) => op_error_reply(e),
            }
        }
        ref other => panic!("exec_data_op on non-data request {other:?}"),
    }
}

/// Executes a batch of data operations under one [`FenceBatch`] and
/// returns only after the batch durability point — the group-commit
/// contract. Replies are in operation order.
pub fn run_batch(
    store: &KvStore,
    tokens: &mut ConnTokens,
    reqs: &[Request],
) -> (Vec<Reply>, BatchStats) {
    let scope = FenceBatch::<MmapBackend>::begin();
    let replies: Vec<Reply> = reqs.iter().map(|r| exec_data_op(store, tokens, r)).collect();
    let deferred = scope.close();
    // Nothing above this line may write to the connection: `close()` just
    // issued the one fence that makes every reply's effect persistent.
    let stats = BatchStats {
        ops: reqs.len() as u64,
        deferred_fences: deferred,
        closing_fences: u64::from(deferred > 0),
    };
    (replies, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PolicyKind;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("nvt-server-batch-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn batch_replies_match_singles_and_group_commit_runs() {
        for policy in [PolicyKind::NvTraverse, PolicyKind::Soft] {
            let dir = tmp_dir(policy.name());
            let store = KvStore::create(&dir, policy, 2, 1 << 20).unwrap();
            let mut tokens = ConnTokens::new();
            let reqs: Vec<Request> = (0..16u64)
                .map(|k| Request::Insert(k, k * 2))
                .chain((0..16u64).map(Request::Get))
                .chain(std::iter::once(Request::Insert(3, 99))) // duplicate
                .chain(std::iter::once(Request::Remove(100))) // absent
                .collect();
            let (replies, stats) = run_batch(&store, &mut tokens, &reqs);
            assert_eq!(replies.len(), 34);
            assert!(replies[..16].iter().all(|r| *r == Reply::Applied));
            for (k, r) in (0..16u64).zip(&replies[16..32]) {
                assert_eq!(*r, Reply::Value(k * 2));
            }
            assert_eq!(replies[32], Reply::Miss, "duplicate insert");
            assert_eq!(replies[33], Reply::Miss, "absent remove");
            assert_eq!(stats.ops, 34);
            assert!(
                stats.deferred_fences >= 18,
                "every update must defer its closing fence ({policy:?}: {stats:?})"
            );
            assert_eq!(stats.closing_fences, 1, "one shared fence per batch");
            store.close().unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn detectable_ops_in_batches_carry_ids_and_soft_reports_unsupported() {
        let dir = tmp_dir("detectable");
        let store = KvStore::create(&dir, PolicyKind::NvTraverse, 2, 1 << 20).unwrap();
        let mut tokens = ConnTokens::new();
        let (replies, _) = run_batch(
            &store,
            &mut tokens,
            &[Request::InsertDetectable(1, 10), Request::RemoveDetectable(2)],
        );
        let (shard, op_id) = match replies[0] {
            Reply::Detectable { applied: true, shard, op_id } => {
                assert_eq!(shard as usize, store.shard_index_of(1));
                (shard, op_id)
            }
            ref other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(replies[1], Reply::Detectable { applied: false, .. }));
        drop(tokens);
        store.close().unwrap();

        // `op_outcome` is the post-restart question: reopen and classify.
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(
            store.op_outcome(shard as usize, nvtraverse_pool::OpId::from_bits(op_id)),
            Some(nvtraverse_pool::OpOutcome::Committed)
        );
        store.close().unwrap();

        let soft_dir = tmp_dir("detectable-soft");
        let store = KvStore::create(&soft_dir, PolicyKind::Soft, 2, 1 << 20).unwrap();
        let mut tokens = ConnTokens::new();
        let (replies, _) = run_batch(&store, &mut tokens, &[Request::InsertDetectable(1, 10)]);
        assert_eq!(replies[0], Reply::Unsupported);
        store.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&soft_dir).unwrap();
    }
}
