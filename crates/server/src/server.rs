//! The server: thread-per-core accept loops, blocking per-connection
//! handlers, group-commit batching, graceful shutdown.
//!
//! Threading model (no async runtime — ROADMAP's offline-deps
//! constraint): [`ServerConfig::workers`] acceptor threads share one
//! non-blocking listener and poll a shutdown flag; each accepted
//! connection gets its own handler thread running a strict
//! read-frame → execute → write-frame loop. Durable-set operations are
//! lock-free, so handler threads scale without a dispatcher; per-batch
//! fence amortization happens inside the handler via
//! [`run_batch`], and the reply frame is written
//! only after that call returns — i.e. after the batch's single closing
//! fence (group commit: no ack escapes before its fence).
//!
//! Shutdown (either [`Server::shutdown`] or a wire `SHUTDOWN` request):
//! stop accepting, let every in-flight request finish and flush its
//! reply, cut idle connections, join all threads, then close the store
//! (which `msync`s every shard). A crash instead of a shutdown is the
//! tested path, not a failure mode: reopening the store runs every
//! shard's recovery pipeline and the op-table classification that makes
//! acked detectable operations answerable (`tests/crash_server.rs`).

use crate::batch::run_batch;
use crate::net::{Listener, Stream};
use crate::proto::{self, Reply, Request};
use crate::store::{ConnTokens, KvStore};
use nvtraverse_obs as obs;
use nvtraverse_pool::{OpId, OpOutcome};
use std::io::Write;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start_uds`] / [`Server::start_tcp`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Acceptor threads sharing the listener (thread-per-core shape).
    pub workers: usize,
    /// How long [`Server::shutdown`] waits for in-flight requests to
    /// drain before cutting connections.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(16),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotone service counters, exported in `STATS` and read by the
/// `kv_service` figure.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    ops: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    deferred_fences: AtomicU64,
    closing_batch_fences: AtomicU64,
    malformed: AtomicU64,
}

struct Shared {
    store: KvStore,
    shutdown: AtomicBool,
    /// Server-wide obs target: every handler thread attributes its
    /// flushes/fences (including each batch's single closing fence) here,
    /// so fences/op over the whole service is one snapshot delta.
    metrics: &'static obs::MetricSet,
    counters: Counters,
    conns: Mutex<Vec<Stream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    in_flight: AtomicUsize,
}

/// A running KV service. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    uds_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("uds_path", &self.uds_path)
            .field("tcp_addr", &self.tcp_addr)
            .field("workers", &self.acceptors.len())
            .finish()
    }
}

impl Server {
    /// Serves `store` on a Unix-domain socket at `path` (a stale socket
    /// file from a previous crash is removed first — the pool files, not
    /// the socket, carry the durable state).
    ///
    /// # Errors
    ///
    /// Bind/clone failures.
    pub fn start_uds(
        path: impl AsRef<Path>,
        store: KvStore,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let listener = Listener::Unix(std::os::unix::net::UnixListener::bind(path)?);
        Server::start(listener, store, cfg, Some(path.to_path_buf()))
    }

    /// Serves `store` on a TCP socket bound to `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port; see [`Server::tcp_addr`]).
    ///
    /// # Errors
    ///
    /// Bind/clone failures.
    pub fn start_tcp(
        addr: impl std::net::ToSocketAddrs,
        store: KvStore,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = Listener::Tcp(std::net::TcpListener::bind(addr)?);
        Server::start(listener, store, cfg, None)
    }

    fn start(
        listener: Listener,
        store: KvStore,
        cfg: ServerConfig,
        uds_path: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.tcp_addr();
        let shared = Arc::new(Shared {
            store,
            shutdown: AtomicBool::new(false),
            metrics: Box::leak(Box::new(obs::MetricSet::new(16))),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
        });
        let workers = cfg.workers.max(1);
        let acceptors = (0..workers)
            .map(|i| {
                let listener = listener.try_clone()?;
                let shared = Arc::clone(&shared);
                Ok(std::thread::Builder::new()
                    .name(format!("kv-accept-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawn acceptor"))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let _ = cfg.drain_timeout; // stored per-shutdown call; see `shutdown_with`
        Ok(Server { shared, acceptors, uds_path, tcp_addr })
    }

    /// The bound TCP address (None for a UDS server).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The UDS socket path (None for a TCP server).
    pub fn uds_path(&self) -> Option<&Path> {
        self.uds_path.as_deref()
    }

    /// Whether a `SHUTDOWN` request (or [`Server::shutdown`]) has been
    /// seen.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until a wire `SHUTDOWN` request arrives (the runnable
    /// server binary's main loop).
    pub fn wait_for_shutdown_request(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// The server-wide obs metric set (flush/fence attribution for all
    /// connection handlers — the `kv_service` figure reads deltas of it).
    pub fn metrics(&self) -> &'static obs::MetricSet {
        self.shared.metrics
    }

    /// Data operations executed (batched + single).
    pub fn ops_executed(&self) -> u64 {
        self.shared.counters.ops.load(Ordering::Relaxed)
    }

    /// Batches executed, operations inside them, closing fences deferred
    /// by those operations, and real shared fences issued at batch
    /// durability points — the per-batch attribution quadruple.
    pub fn batch_counters(&self) -> (u64, u64, u64, u64) {
        let c = &self.shared.counters;
        (
            c.batches.load(Ordering::Relaxed),
            c.batched_ops.load(Ordering::Relaxed),
            c.deferred_fences.load(Ordering::Relaxed),
            c.closing_batch_fences.load(Ordering::Relaxed),
        )
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// `drain_timeout` of the start config — 5 s here), cuts idle
    /// connections, joins every thread, and closes the store.
    ///
    /// # Errors
    ///
    /// The store close error, if any (the service is down regardless).
    pub fn shutdown(self) -> std::io::Result<()> {
        self.shutdown_with(Duration::from_secs(5))
    }

    /// [`Server::shutdown`] with an explicit drain bound.
    ///
    /// # Errors
    ///
    /// The store close error, if any.
    pub fn shutdown_with(self, drain_timeout: Duration) -> std::io::Result<()> {
        let Server { shared, acceptors, uds_path, .. } = self;
        shared.shutdown.store(true, Ordering::Release);
        for a in acceptors {
            let _ = a.join();
        }
        // Let requests that already started finish and flush their
        // replies; handlers notice the flag after each frame.
        let deadline = Instant::now() + drain_timeout;
        while shared.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Unblock handlers parked in `read` on idle connections.
        for conn in shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = conn.shutdown_both();
        }
        let handlers: Vec<_> =
            std::mem::take(&mut *shared.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handlers {
            let _ = h.join();
        }
        if let Some(path) = &uds_path {
            let _ = std::fs::remove_file(path);
        }
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.store.close(),
            Err(_) => {
                // A handler leaked its Arc (should not happen once joined);
                // still force the shards' mappings to their files.
                nvtraverse_pmem::MmapBackend::sync_all_regions();
                Ok(())
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                }
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("kv-conn".into())
                    .spawn(move || handle_conn(&shared2, stream))
                    .expect("spawn handler");
                shared.handlers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Decrements `in_flight` even if request processing unwinds.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: Stream) {
    // Everything this connection flushes or fences — pool writes, batch
    // closing fences — lands in the server-wide metric set.
    let _obs = obs::attribute_to(Some(shared.metrics));
    let mut tokens = ConnTokens::new();
    // Ok(None) is clean EOF; Err covers a cut socket or a dead peer.
    while let Ok(Some(body)) = proto::read_frame(&mut stream) {
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let guard = InFlightGuard(&shared.in_flight);
        let (reply, close_after) = process_request(shared, &mut tokens, &body);
        let mut out = Vec::with_capacity(64);
        proto::encode_reply(&reply, &mut out);
        let io_ok = proto::write_frame(&mut stream, &out).and_then(|()| stream.flush()).is_ok();
        drop(guard);
        if !io_ok || close_after || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    // A clone of this stream lives in `shared.conns` (for forced close at
    // shutdown), so dropping our handle would NOT deliver EOF to the peer.
    // shutdown(2) acts on the socket itself, clones included.
    let _ = stream.shutdown_both();
}

/// Executes one framed request. Returns the reply and whether the
/// connection must close after sending it.
fn process_request(shared: &Arc<Shared>, tokens: &mut ConnTokens, body: &[u8]) -> (Reply, bool) {
    let req = match proto::decode_request(body) {
        Ok(req) => req,
        Err(e) => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            // The stream position can't be trusted after a framing error.
            return (Reply::BadRequest(e.to_string()), true);
        }
    };
    let c = &shared.counters;
    match req {
        Request::Stats => (Reply::Json(stats_json(shared)), false),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            (Reply::Applied, true)
        }
        Request::OpOutcome { shard, op_id } => {
            let reply = match shared.store.op_outcome(shard as usize, OpId::from_bits(op_id)) {
                Some(OpOutcome::Committed) => Reply::Outcome(0),
                Some(OpOutcome::NotApplied) => Reply::Outcome(1),
                Some(OpOutcome::Superseded) => Reply::Outcome(2),
                None => Reply::Unknown,
            };
            (reply, false)
        }
        Request::Batch(subs) => {
            let (replies, stats) = run_batch(&shared.store, tokens, &subs);
            c.ops.fetch_add(stats.ops, Ordering::Relaxed);
            c.batches.fetch_add(1, Ordering::Relaxed);
            c.batched_ops.fetch_add(stats.ops, Ordering::Relaxed);
            c.deferred_fences.fetch_add(stats.deferred_fences, Ordering::Relaxed);
            c.closing_batch_fences.fetch_add(stats.closing_fences, Ordering::Relaxed);
            (Reply::Batch(replies), false)
        }
        ref data_op => {
            c.ops.fetch_add(1, Ordering::Relaxed);
            (crate::batch::exec_data_op(&shared.store, tokens, data_op), false)
        }
    }
}

fn stats_json(shared: &Arc<Shared>) -> String {
    let c = &shared.counters;
    format!(
        "{{\"policy\":\"{}\",\"shards\":{},\"len\":{},\
         \"server\":{{\"connections\":{},\"ops\":{},\"batches\":{},\"batched_ops\":{},\
         \"deferred_fences\":{},\"closing_batch_fences\":{},\"malformed\":{}}},\
         \"obs\":{},\"pools\":{}}}",
        shared.store.policy().name(),
        shared.store.shard_count(),
        shared.store.len(),
        c.connections.load(Ordering::Relaxed),
        c.ops.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.batched_ops.load(Ordering::Relaxed),
        c.deferred_fences.load(Ordering::Relaxed),
        c.closing_batch_fences.load(Ordering::Relaxed),
        c.malformed.load(Ordering::Relaxed),
        shared.metrics.snapshot().to_json(),
        shared.store.metrics_snapshot().to_json(),
    )
}
