//! YCSB-style workload driver: zipfian keys, standard mixes, latency
//! histograms — all deterministic under a seed.
//!
//! The zipfian generator is the YCSB standard construction (Gray et al.'s
//! "quickly generating billion-record synthetic databases" rejection-free
//! formula): rank probabilities `P(i) ∝ 1/i^θ`, computed from the
//! harmonic-like constant `zetan = Σ_{i=1..n} 1/i^θ`. Everything is
//! seeded — same seed, same key sequence — so benchmark runs and the
//! top-key-mass unit test are reproducible (ISSUE 9 satellite: the
//! determinism hook is the `seed` parameter, not ambient RNG state).

use crate::client::Client;
use crate::proto::{Reply, Request};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Splitmix64: seeds the per-thread PRNG streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xorshift64* PRNG — deterministic, dependency-free.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the stream (any seed is fine; 0 is remapped internally).
    pub fn new(seed: u64) -> Rng {
        let mut s = seed;
        // splitmix decorrelates adjacent seeds and maps 0 away from the
        // xorshift fixed point.
        let mut v = splitmix64(&mut s);
        if v == 0 {
            v = 0x9E37_79B9_7F4A_7C15;
        }
        Rng(v)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The YCSB zipfian generator over ranks `0..n` with skew `theta`
/// (YCSB's default is 0.99). Rank 0 is the hottest key.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: Rng,
}

impl Zipfian {
    /// Builds the generator; `zetan` is computed exactly (O(n)), which is
    /// fine for benchmark-sized key spaces.
    ///
    /// # Panics
    ///
    /// Panics on `n == 0` or `theta >= 1.0` (the formula needs θ < 1).
    pub fn new(n: u64, theta: f64, seed: u64) -> Zipfian {
        assert!(n > 0, "zipfian over an empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, rng: Rng::new(seed) }
    }

    /// Next rank in `0..n`, zipf-distributed (0 = hottest).
    pub fn next_rank(&mut self) -> u64 {
        let u = self.rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of the hottest rank: `1 / zetan`.
    pub fn top_rank_mass(&self) -> f64 {
        1.0 / self.zetan
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// The standard YCSB core mixes the figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% reads / 50% updates.
    A,
    /// 95% reads / 5% updates.
    B,
    /// 100% reads.
    C,
}

impl Mix {
    /// Fraction of operations that are reads, in percent.
    pub fn read_pct(self) -> u32 {
        match self {
            Mix::A => 50,
            Mix::B => 95,
            Mix::C => 100,
        }
    }

    /// Figure/series label.
    pub fn name(self) -> &'static str {
        match self {
            Mix::A => "A",
            Mix::B => "B",
            Mix::C => "C",
        }
    }
}

/// A log2-bucketed nanosecond latency histogram — self-contained (not
/// gated on the obs env switch) because workload latency must always be
/// measurable.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist { buckets: [0; 64], count: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        let b = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Approximate quantile in nanoseconds (upper bucket bound), `q` in
    /// `[0, 1]`. Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (b + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Workload parameters for [`run_ycsb`].
#[derive(Debug, Clone)]
pub struct YcsbCfg {
    /// Key-space size (ranks are used directly as keys).
    pub keys: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Base seed; thread `t` derives its stream from `seed + t`.
    pub seed: u64,
    /// Read/update mix.
    pub mix: Mix,
    /// Operations per request frame (1 = unbatched singles).
    pub batch: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Client threads, one connection each.
    pub threads: usize,
}

/// What a [`run_ycsb`] run measured.
#[derive(Debug, Clone)]
pub struct YcsbReport {
    /// Data operations completed (acks received) across all threads.
    pub ops: u64,
    /// Measured wall-clock seconds.
    pub secs: f64,
    /// Merged per-round-trip latency histogram (one sample per frame).
    pub latency: LatencyHist,
}

impl YcsbReport {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        if self.secs == 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.secs / 1e6
    }

    /// Median round-trip latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.latency.quantile_ns(0.50) as f64 / 1e3
    }

    /// Tail round-trip latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.quantile_ns(0.99) as f64 / 1e3
    }
}

/// Drives the server with `cfg.threads` closed-loop clients, each sending
/// zipfian-keyed batches of `cfg.batch` operations, for `cfg.duration`.
/// `mk_client` opens one connection per thread. Deterministic key
/// sequences per thread (seed + thread id); the op *count* still varies
/// with machine speed — determinism here means reproducible key
/// distributions, not reproducible totals.
///
/// # Errors
///
/// The first connection or transport error from any thread.
pub fn run_ycsb(
    mk_client: impl Fn() -> io::Result<Client> + Sync,
    cfg: &YcsbCfg,
) -> io::Result<YcsbReport> {
    assert!(cfg.batch >= 1, "batch size must be at least 1");
    assert!(cfg.threads >= 1, "at least one client thread");
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<io::Result<(u64, LatencyHist)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let mk_client = &mk_client;
                let stop = &stop;
                s.spawn(move || {
                    let mut client = mk_client()?;
                    let mut zipf = Zipfian::new(cfg.keys, cfg.theta, cfg.seed + t as u64);
                    let mut coin = Rng::new(cfg.seed ^ 0xC0FF_EE00 ^ t as u64);
                    let mut hist = LatencyHist::new();
                    let mut ops = 0u64;
                    let mut reqs = Vec::with_capacity(cfg.batch);
                    while !stop.load(Ordering::Relaxed) {
                        reqs.clear();
                        for _ in 0..cfg.batch {
                            let key = zipf.next_rank();
                            if coin.next_u64() % 100 < cfg.mix.read_pct() as u64 {
                                reqs.push(Request::Get(key));
                            } else {
                                reqs.push(Request::Insert(key, key.wrapping_mul(3)));
                            }
                        }
                        let t0 = Instant::now();
                        if cfg.batch == 1 {
                            client.request(&reqs[0])?;
                        } else {
                            let req = Request::Batch(reqs.clone());
                            match client.request(&req)? {
                                Reply::Batch(_) => {}
                                other => {
                                    return Err(io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        format!("unexpected batch reply: {other:?}"),
                                    ))
                                }
                            }
                        }
                        hist.record(t0.elapsed().as_nanos() as u64);
                        ops += cfg.batch as u64;
                    }
                    Ok((ops, hist))
                })
            })
            .collect();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("ycsb worker panicked")).collect()
    });
    let secs = started.elapsed().as_secs_f64();
    let mut ops = 0;
    let mut latency = LatencyHist::new();
    for r in results {
        let (o, h) = r?;
        ops += o;
        latency.merge(&h);
    }
    Ok(YcsbReport { ops, secs, latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_seed_deterministic() {
        let mut a = Zipfian::new(1000, 0.99, 42);
        let mut b = Zipfian::new(1000, 0.99, 42);
        let mut c = Zipfian::new(1000, 0.99, 43);
        let seq_a: Vec<u64> = (0..256).map(|_| a.next_rank()).collect();
        let seq_b: Vec<u64> = (0..256).map(|_| b.next_rank()).collect();
        let seq_c: Vec<u64> = (0..256).map(|_| c.next_rank()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same stream");
        assert_ne!(seq_a, seq_c, "different seed, different stream");
    }

    #[test]
    fn zipfian_top_key_mass_matches_theory() {
        // n=1000, θ=0.99 ⇒ P(rank 0) = 1/zetan ≈ 0.1335. Pin the empirical
        // mass of the hottest key to a band around it.
        let mut z = Zipfian::new(1000, 0.99, 42);
        let theory = z.top_rank_mass();
        assert!((0.12..0.15).contains(&theory), "theory sanity: {theory}");
        let samples = 100_000;
        let mut top = 0u64;
        let mut max_rank = 0u64;
        for _ in 0..samples {
            let r = z.next_rank();
            max_rank = max_rank.max(r);
            if r == 0 {
                top += 1;
            }
        }
        let mass = top as f64 / samples as f64;
        assert!(
            (mass - theory).abs() < 0.01,
            "empirical top-key mass {mass:.4} vs theoretical {theory:.4}"
        );
        assert!(max_rank < 1000, "ranks stay inside the key space");
    }

    #[test]
    fn latency_histogram_quantiles_are_monotone() {
        let mut h = LatencyHist::new();
        for ns in [100u64, 200, 400, 800, 1600, 3200, 1 << 20] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p99, "p50 {p50} <= p99 {p99}");
        assert!(p99 >= 1 << 20, "tail sample dominates p99");

        let mut other = LatencyHist::new();
        other.record(50);
        h.merge(&other);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn mixes_have_the_standard_read_fractions() {
        assert_eq!(Mix::A.read_pct(), 50);
        assert_eq!(Mix::B.read_pct(), 95);
        assert_eq!(Mix::C.read_pct(), 100);
    }
}
