//! `nvtraverse-server`: a dependency-free KV service over the durable
//! sets.
//!
//! The crate puts a network protocol in front of a
//! [`ShardedSet`](nvtraverse_structures::sharded::ShardedSet) so the
//! paper's persistence machinery can be measured and crash-tested as a
//! *service*, not just a library:
//!
//! * **Transport** (`net`, internal): Unix-domain or TCP sockets,
//!   blocking I/O, no async runtime (the workspace is offline and
//!   dependency-free by constraint). Thread-per-core accept loops, one
//!   handler thread per connection.
//! * **Protocol** ([`proto`]): length-prefixed binary frames —
//!   GET/INSERT/REMOVE, detectable variants, OP_OUTCOME, STATS,
//!   SHUTDOWN, and BATCH.
//! * **Fence amortization** ([`batch`]): a BATCH frame's operations run
//!   their link CASes and header flushes individually but share a single
//!   closing `sfence` at the batch durability point; all replies are
//!   released together after that fence (group commit — no ack escapes
//!   before its fence). With per-op fence cost F, a B-op batch costs
//!   B·(F−1)+1 fences; under SOFT (F = 1) that is exactly 1.
//! * **Store façade** ([`store`]): policy-erased [`KvStore`] over the
//!   NVTraverse or SOFT sharded sets, with the policy stamped on disk so
//!   a restart always reopens what was written. Reopen *is* recovery:
//!   heap walk, GC, structure rebuild, and op-table classification.
//! * **Client** ([`client`]): a small synchronous client with a
//!   send/recv split for pipelining and helpers for every operation.
//! * **Workload** ([`ycsb`]): seeded zipfian YCSB mixes A/B/C and latency
//!   histograms, driving the `kv_service` figure.
//!
//! ```no_run
//! use nvtraverse_server::{Client, KvStore, PolicyKind, Server, ServerConfig};
//!
//! let store = KvStore::create("/tmp/kv", PolicyKind::NvTraverse, 4, 1 << 24)?;
//! let server = Server::start_uds("/tmp/kv.sock", store, ServerConfig::default())?;
//! let mut client = Client::connect_uds("/tmp/kv.sock")?;
//! client.insert(1, 10)?;
//! assert_eq!(client.get(1)?, Some(10));
//! server.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod client;
mod net;
pub mod proto;
pub mod server;
pub mod store;
pub mod ycsb;

pub use batch::{exec_data_op, run_batch, BatchStats};
pub use client::{Client, DetectableAck, OutcomeAnswer};
pub use proto::{Reply, Request};
pub use server::{Server, ServerConfig};
pub use store::{ConnTokens, KvStore, NvtShard, PolicyKind, SoftShard};
pub use ycsb::{run_ycsb, LatencyHist, Mix, YcsbCfg, YcsbReport, Zipfian};
