//! Minimal transport erasure: one stream/listener type over UDS and TCP.
//!
//! The server is dependency-free by design (ROADMAP constraint: no async
//! runtime), so this is plain `std::net` / `std::os::unix::net` behind
//! two small enums. Blocking I/O everywhere; the accept loops run their
//! listeners non-blocking and poll a shutdown flag.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};

/// A connected byte stream (UDS or TCP).
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any thread in `read`.
    pub(crate) fn shutdown_both(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound accept socket (UDS or TCP).
#[derive(Debug)]
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn try_clone(&self) -> io::Result<Listener> {
        Ok(match self {
            Listener::Unix(l) => Listener::Unix(l.try_clone()?),
            Listener::Tcp(l) => Listener::Tcp(l.try_clone()?),
        })
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                // Accepted sockets inherit O_NONBLOCK from the listener on
                // some platforms; handlers want blocking reads.
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    pub(crate) fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }
}
