//! Client library for the KV service.
//!
//! One [`Client`] wraps one connection and speaks the strict in-order
//! request/reply protocol. The split [`Client::send`]/[`Client::recv`]
//! pair exists for pipelining: write several request frames before
//! reading any reply, then drain replies in the same order (the server
//! processes frames strictly in sequence, so order is the contract, not
//! an option). The convenience methods are `send` + `recv` fused.

use crate::net::Stream;
use crate::proto::{self, Reply, Request};
use std::io::{self, Read, Write};
use std::net::ToSocketAddrs;
use std::path::Path;

/// What a detectable operation acknowledged: whether it took effect, and
/// the durable descriptor coordinates a client must log (fsynced) to ask
/// [`Client::op_outcome`] after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectableAck {
    /// Whether the operation took effect (insert was fresh / remove found
    /// its key).
    pub applied: bool,
    /// Shard whose descriptor table recorded the op.
    pub shard: u32,
    /// `OpId` bits within that shard's pool. The *next* detectable op on
    /// the same connection reuses the slot with `seq + 1`, which is what
    /// makes the id predictable for write-ahead intent logs.
    pub op_id: u64,
}

/// Post-crash classification of a detectable operation, decoded from an
/// `OP_OUTCOME` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeAnswer {
    /// The operation completed and its effect is durable.
    Committed,
    /// The descriptor was claimed but the operation never took effect.
    NotApplied,
    /// A later operation on the same slot overwrote the descriptor.
    Superseded,
    /// The server could not classify the id (unknown slot / shard).
    Unknown,
}

/// A connected protocol client. Not thread-safe; clone-per-thread by
/// opening one connection per thread.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Client> {
        let s = std::os::unix::net::UnixStream::connect(path)?;
        Ok(Client { stream: Stream::Unix(s), buf: Vec::with_capacity(256) })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let s = std::net::TcpStream::connect(addr)?;
        let _ = s.set_nodelay(true);
        Ok(Client { stream: Stream::Tcp(s), buf: Vec::with_capacity(256) })
    }

    /// Writes one request frame without reading the reply (pipelining).
    /// Pair every `send` with a later [`Client::recv`] of the *same*
    /// request, in send order.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        proto::encode_request(req, &mut self.buf);
        proto::write_frame(&mut self.stream, &self.buf)?;
        self.stream.flush()
    }

    /// Reads one reply frame and decodes it against `req` (the request it
    /// answers — order is the protocol's framing).
    ///
    /// # Errors
    ///
    /// Transport errors; `UnexpectedEof` when the server closed the
    /// connection instead of replying.
    pub fn recv(&mut self, req: &Request) -> io::Result<Reply> {
        match proto::read_frame(&mut self.stream)? {
            Some(body) => Ok(proto::decode_reply(req, &body)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }

    /// One full request/reply exchange.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        self.send(req)?;
        self.recv(req)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply shape.
    pub fn get(&mut self, key: u64) -> io::Result<Option<u64>> {
        match self.request(&Request::Get(key))? {
            Reply::Value(v) => Ok(Some(v)),
            Reply::Miss => Ok(None),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Inserts `key → value`; `Ok(false)` when the key already existed.
    ///
    /// # Errors
    ///
    /// Transport errors; `Other` on `POOL_FULL`.
    pub fn insert(&mut self, key: u64, value: u64) -> io::Result<bool> {
        applied("INSERT", self.request(&Request::Insert(key, value))?)
    }

    /// Removes `key`; `Ok(false)` when the key was absent.
    ///
    /// # Errors
    ///
    /// Transport errors; `Other` on server-side failures.
    pub fn remove(&mut self, key: u64) -> io::Result<bool> {
        applied("REMOVE", self.request(&Request::Remove(key))?)
    }

    /// Detectable insert: the ack names the durable descriptor for
    /// post-crash [`Client::op_outcome`].
    ///
    /// # Errors
    ///
    /// Transport errors; `Unsupported`/`Other` on policy or pool errors.
    pub fn insert_detectable(&mut self, key: u64, value: u64) -> io::Result<DetectableAck> {
        detectable("INSERT_DETECTABLE", self.request(&Request::InsertDetectable(key, value))?)
    }

    /// Detectable remove.
    ///
    /// # Errors
    ///
    /// Transport errors; `Unsupported`/`Other` on policy or pool errors.
    pub fn remove_detectable(&mut self, key: u64) -> io::Result<DetectableAck> {
        detectable("REMOVE_DETECTABLE", self.request(&Request::RemoveDetectable(key))?)
    }

    /// Classifies a previous detectable op after a server restart.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply shape.
    pub fn op_outcome(&mut self, shard: u32, op_id: u64) -> io::Result<OutcomeAnswer> {
        match self.request(&Request::OpOutcome { shard, op_id })? {
            Reply::Outcome(0) => Ok(OutcomeAnswer::Committed),
            Reply::Outcome(1) => Ok(OutcomeAnswer::NotApplied),
            Reply::Outcome(2) => Ok(OutcomeAnswer::Superseded),
            Reply::Unknown => Ok(OutcomeAnswer::Unknown),
            other => Err(unexpected("OP_OUTCOME", &other)),
        }
    }

    /// Server + store statistics as a JSON string.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on an unexpected reply shape.
    pub fn stats_json(&mut self) -> io::Result<String> {
        match self.request(&Request::Stats)? {
            Reply::Json(s) => Ok(s),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Runs `ops` as one batch — one shared closing fence server-side,
    /// all replies released together after it (group commit). Replies are
    /// in operation order.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on a shape mismatch.
    pub fn batch(&mut self, ops: &[Request]) -> io::Result<Vec<Reply>> {
        let req = Request::Batch(ops.to_vec());
        match self.request(&req)? {
            Reply::Batch(replies) => Ok(replies),
            other => Err(unexpected("BATCH", &other)),
        }
    }

    /// Asks the server to stop accepting and drain.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Reply::Applied => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }

    /// Writes raw bytes to the connection, bypassing the protocol layer —
    /// for malformed-frame tests only.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw reply frame (for tests asserting on `BAD_REQUEST`
    /// after [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn recv_raw_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        proto::read_frame(&mut self.stream)
    }

    /// Reads until EOF, returning how many bytes arrived — tests use this
    /// to assert the server closed the connection.
    ///
    /// # Errors
    ///
    /// Transport errors other than the expected close.
    pub fn drain_to_eof(&mut self) -> io::Result<usize> {
        let mut total = 0;
        let mut scratch = [0u8; 512];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => return Ok(total),
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => return Ok(total),
                Err(e) => return Err(e),
            }
        }
    }
}

fn unexpected(what: &str, reply: &Reply) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected {what} reply: {reply:?}"))
}

fn applied(what: &str, reply: Reply) -> io::Result<bool> {
    match reply {
        Reply::Applied => Ok(true),
        Reply::Miss => Ok(false),
        Reply::PoolFull => Err(io::Error::other(format!("{what}: pool full"))),
        other => Err(unexpected(what, &other)),
    }
}

fn detectable(what: &str, reply: Reply) -> io::Result<DetectableAck> {
    match reply {
        Reply::Detectable { applied, shard, op_id } => Ok(DetectableAck { applied, shard, op_id }),
        Reply::Unsupported => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("{what}: store policy has no detectable ops"),
        )),
        Reply::PoolFull => Err(io::Error::other(format!("{what}: pool full"))),
        other => Err(unexpected(what, &other)),
    }
}
