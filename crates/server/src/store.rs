//! The served store: a [`ShardedSet`] under one of the two durable
//! policies, behind one non-generic façade.
//!
//! The server is policy-agnostic at the protocol level — the same wire
//! operations run against the NVTraverse transformation or the SOFT
//! minimal-flush tier — so [`KvStore`] erases the policy type parameter
//! into an enum and stamps the chosen policy into a `policy.kind` file
//! next to the shard manifest. A restart reads that file back:
//! [`KvStore::open`] always reopens with the policy the data was written
//! under (the two layouts are not interchangeable on disk).

use nvtraverse::detect::{OpError, OpToken};
use nvtraverse::policy::{NvTraverse, Soft};
use nvtraverse::DurableSet;
use nvtraverse_pmem::MmapBackend;
use nvtraverse_pool::{OpId, OpOutcome, RecoveryReport};
use nvtraverse_structures::hash::HashMapDs;
use nvtraverse_structures::sharded::{ShardTokens, ShardedSet};
use nvtraverse_structures::soft_hash::SoftHash;
use std::io;
use std::path::{Path, PathBuf};

/// Shard structure under the NVTraverse policy.
pub type NvtShard = HashMapDs<u64, u64, NvTraverse<MmapBackend>>;
/// Shard structure under the SOFT policy.
pub type SoftShard = SoftHash<u64, u64, Soft<MmapBackend>>;

/// Which durability policy a store runs (and persists) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's transformation over pool-backed hash maps.
    NvTraverse,
    /// SOFT minimal-flush sets (one flush per update, volatile links).
    Soft,
}

impl PolicyKind {
    /// Stable name, used on disk (`policy.kind`) and in STATS/figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::NvTraverse => "nvt",
            PolicyKind::Soft => "soft",
        }
    }

    /// Parses [`PolicyKind::name`] back.
    pub fn from_name(s: &str) -> Option<PolicyKind> {
        match s {
            "nvt" => Some(PolicyKind::NvTraverse),
            "soft" => Some(PolicyKind::Soft),
            _ => None,
        }
    }
}

fn policy_file(dir: &Path) -> PathBuf {
    dir.join("policy.kind")
}

fn write_policy(dir: &Path, policy: PolicyKind) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(policy_file(dir))?;
    writeln!(f, "{}", policy.name())?;
    f.sync_all()
}

fn read_policy(dir: &Path) -> io::Result<PolicyKind> {
    let text = std::fs::read_to_string(policy_file(dir)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("{}: no policy.kind file — not a KV store directory", dir.display()),
        )
    })?;
    PolicyKind::from_name(text.trim()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: unknown policy {text:?} in policy.kind", dir.display()),
        )
    })
}

/// The erased store: one logical durable set over N shard pools.
#[derive(Debug)]
pub enum KvStore {
    /// NVTraverse-policy store.
    Nvt(ShardedSet<NvtShard>),
    /// SOFT-policy store.
    Soft(ShardedSet<SoftShard>),
}

impl KvStore {
    /// Creates a fresh store of `shards` pools under `dir` and stamps the
    /// policy file.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedSet::create`] failures and the policy-file
    /// write.
    pub fn create(
        dir: impl AsRef<Path>,
        policy: PolicyKind,
        shards: usize,
        capacity_per_shard: u64,
    ) -> io::Result<KvStore> {
        let dir = dir.as_ref();
        let store = match policy {
            PolicyKind::NvTraverse => KvStore::Nvt(ShardedSet::create(dir, shards, capacity_per_shard)?),
            PolicyKind::Soft => KvStore::Soft(ShardedSet::create(dir, shards, capacity_per_shard)?),
        };
        write_policy(dir, policy)?;
        Ok(store)
    }

    /// Reopens the store under `dir` with the policy it was created with
    /// (read from `policy.kind`). This is the crash-safe restart path:
    /// every shard pool runs its full recovery (heap walk, mark-sweep GC,
    /// structure `recover()`, op-table classification) before the store
    /// is returned.
    ///
    /// # Errors
    ///
    /// Fails when the directory holds no store, the policy file is
    /// missing or unknown, or any shard fails to open.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<KvStore> {
        let dir = dir.as_ref();
        Ok(match read_policy(dir)? {
            PolicyKind::NvTraverse => KvStore::Nvt(ShardedSet::open(dir)?),
            PolicyKind::Soft => KvStore::Soft(ShardedSet::open(dir)?),
        })
    }

    /// [`KvStore::open`] when `dir` holds a store, else
    /// [`KvStore::create`] — the restart-loop entry point.
    ///
    /// # Errors
    ///
    /// Propagates open/create failures; opening a store created under a
    /// different policy than `policy` fails rather than reinterpreting
    /// the data.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        policy: PolicyKind,
        shards: usize,
        capacity_per_shard: u64,
    ) -> io::Result<KvStore> {
        let dir = dir.as_ref();
        if policy_file(dir).exists() {
            let on_disk = read_policy(dir)?;
            if on_disk != policy {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "{}: store was created with policy {} but {} was requested",
                        dir.display(),
                        on_disk.name(),
                        policy.name()
                    ),
                ));
            }
            Self::open(dir)
        } else {
            Self::create(dir, policy, shards, capacity_per_shard)
        }
    }

    /// The policy this store runs under.
    pub fn policy(&self) -> PolicyKind {
        match self {
            KvStore::Nvt(_) => PolicyKind::NvTraverse,
            KvStore::Soft(_) => PolicyKind::Soft,
        }
    }

    /// Number of shard pools.
    pub fn shard_count(&self) -> usize {
        match self {
            KvStore::Nvt(s) => s.shard_count(),
            KvStore::Soft(s) => s.shard_count(),
        }
    }

    /// Which shard `key` routes to.
    pub fn shard_index_of(&self, key: u64) -> usize {
        match self {
            KvStore::Nvt(s) => s.shard_index_of(key),
            KvStore::Soft(s) => s.shard_index_of(key),
        }
    }

    /// Total keys across shards (quiescent-accurate, like every `len`).
    pub fn len(&self) -> usize {
        match self {
            KvStore::Nvt(s) => s.len(),
            KvStore::Soft(s) => s.len(),
        }
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        match self {
            KvStore::Nvt(s) => s.get(key),
            KvStore::Soft(s) => s.get(key),
        }
    }

    /// Inserts `key → value`; pool exhaustion is reported, not panicked.
    ///
    /// # Errors
    ///
    /// [`OpError::PoolFull`] when the routed shard's pool is exhausted.
    pub fn try_insert(&self, key: u64, value: u64) -> Result<bool, OpError> {
        match self {
            KvStore::Nvt(s) => s.try_insert(key, value),
            KvStore::Soft(s) => s.try_insert(key, value),
        }
    }

    /// Removes `key`.
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`OpError`] (removal itself cannot exhaust
    /// the pool).
    pub fn try_remove(&self, key: u64) -> Result<bool, OpError> {
        match self {
            KvStore::Nvt(s) => s.try_remove(key),
            KvStore::Soft(s) => s.try_remove(key),
        }
    }

    /// Claims one descriptor slot in every shard for a detectable-ops
    /// client. `None` under SOFT (its structures don't speak the
    /// descriptor protocol). Slots are never reused within a pool file's
    /// lifetime, so callers hold one bundle per long-lived thread — not
    /// one per operation.
    ///
    /// # Errors
    ///
    /// Fails when any shard's descriptor table is out of slots.
    pub fn detectable_tokens(&self) -> io::Result<Option<ShardTokens>> {
        match self {
            KvStore::Nvt(s) => Ok(Some(s.detectable_tokens()?)),
            KvStore::Soft(_) => Ok(None),
        }
    }

    /// Detectable insert; see [`ShardedSet::insert_detectable`].
    ///
    /// # Errors
    ///
    /// [`OpError::Unsupported`] under SOFT, otherwise the shard's error.
    pub fn insert_detectable(
        &self,
        tokens: &mut ShardTokens,
        key: u64,
        value: u64,
    ) -> Result<(OpId, bool), OpError> {
        match self {
            KvStore::Nvt(s) => s.insert_detectable(tokens, key, value),
            KvStore::Soft(_) => Err(OpError::Unsupported),
        }
    }

    /// Detectable remove; see [`ShardedSet::remove_detectable`].
    ///
    /// # Errors
    ///
    /// [`OpError::Unsupported`] under SOFT, otherwise the shard's error.
    pub fn remove_detectable(
        &self,
        tokens: &mut ShardTokens,
        key: u64,
    ) -> Result<(OpId, bool), OpError> {
        match self {
            KvStore::Nvt(s) => s.remove_detectable(tokens, key),
            KvStore::Soft(_) => Err(OpError::Unsupported),
        }
    }

    /// Classifies a detectable op against shard `shard`'s open-time
    /// descriptor table; `None` when the shard index is out of range or
    /// the pool can't answer.
    pub fn op_outcome(&self, shard: usize, id: OpId) -> Option<OpOutcome> {
        if shard >= self.shard_count() {
            return None;
        }
        match self {
            KvStore::Nvt(s) => s.shard(shard).pool().op_outcome(id),
            KvStore::Soft(s) => s.shard(shard).pool().op_outcome(id),
        }
    }

    /// All shards' pool metrics merged (see
    /// [`ShardedSet::metrics_snapshot`]).
    pub fn metrics_snapshot(&self) -> nvtraverse_obs::Snapshot {
        match self {
            KvStore::Nvt(s) => s.metrics_snapshot(),
            KvStore::Soft(s) => s.metrics_snapshot(),
        }
    }

    /// One recovery report per shard, from the last open.
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        match self {
            KvStore::Nvt(s) => s.recovery_reports(),
            KvStore::Soft(s) => s.recovery_reports(),
        }
    }

    /// Flushes every shard to its file and detaches.
    ///
    /// # Errors
    ///
    /// The first shard close failure (the rest still close).
    pub fn close(self) -> io::Result<()> {
        match self {
            KvStore::Nvt(s) => s.close(),
            KvStore::Soft(s) => s.close(),
        }
    }
}

/// A connection's lazily claimed [`ShardTokens`]: descriptor slots are a
/// finite per-pool resource (never reused within a file's lifetime), so a
/// connection that never issues a detectable operation must never claim
/// any.
#[derive(Debug, Default)]
pub struct ConnTokens {
    tokens: Option<ShardTokens>,
}

impl ConnTokens {
    /// Fresh, unclaimed.
    pub fn new() -> ConnTokens {
        ConnTokens { tokens: None }
    }

    /// The bundle, claiming it from `store` on first use.
    ///
    /// # Errors
    ///
    /// [`OpError::Unsupported`] under SOFT; [`OpError::PoolFull`] when a
    /// shard's descriptor table has no free slot.
    pub fn get_or_claim(&mut self, store: &KvStore) -> Result<&mut ShardTokens, OpError> {
        if self.tokens.is_none() {
            match store.detectable_tokens() {
                Ok(Some(t)) => self.tokens = Some(t),
                Ok(None) => return Err(OpError::Unsupported),
                Err(_) => return Err(OpError::PoolFull),
            }
        }
        Ok(self.tokens.as_mut().expect("just claimed"))
    }

    /// Direct access to a single shard's token (tests drive shards).
    pub fn token(&mut self, shard: usize) -> Option<&mut OpToken> {
        self.tokens.as_mut().map(|t| t.token(shard))
    }
}
