//! The wire protocol: length-prefixed binary frames.
//!
//! Every message — request or reply — is one *frame*: a little-endian
//! `u32` body length followed by that many body bytes. Frames longer than
//! [`MAX_FRAME`] are rejected before allocation (a malformed or hostile
//! length prefix must not OOM the server). A request body is an opcode
//! byte followed by a fixed little-endian payload; a reply body is a
//! status byte followed by a payload whose shape the client knows from
//! the request it sent (the protocol is strictly request/reply in order,
//! so replies need no self-description).
//!
//! ```text
//! frame   := len:u32le body[len]
//! request := opcode:u8 payload
//!   GET                (0x01) key:u64
//!   INSERT             (0x02) key:u64 value:u64
//!   REMOVE             (0x03) key:u64
//!   INSERT_DETECTABLE  (0x04) key:u64 value:u64
//!   REMOVE_DETECTABLE  (0x05) key:u64
//!   OP_OUTCOME         (0x06) shard:u32 op_id:u64
//!   STATS              (0x07)
//!   SHUTDOWN           (0x08)
//!   BATCH              (0x10) count:u32 (sub-request)*count   # sub-ops 0x01–0x05 only
//! reply   := status:u8 payload
//!   OK=0 MISS=1 UNSUPPORTED=2 POOL_FULL=3 UNKNOWN=4 BAD_REQUEST=0xFE
//! ```
//!
//! `BATCH` is the fence-amortization unit: the server executes its
//! sub-operations under one `FenceBatch` (one closing `sfence` for all of
//! them) and releases the combined reply only after that fence — group
//! commit. Batches must not nest, and control operations
//! (`OP_OUTCOME`/`STATS`/`SHUTDOWN`) cannot ride in one: a batch is a
//! durability unit, not a transport envelope.
//!
//! A reply with status `BAD_REQUEST` carries a UTF-8 diagnostic and is
//! followed by the server closing the connection: after a framing error
//! the stream position is untrustworthy.

use std::io::{self, Read, Write};

/// Upper bound on a frame body, enforced on both sides before allocating.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on operations per batch (bounds reply size and the work a
/// single frame can demand).
pub const MAX_BATCH: usize = 4096;

/// `GET key` opcode.
pub const OP_GET: u8 = 0x01;
/// `INSERT key value` opcode.
pub const OP_INSERT: u8 = 0x02;
/// `REMOVE key` opcode.
pub const OP_REMOVE: u8 = 0x03;
/// `INSERT_DETECTABLE key value` opcode.
pub const OP_INSERT_DETECTABLE: u8 = 0x04;
/// `REMOVE_DETECTABLE key` opcode.
pub const OP_REMOVE_DETECTABLE: u8 = 0x05;
/// `OP_OUTCOME shard op_id` opcode.
pub const OP_OP_OUTCOME: u8 = 0x06;
/// `STATS` opcode.
pub const OP_STATS: u8 = 0x07;
/// `SHUTDOWN` opcode.
pub const OP_SHUTDOWN: u8 = 0x08;
/// `BATCH count …` opcode.
pub const OP_BATCH: u8 = 0x10;

/// Reply status: the operation took effect / the value was found.
pub const ST_OK: u8 = 0;
/// Reply status: not found / already present — the no-op outcomes.
pub const ST_MISS: u8 = 1;
/// Reply status: the store's policy does not support this operation.
pub const ST_UNSUPPORTED: u8 = 2;
/// Reply status: the routed shard's pool is out of space.
pub const ST_POOL_FULL: u8 = 3;
/// Reply status: `OP_OUTCOME` could not classify the id.
pub const ST_UNKNOWN: u8 = 4;
/// Reply status: malformed request; the server closes the connection.
pub const ST_BAD_REQUEST: u8 = 0xFE;

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Get(u64),
    /// Insert `key → value` (set semantics: a duplicate is a no-op).
    Insert(u64, u64),
    /// Remove `key`.
    Remove(u64),
    /// Insert with a durable operation descriptor (exactly-once recovery).
    InsertDetectable(u64, u64),
    /// Remove with a durable operation descriptor.
    RemoveDetectable(u64),
    /// Classify a previous detectable operation after a crash.
    OpOutcome {
        /// Shard index the original operation was routed to.
        shard: u32,
        /// The `OpId` bits the original reply (or the client's prediction
        /// from its fsynced log) named.
        op_id: u64,
    },
    /// Server + store statistics as JSON.
    Stats,
    /// Ask the server to stop accepting and drain.
    Shutdown,
    /// N data operations sharing one closing fence (group commit).
    Batch(Vec<Request>),
}

impl Request {
    /// Whether this request may appear inside a [`Request::Batch`].
    pub fn batchable(&self) -> bool {
        matches!(
            self,
            Request::Get(..)
                | Request::Insert(..)
                | Request::Remove(..)
                | Request::InsertDetectable(..)
                | Request::RemoveDetectable(..)
        )
    }
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The operation took effect (insert was fresh / remove found its key).
    Applied,
    /// The no-op outcome: key absent (get/remove) or already present
    /// (insert).
    Miss,
    /// A get hit, carrying the value.
    Value(u64),
    /// A detectable operation ran; its durable descriptor is named by
    /// `(shard, op_id)` for post-crash [`Request::OpOutcome`] queries.
    Detectable {
        /// Whether the operation took effect (`Applied` vs `Miss`).
        applied: bool,
        /// Shard whose descriptor table holds the op.
        shard: u32,
        /// The `OpId` bits within that shard's pool.
        op_id: u64,
    },
    /// `OP_OUTCOME` classification: 0 committed, 1 not applied,
    /// 2 superseded.
    Outcome(u8),
    /// `OP_OUTCOME` could not classify the id (unknown slot / no table).
    Unknown,
    /// The store's policy does not support the operation.
    Unsupported,
    /// The routed shard's pool is full; nothing changed.
    PoolFull,
    /// A JSON document (`STATS`).
    Json(String),
    /// One reply per batched operation, in operation order.
    Batch(Vec<Reply>),
    /// Malformed request; the server closes the connection after this.
    BadRequest(String),
}

/// A framing or encoding violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

// ---- frame transport -------------------------------------------------------

/// Writes one frame (`u32le` length + body). The caller flushes the
/// stream when the exchange requires it (replies are flushed per frame by
/// the server; a pipelining client may batch its flushes).
///
/// # Errors
///
/// I/O errors from `w`; `InvalidData` when `body` exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(ProtoError(format!("frame of {} bytes exceeds MAX_FRAME", body.len())).into());
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame body. Returns `Ok(None)` on clean EOF **before** the
/// length prefix (the peer closed between messages).
///
/// # Errors
///
/// `UnexpectedEof` on mid-frame EOF, `InvalidData` on an oversized
/// length prefix, and any transport error from `r`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // Distinguish clean EOF (no bytes of the prefix) from truncation.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame (length prefix)",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError(format!("declared frame length {len} exceeds MAX_FRAME")).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---- request encoding ------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a request body (no frame prefix).
///
/// # Panics
///
/// Panics on a nested or oversized batch, or a non-batchable operation
/// inside one — those are constructible only by caller bugs, never from
/// wire input.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match *req {
        Request::Get(k) => {
            out.push(OP_GET);
            put_u64(out, k);
        }
        Request::Insert(k, v) => {
            out.push(OP_INSERT);
            put_u64(out, k);
            put_u64(out, v);
        }
        Request::Remove(k) => {
            out.push(OP_REMOVE);
            put_u64(out, k);
        }
        Request::InsertDetectable(k, v) => {
            out.push(OP_INSERT_DETECTABLE);
            put_u64(out, k);
            put_u64(out, v);
        }
        Request::RemoveDetectable(k) => {
            out.push(OP_REMOVE_DETECTABLE);
            put_u64(out, k);
        }
        Request::OpOutcome { shard, op_id } => {
            out.push(OP_OP_OUTCOME);
            put_u32(out, shard);
            put_u64(out, op_id);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Batch(ref subs) => {
            assert!(subs.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
            out.push(OP_BATCH);
            put_u32(out, subs.len() as u32);
            for sub in subs {
                assert!(sub.batchable(), "only data operations can be batched");
                encode_request(sub, out);
            }
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.at).ok_or_else(|| ProtoError("truncated body".into()))?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.at + 4;
        if end > self.buf.len() {
            return err("truncated u32");
        }
        let v = u32::from_le_bytes(self.buf[self.at..end].try_into().unwrap());
        self.at = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.at + 8;
        if end > self.buf.len() {
            return err("truncated u64");
        }
        let v = u64::from_le_bytes(self.buf[self.at..end].try_into().unwrap());
        self.at = end;
        Ok(v)
    }
}

fn decode_one(c: &mut Cursor<'_>, in_batch: bool) -> Result<Request, ProtoError> {
    let opcode = c.u8()?;
    let req = match opcode {
        OP_GET => Request::Get(c.u64()?),
        OP_INSERT => Request::Insert(c.u64()?, c.u64()?),
        OP_REMOVE => Request::Remove(c.u64()?),
        OP_INSERT_DETECTABLE => Request::InsertDetectable(c.u64()?, c.u64()?),
        OP_REMOVE_DETECTABLE => Request::RemoveDetectable(c.u64()?),
        OP_OP_OUTCOME if !in_batch => Request::OpOutcome {
            shard: c.u32()?,
            op_id: c.u64()?,
        },
        OP_STATS if !in_batch => Request::Stats,
        OP_SHUTDOWN if !in_batch => Request::Shutdown,
        OP_BATCH if !in_batch => {
            let count = c.u32()? as usize;
            if count > MAX_BATCH {
                return err(format!("batch of {count} ops exceeds MAX_BATCH ({MAX_BATCH})"));
            }
            let mut subs = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                subs.push(decode_one(c, true)?);
            }
            Request::Batch(subs)
        }
        OP_BATCH => return err("nested batch"),
        other if in_batch => return err(format!("opcode {other:#04x} not allowed in a batch")),
        other => return err(format!("unknown opcode {other:#04x}")),
    };
    Ok(req)
}

/// Parses one request body.
///
/// # Errors
///
/// [`ProtoError`] on unknown opcodes, truncated payloads, trailing
/// garbage, nested or oversized batches, and control ops inside a batch.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor { buf: body, at: 0 };
    let req = decode_one(&mut c, false)?;
    if c.at != body.len() {
        return err(format!("{} trailing bytes after request", body.len() - c.at));
    }
    Ok(req)
}

// ---- reply encoding --------------------------------------------------------

/// Serializes a reply body (no frame prefix).
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    match *reply {
        Reply::Applied => out.push(ST_OK),
        Reply::Miss => out.push(ST_MISS),
        Reply::Value(v) => {
            out.push(ST_OK);
            put_u64(out, v);
        }
        Reply::Detectable { applied, shard, op_id } => {
            out.push(if applied { ST_OK } else { ST_MISS });
            put_u32(out, shard);
            put_u64(out, op_id);
        }
        Reply::Outcome(o) => {
            out.push(ST_OK);
            out.push(o);
        }
        Reply::Unknown => out.push(ST_UNKNOWN),
        Reply::Unsupported => out.push(ST_UNSUPPORTED),
        Reply::PoolFull => out.push(ST_POOL_FULL),
        Reply::Json(ref s) => {
            out.push(ST_OK);
            out.extend_from_slice(s.as_bytes());
        }
        Reply::Batch(ref subs) => {
            out.push(ST_OK);
            put_u32(out, subs.len() as u32);
            for sub in subs {
                encode_reply(sub, out);
            }
        }
        Reply::BadRequest(ref msg) => {
            out.push(ST_BAD_REQUEST);
            out.extend_from_slice(msg.as_bytes());
        }
    }
}

fn decode_reply_one(req: &Request, c: &mut Cursor<'_>) -> Result<Reply, ProtoError> {
    let status = c.u8()?;
    match status {
        ST_BAD_REQUEST => {
            let msg = String::from_utf8_lossy(&c.buf[c.at..]).into_owned();
            c.at = c.buf.len();
            return Ok(Reply::BadRequest(msg));
        }
        ST_UNSUPPORTED => return Ok(Reply::Unsupported),
        ST_POOL_FULL => return Ok(Reply::PoolFull),
        ST_UNKNOWN => return Ok(Reply::Unknown),
        ST_OK | ST_MISS => {}
        other => return err(format!("unknown reply status {other:#04x}")),
    }
    let reply = match *req {
        Request::Get(..) => {
            if status == ST_OK {
                Reply::Value(c.u64()?)
            } else {
                Reply::Miss
            }
        }
        Request::Insert(..) | Request::Remove(..) | Request::Shutdown => {
            if status == ST_OK {
                Reply::Applied
            } else {
                Reply::Miss
            }
        }
        Request::InsertDetectable(..) | Request::RemoveDetectable(..) => Reply::Detectable {
            applied: status == ST_OK,
            shard: c.u32()?,
            op_id: c.u64()?,
        },
        Request::OpOutcome { .. } => {
            if status == ST_OK {
                Reply::Outcome(c.u8()?)
            } else {
                Reply::Miss
            }
        }
        Request::Stats => {
            let s = std::str::from_utf8(&c.buf[c.at..])
                .map_err(|_| ProtoError("STATS reply is not UTF-8".into()))?
                .to_owned();
            c.at = c.buf.len();
            Reply::Json(s)
        }
        Request::Batch(ref subs) => {
            let count = c.u32()? as usize;
            if count != subs.len() {
                return err(format!("batch reply has {count} entries for {} ops", subs.len()));
            }
            let mut replies = Vec::with_capacity(count);
            for sub in subs {
                replies.push(decode_reply_one(sub, c)?);
            }
            Reply::Batch(replies)
        }
    };
    Ok(reply)
}

/// Parses a reply body against the request that produced it (the protocol
/// is strict request/reply in order, so the client always knows the
/// request).
///
/// # Errors
///
/// [`ProtoError`] on status/shape mismatches, truncation, or trailing
/// bytes.
pub fn decode_reply(req: &Request, body: &[u8]) -> Result<Reply, ProtoError> {
    let mut c = Cursor { buf: body, at: 0 };
    let reply = decode_reply_one(req, &mut c)?;
    if c.at != body.len() {
        return err(format!("{} trailing bytes after reply", body.len() - c.at));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request, reply: Reply) {
        let mut rb = Vec::new();
        encode_request(&req, &mut rb);
        assert_eq!(decode_request(&rb).unwrap(), req);
        let mut pb = Vec::new();
        encode_reply(&reply, &mut pb);
        assert_eq!(decode_reply(&req, &pb).unwrap(), reply);
    }

    #[test]
    fn requests_and_replies_round_trip() {
        round_trip(Request::Get(7), Reply::Value(9));
        round_trip(Request::Get(7), Reply::Miss);
        round_trip(Request::Insert(1, 2), Reply::Applied);
        round_trip(Request::Remove(1), Reply::Miss);
        round_trip(
            Request::InsertDetectable(3, 4),
            Reply::Detectable { applied: true, shard: 2, op_id: 0x1_0000_0005 },
        );
        round_trip(Request::OpOutcome { shard: 1, op_id: 42 }, Reply::Outcome(0));
        round_trip(Request::OpOutcome { shard: 1, op_id: 42 }, Reply::Unknown);
        round_trip(Request::Stats, Reply::Json("{\"ok\":true}".into()));
        round_trip(
            Request::Batch(vec![Request::Get(1), Request::Insert(2, 3), Request::Remove(4)]),
            Reply::Batch(vec![Reply::Miss, Reply::Applied, Reply::PoolFull]),
        );
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(decode_request(&[]).is_err(), "empty body");
        assert!(decode_request(&[0xAB]).is_err(), "unknown opcode");
        assert!(decode_request(&[OP_GET, 1, 2]).is_err(), "truncated key");
        let mut ok = Vec::new();
        encode_request(&Request::Get(1), &mut ok);
        ok.push(0);
        assert!(decode_request(&ok).is_err(), "trailing bytes");
        // A batch may not nest or carry control ops.
        assert!(decode_request(&[OP_BATCH, 1, 0, 0, 0, OP_BATCH, 0, 0, 0, 0]).is_err());
        assert!(decode_request(&[OP_BATCH, 1, 0, 0, 0, OP_STATS]).is_err());
        // Batch count beyond MAX_BATCH is rejected before any allocation.
        let huge = (MAX_BATCH as u32 + 1).to_le_bytes();
        assert!(decode_request(&[OP_BATCH, huge[0], huge[1], huge[2], huge[3]]).is_err());
    }

    #[test]
    fn frames_round_trip_and_enforce_bounds() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Oversized declared length is refused without allocating.
        let bad = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &bad[..]).is_err());
        // Mid-frame EOF is an error, not a clean end.
        let truncated = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &truncated[..]).is_err());
    }
}
