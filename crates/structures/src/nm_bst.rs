//! Natarajan & Mittal's lock-free external BST (PPoPP 2014) in traversal
//! form — the second BST of the paper's evaluation (§5; the paper finds it
//! faster than Ellen et al.'s tree in the volatile version, with the gap
//! carrying over to the durable versions).
//!
//! Unlike Ellen et al.'s tree, which coordinates through per-node operation
//! descriptors, this algorithm marks **edges**: the child word is tagged
//! with up to two bits —
//!
//! * **flag** (our `MARK_BIT`): set on the edge to a leaf to *inject* its
//!   deletion; the flagged edge is frozen, which is the paper's Definition 1
//!   mark (the leaf and its parent can no longer be modified);
//! * **tag** (our `FLAG_BIT`): set on the sibling edge during cleanup so the
//!   sibling cannot change while the deleter swings the *ancestor* edge from
//!   the successor down to the sibling — the unique disconnection
//!   instruction of Property 5.
//!
//! The traversal (`seek`) returns the four-node window
//! `(ancestor, successor, parent, leaf)` plus the addresses of the two edges
//! the critical method may CAS, which is exactly the persist set Protocol 1
//! needs.

use nvtraverse::alloc::{alloc_node, free, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach, SetOp};
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;

/// Sentinel ranks: all ordinary keys sort below ∞₀ < ∞₁ < ∞₂.
const RANK_NORMAL: u64 = 0;
const RANK_INF0: u64 = 1;
const RANK_INF1: u64 = 2;
const RANK_INF2: u64 = 3;

/// Edge-word helpers, named after the algorithm's terminology.
#[inline]
fn is_flg<T>(w: MarkedPtr<T>) -> bool {
    w.is_marked()
}
#[inline]
fn is_tag<T>(w: MarkedPtr<T>) -> bool {
    w.is_flagged()
}
#[inline]
fn with_tag<T>(w: MarkedPtr<T>) -> MarkedPtr<T> {
    w.with_flag()
}

/// A tree node; `key`, `rank`, `leaf` and `value` are immutable. Children of
/// leaves stay null forever.
#[repr(C)]
pub struct NmNode<K: Word, V: Word, B: Backend> {
    key: PCell<K, B>,
    value: PCell<V, B>,
    rank: PCell<u64, B>,
    leaf: PCell<bool, B>,
    left: PCell<MarkedPtr<NmNode<K, V, B>>, B>,
    right: PCell<MarkedPtr<NmNode<K, V, B>>, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for NmNode<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NmNode").field("leaf", &self.leaf).finish()
    }
}

type NodePtr<K, V, B> = *mut NmNode<K, V, B>;
type EdgeCell<K, V, B> = PCell<MarkedPtr<NmNode<K, V, B>>, B>;

/// The seek record: the window `traverse` hands to `critical`.
pub struct NmSeek<K: Word, V: Word, B: Backend> {
    /// Deepest node on the path whose outgoing path edge was untagged.
    ancestor: NodePtr<K, V, B>,
    /// Ancestor's child on the path (the subtree the cleanup CAS replaces).
    successor: NodePtr<K, V, B>,
    /// The leaf's parent.
    parent: NodePtr<K, V, B>,
    /// The destination leaf.
    leaf: NodePtr<K, V, B>,
    /// The edge `ancestor → successor` (cleanup's CAS target).
    anc_succ_edge: *const EdgeCell<K, V, B>,
    /// The edge `parent → leaf` (injection/insertion CAS target).
    parent_edge: *const EdgeCell<K, V, B>,
    /// The edge followed *into* the ancestor (ensureReachable), null at root.
    anc_in_edge: *const EdgeCell<K, V, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for NmSeek<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NmSeek")
            .field("parent", &self.parent)
            .field("leaf", &self.leaf)
            .finish()
    }
}

/// Natarajan–Mittal's lock-free external BST, parameterized by durability
/// policy.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::DurableSet;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::nm_bst::NmBst;
///
/// let t: NmBst<u64, u64, NvTraverse<Clwb>> = NmBst::new();
/// assert!(t.insert(7, 70));
/// assert_eq!(t.get(7), Some(70));
/// assert!(t.remove(7));
/// ```
pub struct NmBst<K: Word, V: Word, D: Durability> {
    /// Sentinel R(∞₂); R.left = S(∞₁), R.right = leaf(∞₂);
    /// S.left = leaf(∞₀), S.right = leaf(∞₁).
    root: NodePtr<K, V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Send for NmBst<K, V, D> {}
// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Sync for NmBst<K, V, D> {}

impl<K, V, D> NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates the initial sentinel tree.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty tree retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let mk_leaf = |rank: u64| {
            alloc_node::<_, D::B>(NmNode {
                key: PCell::new(K::from_bits(0)),
                value: PCell::new(V::from_bits(0)),
                rank: PCell::new(rank),
                leaf: PCell::new(true),
                left: PCell::new(MarkedPtr::null()),
                right: PCell::new(MarkedPtr::null()),
            })
        };
        let l_inf0 = mk_leaf(RANK_INF0);
        let l_inf1 = mk_leaf(RANK_INF1);
        let l_inf2 = mk_leaf(RANK_INF2);
        let s = alloc_node::<_, D::B>(NmNode {
            key: PCell::new(K::from_bits(0)),
            value: PCell::new(V::from_bits(0)),
            rank: PCell::new(RANK_INF1),
            leaf: PCell::new(false),
            left: PCell::new(MarkedPtr::new(l_inf0)),
            right: PCell::new(MarkedPtr::new(l_inf1)),
        });
        let r = alloc_node::<_, D::B>(NmNode {
            key: PCell::new(K::from_bits(0)),
            value: PCell::new(V::from_bits(0)),
            rank: PCell::new(RANK_INF2),
            leaf: PCell::new(false),
            left: PCell::new(MarkedPtr::new(s)),
            right: PCell::new(MarkedPtr::new(l_inf2)),
        });
        let size = std::mem::size_of::<NmNode<K, V, D::B>>();
        for n in [l_inf0, l_inf1, l_inf2, s, r] {
            D::persist_new_node(n as *const u8, size);
        }
        D::before_return();
        NmBst {
            root: r,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// The collector nodes are retired into.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Rebuilds a tree handle around an existing sentinel root — the attach
    /// half of the pool lifecycle. The caller must run
    /// [`NmBst::recover_tree`] before any operation so every injected
    /// (flagged) deletion is completed and no tagged edge stays reachable.
    ///
    /// # Safety
    ///
    /// `root` must be the `R(∞₂)` sentinel of a tree built with the *same*
    /// `K`/`V`/`D` parameters, reachable and quiescent, and the caller must
    /// not drop two handles to the same tree (the pooled lifecycle never
    /// drops — see `nvtraverse::PooledHandle`).
    unsafe fn attach_at(root: NodePtr<K, V, D::B>, collector: Collector) -> Self {
        NmBst {
            root,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn goes_left(k: K, node: NodePtr<K, V, D::B>) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let rank = D::load_fixed(&(*node).rank);
            if rank != RANK_NORMAL {
                true
            } else {
                k < D::load_fixed(&(*node).key)
            }
        }
    }

    #[inline]
    fn leaf_is(l: NodePtr<K, V, D::B>, k: K) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe { D::load_fixed(&(*l).rank) == RANK_NORMAL && D::load_fixed(&(*l).key) == k }
    }

    #[inline]
    fn node_lt(a: NodePtr<K, V, D::B>, b: NodePtr<K, V, D::B>) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let (ra, rb) = (D::load_fixed(&(*a).rank), D::load_fixed(&(*b).rank));
            if ra != rb {
                ra < rb
            } else if ra != RANK_NORMAL {
                false
            } else {
                D::load_fixed(&(*a).key) < D::load_fixed(&(*b).key)
            }
        }
    }

    /// The cleanup routine: completes the deletion whose *flag* is visible on
    /// one of `rec.parent`'s edges. Returns whether the ancestor swing
    /// succeeded (by us).
    fn cleanup(&self, guard: &Guard, rec: &NmSeek<K, V, D::B>) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let p = rec.parent;
            let left_w = D::c_load_link(&(*p).left);
            let right_w = D::c_load_link(&(*p).right);
            // The flagged edge identifies the leaf being deleted.
            let (flag_target, other_cell): (_, &EdgeCell<K, V, D::B>) = if is_flg(left_w) {
                (left_w.ptr(), &(*p).right)
            } else if is_flg(right_w) {
                (right_w.ptr(), &(*p).left)
            } else {
                return false; // stale window: nothing to clean here
            };
            // Tag the sibling edge so it cannot change under us.
            loop {
                let w = D::c_load_link(other_cell);
                if is_tag(w) {
                    break;
                }
                if D::c_cas_link(other_cell, w, with_tag(w)).is_ok() {
                    break;
                }
            }
            let sib = D::c_load_link(other_cell);
            // Swing the ancestor edge from the successor to the sibling,
            // preserving the sibling's flag (it may itself be mid-deletion),
            // dropping the tag (the edge is leaving the tree).
            let mut new_word = MarkedPtr::new(sib.ptr());
            if is_flg(sib) {
                new_word = new_word.with_mark();
            }
            let anc_cell = &*rec.anc_succ_edge;
            let ok = D::c_cas_link(anc_cell, MarkedPtr::new(rec.successor), new_word).is_ok();
            if ok && rec.successor == rec.parent {
                // Common case: exactly {parent, flagged leaf} left the tree.
                guard.retire(p);
                if !flag_target.is_null() {
                    guard.retire(flag_target);
                }
            }
            // (When successor != parent a tagged chain was disconnected; it
            // is left to the collector-less domain — a bounded leak that
            // only occurs under contention, as in the reference C code.)
            ok
        }
    }

    /// Re-runs the seek inside the critical method (delete completion) and
    /// persists its window per Protocol 1 before acting on it.
    fn seek_persisted(&self, guard: &Guard, key: K) -> NmSeek<K, V, D::B> {
        let rec = self.traverse(guard, self.root, SetOp::Get(key));
        let mut ps = PersistSet::new();
        self.collect_persist_set(&rec, &mut ps);
        if let Some(p) = ps.parent() {
            D::ensure_reachable(p);
        }
        D::make_persistent(ps.fields());
        rec
    }

    /// Quiescent in-order walk of ordinary leaves.
    fn collect_leaves(&self, node: NodePtr<K, V, D::B>, out: &mut Vec<(K, V)>) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            if node.is_null() {
                return;
            }
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            if (*node).leaf.load() {
                if (*node).rank.load() == RANK_NORMAL {
                    out.push(((*node).key.load(), (*node).value.load()));
                }
                return;
            }
            self.collect_leaves((*node).left.load().ptr(), out);
            self.collect_leaves((*node).right.load().ptr(), out);
            // nvt-lint: end-allow(raw-pcell-access)
        }
    }

    /// Quiescent: all `(key, value)` pairs in key order.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    /// Quiescent: verifies external-BST shape; returns ordinary-key count.
    ///
    /// # Errors
    ///
    /// Reports order violations and (when `require_clean`) any reachable
    /// flagged or tagged edge.
    pub fn check_consistency(&self, require_clean: bool) -> Result<usize, String> {
        fn walk<K: Word + Ord, V: Word, D: Durability>(
            node: NodePtr<K, V, D::B>,
            require_clean: bool,
            count: &mut usize,
        ) -> Result<(), String> {
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            unsafe {
                if node.is_null() {
                    return Err("null child".into());
                }
                // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
                if (*node).leaf.load() {
                    if (*node).rank.load() == RANK_NORMAL {
                        *count += 1;
                    }
                    return Ok(());
                }
                for w in [(*node).left.load(), (*node).right.load()] {
                    if require_clean && (is_flg(w) || is_tag(w)) {
                        return Err("flagged/tagged edge after recovery".into());
                    }
                }
                walk::<K, V, D>((*node).left.load().ptr(), require_clean, count)?;
                walk::<K, V, D>((*node).right.load().ptr(), require_clean, count)
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
        let mut count = 0;
        walk::<K, V, D>(self.root, require_clean, &mut count)?;
        let snap = self.iter_snapshot();
        for w in snap.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err("leaf keys not strictly increasing".into());
            }
        }
        Ok(count)
    }

    /// Finds one reachable flagged edge's leaf, if any (recovery helper).
    fn find_flagged(&self, node: NodePtr<K, V, D::B>) -> Option<NodePtr<K, V, D::B>> {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
            if node.is_null() || (*node).leaf.load() {
                return None;
            }
            for w in [(*node).left.load(), (*node).right.load()] {
                if is_flg(w) {
                    return Some(w.ptr());
                }
            }
            self.find_flagged((*node).left.load().ptr())
                .or_else(|| self.find_flagged((*node).right.load().ptr()))
                // nvt-lint: end-allow(raw-pcell-access)
        }
    }

    /// Recovery (Supplement 1): complete every injected deletion so that no
    /// flagged or tagged edge stays reachable.
    pub fn recover_tree(&self) {
        if !D::DURABLE {
            return;
        }
        let guard = self.collector.pin();
        while let Some(leaf) = self.find_flagged(self.root) {
            // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
            // nvt-lint: allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
            let key = unsafe { (*leaf).key.load() };
            loop {
                let rec = self.seek_persisted(&guard, key);
                if rec.leaf != leaf {
                    break; // already disconnected
                }
                if self.cleanup(&guard, &rec) {
                    break;
                }
            }
        }
        D::before_return();
    }
}

impl<K: Word, V: Word, D: Durability> NmBst<K, V, D> {
    /// Teardown-safe child read: poisoned words read as null (tail leaks).
    fn teardown_child(cell: &EdgeCell<K, V, D::B>) -> NodePtr<K, V, D::B> {
        // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
        let bits = cell.peek_bits();
        if bits == nvtraverse_pmem::POISON {
            std::ptr::null_mut()
        } else {
            MarkedPtr::<NmNode<K, V, D::B>>::from_bits_raw(bits).ptr()
        }
    }

    fn free_subtree(node: NodePtr<K, V, D::B>) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            if node.is_null() {
                return;
            }
            // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
            let leaf_bits = (*node).leaf.peek_bits();
            if leaf_bits != nvtraverse_pmem::POISON && !bool::from_bits(leaf_bits) {
                Self::free_subtree(Self::teardown_child(&(*node).left));
                Self::free_subtree(Self::teardown_child(&(*node).right));
            }
            free(node);
        }
    }
}

impl<K, V, D> TraversalOps for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = SetOp<K, V>;
    type Output = Option<V>;
    type Entry = NodePtr<K, V, D::B>;
    type Window = NmSeek<K, V, D::B>;

    fn find_entry(&self, _guard: &Guard, _input: Self::Input) -> Self::Entry {
        self.root
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        let key = match input {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let r = entry;
            let r_left: &EdgeCell<K, V, D::B> = &(*r).left;
            let s = D::t_load_link(r_left).ptr(); // S is a sentinel, immortal
            let s_left: &EdgeCell<K, V, D::B> = &(*s).left;
            let sl_word = D::t_load_link(s_left);

            let mut rec = NmSeek {
                ancestor: r,
                successor: s,
                parent: s,
                leaf: sl_word.ptr(),
                anc_succ_edge: r_left as *const _,
                parent_edge: s_left as *const _,
                anc_in_edge: std::ptr::null(),
            };
            let mut into_parent: *const EdgeCell<K, V, D::B> = r_left as *const _;
            let mut parent_field = sl_word;
            loop {
                let cur = rec.leaf;
                if D::load_fixed(&(*cur).leaf) {
                    break;
                }
                let next_cell: &EdgeCell<K, V, D::B> = if Self::goes_left(key, cur) {
                    &(*cur).left
                } else {
                    &(*cur).right
                };
                let next_field = D::t_load_link(next_cell);
                if next_field.is_null() {
                    break; // defensive: treat as destination
                }
                if !is_tag(parent_field) {
                    rec.ancestor = rec.parent;
                    rec.successor = rec.leaf;
                    rec.anc_succ_edge = rec.parent_edge;
                    rec.anc_in_edge = into_parent;
                }
                into_parent = rec.parent_edge;
                rec.parent = rec.leaf;
                rec.parent_edge = next_cell as *const _;
                parent_field = next_field;
                rec.leaf = next_field.ptr();
            }
            rec
        }
    }

    fn collect_persist_set(&self, w: &Self::Window, out: &mut PersistSet) {
        // ensureReachable: the edge that links the window's topmost node
        // (Lemma 4.1 with k = 1 — inserts link a single internal node whose
        // two children are persisted before publication).
        if !w.anc_in_edge.is_null() {
            out.set_parent(w.anc_in_edge as *const u8);
        }
        // makePersistent: the two edges the critical method depends on.
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            out.push((*w.anc_succ_edge).addr());
            out.push((*w.parent_edge).addr());
        }
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        match input {
            SetOp::Get(key) => {
                if Self::leaf_is(w.leaf, key) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    Critical::Done(Some(D::load_fixed(unsafe { &(*w.leaf).value })))
                } else {
                    Critical::Done(None)
                }
            }
            SetOp::Insert(key, value) => {
                if Self::leaf_is(w.leaf, key) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    return Critical::Done(Some(D::load_fixed(unsafe { &(*w.leaf).value })));
                }
                let new_leaf = alloc_node::<_, D::B>(NmNode {
                    key: PCell::new(key),
                    value: PCell::new(value),
                    rank: PCell::new(RANK_NORMAL),
                    leaf: PCell::new(true),
                    left: PCell::new(MarkedPtr::null()),
                    right: PCell::new(MarkedPtr::null()),
                });
                // The existing leaf is *reused* as the other child (unlike
                // Ellen et al., no copy is made).
                let (lc, rc, ikey, irank) = if Self::node_lt(new_leaf, w.leaf) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    unsafe {
                        (
                            new_leaf,
                            w.leaf,
                            D::load_fixed(&(*w.leaf).key),
                            D::load_fixed(&(*w.leaf).rank),
                        )
                    }
                } else {
                    (w.leaf, new_leaf, key, RANK_NORMAL)
                };
                let new_internal = alloc_node::<_, D::B>(NmNode {
                    key: PCell::new(ikey),
                    value: PCell::new(V::from_bits(0)),
                    rank: PCell::new(irank),
                    leaf: PCell::new(false),
                    left: PCell::new(MarkedPtr::new(lc)),
                    right: PCell::new(MarkedPtr::new(rc)),
                });
                let size = std::mem::size_of::<NmNode<K, V, D::B>>();
                D::persist_new_node(new_leaf as *const u8, size);
                D::persist_new_node(new_internal as *const u8, size);
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let cell = unsafe { &*w.parent_edge };
                match D::c_cas_link(cell, MarkedPtr::new(w.leaf), MarkedPtr::new(new_internal)) {
                    Ok(()) => Critical::Done(None),
                    Err(actual) => {
                        // Help a deletion that froze our edge, then retry.
                        if actual.ptr() == w.leaf && (is_flg(actual) || is_tag(actual)) {
                            self.cleanup(guard, &w);
                        }
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        unsafe {
                            free(new_leaf);
                            free(new_internal);
                        }
                        Critical::Restart
                    }
                }
            }
            SetOp::Remove(key) => {
                if !Self::leaf_is(w.leaf, key) {
                    return Critical::Done(None);
                }
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let cell = unsafe { &*w.parent_edge };
                // Injection: flag the edge to the leaf (the Definition 1
                // mark — the unique deletion intent for this leaf).
                let clean = MarkedPtr::new(w.leaf);
                match D::c_cas_link(cell, clean, clean.with_mark()) {
                    Ok(()) => {
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        let value = D::load_fixed(unsafe { &(*w.leaf).value });
                        let my_leaf = w.leaf;
                        // Cleanup mode: retry until our leaf is disconnected
                        // (by us or a helper).
                        let mut rec = w;
                        loop {
                            if self.cleanup(guard, &rec) {
                                break;
                            }
                            rec = self.seek_persisted(guard, key);
                            if rec.leaf != my_leaf {
                                break;
                            }
                        }
                        Critical::Done(Some(value))
                    }
                    Err(actual) => {
                        if actual.ptr() == w.leaf && (is_flg(actual) || is_tag(actual)) {
                            self.cleanup(guard, &w);
                        }
                        Critical::Restart
                    }
                }
            }
        }
    }
}

impl<K, V, D> DurableSet<K, V> for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Insert(key, value)).is_none()
    }

    fn remove(&self, key: K) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Remove(key)).is_some()
    }

    fn get(&self, key: K) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Get(key))
    }

    fn len(&self) -> usize {
        self.iter_snapshot().len()
    }

    fn recover(&self) {
        self.recover_tree();
    }
}

impl<K, V, D> PoolAttach for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let t = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, t.root)?;
        Ok(t)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let root = pool.attach_root_ptr::<NmNode<K, V, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(root, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover_tree();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: the tree coordinates through flag/tag bits *on the edges* — there
// are no operation descriptors — so the reachable set is exactly the nodes
// under the sentinel root via child pointers with tags stripped. A flagged
// (mid-deletion) leaf and its parent are still linked until cleanup's
// ancestor swing, so the plain child walk keeps them for `recover_tree` to
// complete; tagged chains already disconnected under contention are
// unreachable, provably garbage, and left for the sweep (this is the
// reference implementation's bounded leak, now reclaimed at open).
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<K, V, D> nvtraverse::PoolTrace for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        let mut work: Vec<NodePtr<K, V, D::B>> = vec![root as NodePtr<K, V, D::B>];
        while let Some(node) = work.pop() {
            if node.is_null() || !marker.mark(node as *const u8) {
                continue;
            }
            // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
            unsafe {
                // nvt-lint: begin-allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
                if (*node).leaf.load() {
                    continue;
                }
                work.push((*node).left.load().ptr());
                work.push((*node).right.load().ptr());
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
    }
}

impl<K, V, D> Default for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D> fmt::Debug for NmBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NmBst").field("len", &self.len()).finish()
    }
}

impl<K: Word, V: Word, D: Durability> Drop for NmBst<K, V, D> {
    fn drop(&mut self) {
        Self::free_subtree(self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn smoke<D: Durability>() {
        let t: NmBst<u64, u64, D> = NmBst::new();
        assert!(t.is_empty());
        assert!(t.insert(5, 50));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert!(!t.insert(5, 99));
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.len(), 3);
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.get(5), None);
        assert_eq!(t.iter_snapshot(), vec![(3, 30), (8, 80)]);
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn volatile_semantics() {
        smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_semantics() {
        smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_semantics() {
        smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn link_persist_semantics() {
        smoke::<LinkPersist<Clwb>>();
    }

    #[test]
    fn ascending_descending_and_lookup() {
        let t: NmBst<u64, u64, Volatile> = NmBst::new();
        for k in 0..200u64 {
            assert!(t.insert(k, k));
        }
        for k in (200..400u64).rev() {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.check_consistency(false).unwrap(), 400);
        for k in 0..400u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn delete_to_empty_and_reuse() {
        let t: NmBst<u64, u64, NvTraverse<Noop>> = NmBst::new();
        for k in 0..50u64 {
            t.insert(k, k);
        }
        for k in 0..50u64 {
            assert!(t.remove(k), "remove({k})");
        }
        assert!(t.is_empty());
        assert!(t.insert(7, 70));
        assert_eq!(t.get(7), Some(70));
        t.check_consistency(true).unwrap();
    }

    #[test]
    fn matches_model_on_random_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let t: NmBst<u64, u64, NvTraverse<Noop>> = NmBst::new();
        let mut model = ModelSet::new();
        for i in 0..4000u64 {
            let k = rng.random_range(0..128);
            match rng.random_range(0..3) {
                0 => assert_eq!(t.insert(k, i), model.insert(k, i), "insert({k})"),
                1 => assert_eq!(t.remove(k), model.remove(k), "remove({k})"),
                _ => assert_eq!(t.get(k), model.get(k), "get({k})"),
            }
        }
        let pairs: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(t.iter_snapshot(), pairs);
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let t: NmBst<u64, u64, NvTraverse<Clwb>> = NmBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let base = tid * 500;
                    for k in base..base + 500 {
                        assert!(t.insert(k, k));
                    }
                    for k in (base..base + 500).step_by(2) {
                        assert!(t.remove(k));
                    }
                });
            }
        });
        assert_eq!(t.check_consistency(false).unwrap(), 1000);
    }

    #[test]
    fn concurrent_contended_stress() {
        use rand::prelude::*;
        let t: NmBst<u64, u64, NvTraverse<Clwb>> = NmBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(tid + 100);
                    for _ in 0..3000 {
                        let k = rng.random_range(0..64);
                        match rng.random_range(0..10) {
                            0..=3 => {
                                t.insert(k, k);
                            }
                            4..=6 => {
                                t.remove(k);
                            }
                            _ => {
                                t.get(k);
                            }
                        }
                    }
                });
            }
        });
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn recovery_completes_injected_delete() {
        // Flag a leaf's edge by hand (crash between injection and cleanup);
        // recovery must finish the deletion.
        let t: NmBst<u64, u64, NvTraverse<Noop>> = NmBst::new();
        for k in [10u64, 5, 15] {
            t.insert(k, k);
        }
        unsafe {
            // Walk to leaf 5's parent edge and flag it.
            let mut parent = t.root;
            let mut cell = &(*parent).left;
            let mut node = cell.load().ptr();
            while !(*node).leaf.load() {
                parent = node;
                cell = if NmBst::<u64, u64, NvTraverse<Noop>>::goes_left(5, parent) {
                    &(*parent).left
                } else {
                    &(*parent).right
                };
                node = cell.load().ptr();
            }
            assert_eq!((*node).key.load(), 5);
            let w = cell.load();
            cell.store(w.with_mark()); // FLAG
        }
        assert!(t.check_consistency(true).is_err());
        t.recover();
        assert_eq!(t.get(5), None, "recovery must complete the deletion");
        t.check_consistency(true).unwrap();
        assert!(t.insert(5, 55));
    }
}
