//! A lock-free skiplist whose *bottom level is the persistent core tree* and
//! whose towers are volatile shortcuts — the paper's showcase for Property 2:
//!
//! > "a skiplist can be a traversal data structure, since, while the entire
//! > structure is not a tree, only a linked list at the bottom level holds
//! > all the data in the skiplist, while the rest of the nodes and edges
//! > simply serve as a way to access the linked list faster."
//!
//! Consequences of that split:
//!
//! * Bottom-level `next` words go through the [`Durability`] policy (the
//!   paper's flushes); tower words use **raw** cell operations — they are
//!   never flushed under any policy, because they are recomputed after a
//!   crash ([`SkipList::recover_skiplist`] rebuilds every tower from the
//!   bottom list with write-only passes).
//! * `findEntry` descends the towers (it may snip marked tower links — the
//!   auxiliary structure is not subject to the traverse method's no-write
//!   rule), returning a bottom-level entry node; `traverse` is then exactly
//!   Harris's bottom walk.
//! * `ensureReachable` uses Supplement 2's *original parent* field: the
//!   entry shortcut means the traversal may not know the current parent of
//!   its first returned node, so each node records the address of the
//!   pointer that first linked it into the bottom list.
//!
//! The algorithm follows the lock-free skiplist lineage the paper cites
//! (Michael / Fraser / Herlihy et al.): deletion marks the bottom link (the
//! linearization point), then unlinks the tower levels top-down.

use nvtraverse::alloc::{alloc_node, free, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach, SetOp};
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tower height cap: supports the evaluated sizes (≤ a few million keys).
pub const MAX_HEIGHT: usize = 16;

/// One skiplist node. `key`, `value`, `height` and `orig_parent` are
/// immutable; `next[0]` is the persistent bottom link; `next[1..height]` are
/// volatile tower links.
#[repr(C)]
pub struct SkipNode<K: Word, V: Word, B: Backend> {
    key: PCell<K, B>,
    value: PCell<V, B>,
    /// Immutable tower height in `1..=MAX_HEIGHT`.
    height: PCell<u64, B>,
    /// Supplement 2: address of the bottom link that first connected us.
    orig_parent: PCell<u64, B>,
    /// `next[0]` persistent; higher levels volatile (never flushed).
    next: [Link<K, V, B>; MAX_HEIGHT],
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for SkipNode<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipNode")
            .field("height", &self.height)
            .finish()
    }
}

type NodePtr<K, V, B> = *mut SkipNode<K, V, B>;
/// One tower-link word (bottom level persistent, upper levels volatile).
type Link<K, V, B> = PCell<MarkedPtr<SkipNode<K, V, B>>, B>;

/// Traversal window: Harris's bottom-list window plus the tower
/// predecessors `findEntry` computed (auxiliary data for upper linking).
pub struct SkipWindow<K: Word, V: Word, B: Backend> {
    left: NodePtr<K, V, B>,
    left_succ: MarkedPtr<SkipNode<K, V, B>>,
    right: NodePtr<K, V, B>,
    /// Tower predecessors per level (volatile shortcuts; level 0 unused).
    preds: [NodePtr<K, V, B>; MAX_HEIGHT],
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for SkipWindow<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipWindow")
            .field("left", &self.left)
            .field("right", &self.right)
            .finish()
    }
}

/// A lock-free skiplist map, parameterized by durability policy.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::DurableSet;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::skiplist::SkipList;
///
/// let s: SkipList<u64, u64, NvTraverse<Clwb>> = SkipList::new();
/// assert!(s.insert(9, 90));
/// assert_eq!(s.get(9), Some(90));
/// ```
pub struct SkipList<K: Word, V: Word, D: Durability> {
    head: NodePtr<K, V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    /// Deterministic height source (split-mix of a counter), so crash tests
    /// replay identically.
    height_seq: AtomicU64,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Send for SkipList<K, V, D> {}
// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Sync for SkipList<K, V, D> {}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<K, V, D> SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty skiplist retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let head = alloc_node::<_, D::B>(SkipNode {
            key: PCell::new(K::from_bits(0)), // sentinel, never read
            value: PCell::new(V::from_bits(0)),
            height: PCell::new(MAX_HEIGHT as u64),
            orig_parent: PCell::new(0),
            next: std::array::from_fn(|_| PCell::new(MarkedPtr::null())),
        });
        // Only the persistent part of the head needs to survive: flushing
        // the whole node is harmless and simplest.
        Self::mark_tower_volatile(head);
        D::persist_new_node(head as *const u8, std::mem::size_of::<SkipNode<K, V, D::B>>());
        D::before_return();
        SkipList {
            head,
            collector,
            ctx: PoolCtx::current(),
            height_seq: AtomicU64::new(1),
            _marker: PhantomData,
        }
    }

    /// The collector nodes are retired into.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The head tower (for pool root registration below).
    fn head_ptr(&self) -> NodePtr<K, V, D::B> {
        self.head
    }

    /// Declares `node`'s upper tower links (`next[1..]`) volatile by design
    /// to any vet observer: only `next[0]` is part of the durable list,
    /// recovery rebuilds the rest.
    fn mark_tower_volatile(node: NodePtr<K, V, D::B>) {
        // SAFETY: the caller just allocated `node`, so the tower array is
        // live memory and taking element addresses cannot race anything.
        let upper = unsafe { (*node).next[1].addr() as usize };
        nvtraverse_pmem::sim::current_mark_volatile_range(upper, (MAX_HEIGHT - 1) * 8);
    }

    /// Rebuilds a skiplist handle around an existing head tower — the attach
    /// half of the pool lifecycle. The caller must run recovery before any
    /// operation: the persisted tower words are stale (they are volatile
    /// shortcuts that happen to live in pool memory) until
    /// [`SkipList::recover_skiplist`] rebuilds them from the bottom list.
    ///
    /// # Safety
    ///
    /// `head` must be the head tower of a skiplist built with the *same*
    /// `K`/`V`/`D` parameters, reachable and quiescent, and the caller must
    /// not drop two handles to the same structure (the pooled lifecycle
    /// never drops — see `nvtraverse::PooledHandle`).
    pub(crate) unsafe fn attach_at(head: NodePtr<K, V, D::B>, collector: Collector) -> Self {
        SkipList {
            head,
            collector,
            ctx: PoolCtx::current(),
            // recover_skiplist reseeds this past the live node count.
            height_seq: AtomicU64::new(1),
            _marker: PhantomData,
        }
    }

    /// Geometric(1/2) tower height in `1..=MAX_HEIGHT`, deterministic in the
    /// number of prior calls.
    fn next_height(&self) -> usize {
        let n = self.height_seq.fetch_add(1, Ordering::Relaxed);
        let bits = splitmix64(n);
        ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    #[inline]
    fn key_of(node: NodePtr<K, V, D::B>) -> K {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        D::load_fixed(unsafe { &(*node).key })
    }

    #[inline]
    fn is_head(&self, node: NodePtr<K, V, D::B>) -> bool {
        node == self.head
    }

    /// `key(node) < k`, treating the head as −∞.
    #[inline]
    fn below(&self, node: NodePtr<K, V, D::B>, k: K) -> bool {
        self.is_head(node) || Self::key_of(node) < k
    }

    /// Auxiliary (volatile) walk of one tower level starting at `start`,
    /// snipping marked links on the way. Returns the rightmost node at
    /// `level` with key < `k`.
    ///
    /// Tower accesses are raw — never routed through the policy — because
    /// the towers are recomputed on recovery (Property 2).
    fn aux_walk(
        &self,
        start: NodePtr<K, V, D::B>,
        level: usize,
        k: K,
    ) -> NodePtr<K, V, D::B> {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut pred = start;
            loop {
                // nvt-lint: begin-allow(raw-pcell-access): volatile tower links (levels >= 1) are never flushed; towers are rebuilt on recovery
                let mut w = (*pred).next[level].load();
                // A marked word means *pred itself* was deleted at this
                // level. Its tower word is frozen from here on: snipping
                // through it would CAS an **unmarked** successor word into
                // the dead node, un-marking it and re-exposing it at this
                // level — the ROADMAP's livelock (competing walks then
                // re-mark/re-snip the same tower word forever). Hand the
                // marked pred back; callers restart from a live start
                // point (ultimately the never-marked head).
                if w.is_marked() {
                    return pred;
                }
                // Snip marked successors (auxiliary maintenance).
                loop {
                    let curr = w.ptr();
                    if curr.is_null() {
                        return pred;
                    }
                    let cw = (*curr).next[level].load();
                    if cw.is_marked() {
                        // Bypass curr at this level.
                        match (*pred).next[level]
                            .compare_exchange(w, cw.without_mark().untagged())
                            // nvt-lint: end-allow(raw-pcell-access)
                        {
                            Ok(_) => w = cw.without_mark().untagged(),
                            Err(actual) => {
                                if actual.is_marked() {
                                    // pred itself got marked; restart higher.
                                    return pred;
                                }
                                w = actual;
                            }
                        }
                    } else {
                        break;
                    }
                }
                let curr = w.ptr();
                if curr.is_null() || !self.below(curr, k) {
                    return pred;
                }
                pred = curr;
            }
        }
    }

    /// Ensures `node` is no longer linked at `level` (used before retiring).
    ///
    /// Two phases. The first rounds lean on [`SkipList::aux_walk`]'s snipping
    /// as a side effect — the common case removes the node in one pass. If
    /// the node stays reachable past [`Self::UNLINK_GENERIC_ROUNDS`] rounds
    /// (heavy contention keeps invalidating the walk), fall back to a
    /// *targeted* unlink that restarts from the entry (the never-marked
    /// head) every round and CASes exactly this node out. The outer loop is
    /// thereby bounded to generic rounds + however long the single frozen
    /// link takes to snip — `node`'s tower word at `level` is already
    /// marked and (with the un-marking bug fixed above) can never be
    /// re-exposed, so no round can undo another's progress.
    fn unlink_level(&self, node: NodePtr<K, V, D::B>, level: usize, k: K) {
        let mut rounds = 0u32;
        loop {
            if rounds >= Self::UNLINK_GENERIC_ROUNDS {
                if self.targeted_unlink(node, level) {
                    return;
                }
                std::hint::spin_loop();
                continue;
            }
            rounds += 1;
            let pred = self.aux_walk(self.head, level, k);
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            // nvt-lint: begin-allow(raw-pcell-access): volatile tower links (levels >= 1) are never flushed; towers are rebuilt on recovery
            let w = unsafe { (*pred).next[level].load() };
            if w.is_marked() {
                // pred died under the walk: its view of the level is
                // useless. Count the round (a competing deleter is making
                // progress here) and restart from the entry.
                continue;
            }
            let mut cur = w.ptr();
            // Check whether node is still reachable at this level from pred
            // onwards (keys ≥ k region).
            let mut reachable = false;
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            unsafe {
                let mut hops = 0;
                while !cur.is_null() && hops < 64 {
                    if cur == node {
                        reachable = true;
                        break;
                    }
                    // Past the key means it cannot appear later.
                    if !self.below(cur, k) && Self::key_of(cur) != k {
                        break;
                    }
                    cur = (*cur).next[level].load().ptr();
                    // nvt-lint: end-allow(raw-pcell-access)
                    hops += 1;
                }
            }
            if !reachable {
                return;
            }
            // aux_walk snips as a side effect; loop until gone.
            std::hint::spin_loop();
        }
    }

    /// Generic `unlink_level` rounds before switching to the targeted walk.
    const UNLINK_GENERIC_ROUNDS: u32 = 64;

    /// One round of `unlink_level`'s fallback: walk `level` from the head
    /// and, if `node` is still some predecessor's successor, CAS it out
    /// with its own frozen successor. Returns `true` once `node` is
    /// provably unreachable at this level.
    ///
    /// `node` is marked at `level` (the deleter marked every tower level
    /// before unlinking), so its successor word is frozen — reading it once
    /// is sound — and no walk can ever re-link it.
    fn targeted_unlink(&self, node: NodePtr<K, V, D::B>, level: usize) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): volatile tower links (levels >= 1) are never flushed; towers are rebuilt on recovery
            let node_word = (*node).next[level].load();
            debug_assert!(node_word.is_marked(), "targeted unlink of an unmarked node");
            let replacement = node_word.without_mark().untagged();
            let mut pred = self.head;
            loop {
                let w = (*pred).next[level].load();
                if w.is_marked() {
                    // pred died mid-walk; restart from the entry next round.
                    return false;
                }
                let curr = w.ptr();
                if curr.is_null() {
                    return true; // fell off the level: node is not linked here
                }
                if curr == node {
                    // Snip exactly node. A lost CAS means pred's link moved
                    // (possibly a concurrent walk unlinked node for us) —
                    // re-probe with a fresh walk next round.
                    return (*pred).next[level].compare_exchange(w, replacement).is_ok();
                    // nvt-lint: end-allow(raw-pcell-access)
                }
                pred = curr;
            }
        }
    }

    /// Returns the smallest live `(key, value)`, reading through the policy
    /// (used by the priority queue's `peek`/`pop_min`). Linearizes at the
    /// bottom-link read of the first unmarked node.
    pub fn min_entry(&self) -> Option<(K, V)> {
        // Unlike the quiescent snapshot walks, this runs concurrently with
        // removers: the marked nodes it reads through are retire()d by their
        // deleters, so the walk must hold an epoch pin.
        let _guard = self.collector.pin();
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut cur = D::t_load_link(&(*self.head).next[0]);
            loop {
                let node = cur.ptr();
                if node.is_null() {
                    return None;
                }
                let nw = D::t_load_link(&(*node).next[0]);
                if !nw.is_marked() {
                    return Some((
                        D::load_fixed(&(*node).key),
                        D::load_fixed(&(*node).value),
                    ));
                }
                cur = nw;
            }
        }
    }

    /// Quiescent: the live `(key, value)` pairs in key order (the unmarked
    /// bottom list — the persistent core the towers merely accelerate).
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        self.bottom_snapshot(false)
    }

    /// Quiescent bottom-list walk.
    fn bottom_snapshot(&self, include_marked: bool) -> Vec<(K, V)> {
        let mut out = Vec::new();
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.head).next[0].load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next[0].load();
                if include_marked || !nw.is_marked() {
                    out.push(((*cur).key.load(), (*cur).value.load()));
                    // nvt-lint: end-allow(raw-pcell-access)
                }
                cur = nw.ptr();
            }
        }
        out
    }

    /// Quiescent: verifies bottom-list sortedness and tower reachability.
    ///
    /// # Errors
    ///
    /// Reports unsorted bottom keys, reachable bottom-marked nodes (when
    /// `allow_marked` is false), or a tower link pointing at a node that is
    /// not alive in the bottom list.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        use std::collections::HashSet;
        let mut live: HashSet<usize> = HashSet::new();
        let mut count = 0;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut last: Option<K> = None;
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.head).next[0].load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next[0].load();
                if nw.is_marked() {
                    if !allow_marked {
                        return Err("reachable bottom-marked node".into());
                    }
                } else {
                    let k = (*cur).key.load();
                    if let Some(prev) = last.take() {
                        if prev >= k {
                            return Err("bottom keys not strictly increasing".into());
                        }
                    }
                    last = Some(k);
                    live.insert(cur as usize);
                    count += 1;
                }
                cur = nw.ptr();
            }
            // Towers must only reference live bottom nodes (after recovery).
            if !allow_marked {
                for level in 1..MAX_HEIGHT {
                    let mut c = (*self.head).next[level].load().ptr();
                    let mut prev_key: Option<K> = None;
                    while !c.is_null() {
                        if !live.contains(&(c as usize)) {
                            return Err(format!("tower level {level} references dead node"));
                        }
                        let k = (*c).key.load();
                        if let Some(pk) = prev_key.take() {
                            if pk >= k {
                                return Err(format!("tower level {level} unsorted"));
                            }
                        }
                        prev_key = Some(k);
                        c = (*c).next[level].load().ptr();
                        // nvt-lint: end-allow(raw-pcell-access)
                    }
                }
            }
        }
        Ok(count)
    }

    /// Recovery (paper §4 + Property 2): trim marked bottom nodes with the
    /// policy's disconnection CASes, then rebuild every volatile tower from
    /// the bottom list with write-only passes (no tower word is read, so
    /// poisoned towers are safe).
    pub fn recover_skiplist(&self) {
        if !D::DURABLE {
            return;
        }
        let guard = self.collector.pin();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            // Pass 1: disconnect marked bottom nodes (Supplement 1).
            let mut pred = self.head;
            loop {
                // nvt-lint: begin-allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
                let start = (*pred).next[0].load().without_dirty();
                let mut cur = start.ptr();
                while !cur.is_null() {
                    let nw = (*cur).next[0].load();
                    if nw.is_marked() {
                        cur = nw.ptr();
                    } else {
                        break;
                    }
                }
                if cur != start.ptr() {
                    let to = if cur.is_null() {
                        MarkedPtr::null()
                    } else {
                        MarkedPtr::new(cur)
                    };
                    if D::c_cas_link(&(*pred).next[0], start, to).is_ok() {
                        let mut dead = start.ptr();
                        while !dead.is_null() && dead != cur {
                            let nxt = (*dead).next[0].load().ptr();
                            guard.retire(dead);
                            dead = nxt;
                        }
                    } else {
                        continue;
                    }
                }
                if cur.is_null() {
                    break;
                }
                pred = cur;
            }
            // Pass 2: rebuild towers (volatile): store-only, left to right.
            let mut prevs: [NodePtr<K, V, D::B>; MAX_HEIGHT] = [self.head; MAX_HEIGHT];
            let mut count: u64 = 0;
            let mut cur = (*self.head).next[0].load().ptr();
            while !cur.is_null() {
                count += 1;
                let h = (*cur).height.load() as usize;
                // Indexing two arrays in lockstep; an iterator form obscures it.
                #[allow(clippy::needless_range_loop)]
                for level in 1..h {
                    (*prevs[level]).next[level].store(MarkedPtr::new(cur));
                    prevs[level] = cur;
                }
                cur = (*cur).next[0].load().ptr();
            }
            for (level, prev) in prevs.iter().enumerate().skip(1) {
                (**prev).next[level].store(MarkedPtr::null());
                // nvt-lint: end-allow(raw-pcell-access)
            }
            // Reseed the deterministic height source past the surviving
            // population, so a reattached list keeps drawing fresh heights
            // (correctness never depends on this; tower balance across
            // reopen cycles does).
            self.height_seq.store(count + 1, Ordering::Relaxed);
        }
        D::before_return();
    }
}

impl<K, V, D> TraversalOps for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = SetOp<K, V>;
    type Output = Option<V>;
    /// Entry: bottom-level start node plus the tower predecessors.
    type Entry = (NodePtr<K, V, D::B>, [NodePtr<K, V, D::B>; MAX_HEIGHT]);
    type Window = SkipWindow<K, V, D::B>;

    fn find_entry(&self, _guard: &Guard, input: Self::Input) -> Self::Entry {
        let k = match input {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        // Descend the volatile towers, snipping marked links: auxiliary
        // maintenance outside the core tree.
        let mut preds = [self.head; MAX_HEIGHT];
        let mut pred = self.head;
        for level in (1..MAX_HEIGHT).rev() {
            pred = self.aux_walk(pred, level, k);
            // A marked result means the walk's start (or end point) died
            // mid-descent; one retry from the never-marked head keeps the
            // shortcut useful. (A still-marked result is fine: `traverse`
            // falls back to the head for marked entry points.)
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            // nvt-lint: allow(raw-pcell-access): volatile tower links (levels >= 1) are never flushed; towers are rebuilt on recovery
            if unsafe { (*pred).next[level].load().is_marked() } {
                pred = self.aux_walk(self.head, level, k);
            }
            preds[level] = pred;
        }
        (pred, preds)
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        let k = match input {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        let (start, preds) = entry;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // Harris-style bottom walk from the shortcut entry point. The
            // shortcut may have landed on a node that was logically deleted
            // meanwhile; a marked node must never become the window's
            // `left` (trim would CAS its frozen next word, resurrecting it
            // and splicing live nodes out), so fall back to the head — the
            // never-marked sentinel — exactly as a shortcut-less traversal
            // would start. Mid-walk candidates are already mark-checked.
            let mut base = start;
            let mut first = D::t_load_link(&(*base).next[0]);
            if first.is_marked() {
                base = self.head;
                first = D::t_load_link(&(*base).next[0]);
            }
            let mut left = base;
            let mut left_succ = first;
            let mut curr = base;
            let mut succ = left_succ;
            loop {
                if !succ.is_marked() {
                    if curr != base && !self.below(curr, k) {
                        break;
                    }
                    left = curr;
                    left_succ = succ;
                }
                let nxt = succ.ptr();
                if nxt.is_null() {
                    curr = std::ptr::null_mut();
                    break;
                }
                curr = nxt;
                succ = D::t_load_link(&(*curr).next[0]);
            }
            SkipWindow {
                left,
                left_succ,
                right: curr,
                preds,
            }
        }
    }

    fn collect_persist_set(&self, w: &Self::Window, out: &mut PersistSet) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // Supplement 2: flush the original-parent location of `left`
            // (the entry shortcut hides left's current parent).
            let addr = D::load_fixed(&(*w.left).orig_parent);
            if addr != 0 {
                out.set_parent(addr as *const u8);
            }
            out.push((*w.left).next[0].addr());
            if !w.right.is_null() {
                out.push((*w.right).next[0].addr());
            }
        }
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        // Bottom-list trim, exactly deleteMarkedNodes of the list — except
        // the *deleter* retires (it must first unlink the towers).
        let trim = |w: &SkipWindow<K, V, D::B>| -> bool {
            if w.left_succ.ptr() == w.right {
                return true;
            }
            let to = if w.right.is_null() {
                MarkedPtr::null()
            } else {
                MarkedPtr::new(w.right)
            };
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            if D::c_cas_link(unsafe { &(*w.left).next[0] }, w.left_succ, to).is_err() {
                return false;
            }
            if !w.right.is_null() {
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let rn = D::c_load_link(unsafe { &(*w.right).next[0] });
                if rn.is_marked() {
                    return false;
                }
            }
            true
        };

        match input {
            SetOp::Get(key) => {
                if w.right.is_null() || Self::key_of(w.right) != key {
                    Critical::Done(None)
                } else {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })))
                }
            }
            SetOp::Insert(key, value) => {
                if !trim(&w) {
                    return Critical::Restart;
                }
                if !w.right.is_null() && Self::key_of(w.right) == key {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    return Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })));
                }
                let height = self.next_height();
                let right_word = if w.right.is_null() {
                    MarkedPtr::null()
                } else {
                    MarkedPtr::new(w.right)
                };
                let node = alloc_node::<_, D::B>(SkipNode {
                    key: PCell::new(key),
                    value: PCell::new(value),
                    height: PCell::new(height as u64),
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    orig_parent: PCell::new(unsafe { (*w.left).next[0].addr() } as u64),
                    next: std::array::from_fn(|i| {
                        PCell::new(if i == 0 { right_word } else { MarkedPtr::null() })
                    }),
                });
                Self::mark_tower_volatile(node);
                D::persist_new_node(
                    node as *const u8,
                    std::mem::size_of::<SkipNode<K, V, D::B>>(),
                );
                match D::c_cas_link(
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    unsafe { &(*w.left).next[0] },
                    right_word,
                    MarkedPtr::new(node),
                ) {
                    Ok(()) => {
                        // Bottom link is in (the linearization + persistence
                        // point). Now thread the volatile tower levels.
                        'levels: for level in 1..height {
                            let mut from = if self.below(w.preds[level], key) {
                                w.preds[level]
                            } else {
                                self.head
                            };
                            loop {
                                let pred = self.aux_walk(from, level, key);
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                // nvt-lint: begin-allow(raw-pcell-access): volatile tower links (levels >= 1) are never flushed; towers are rebuilt on recovery
                                let succ = unsafe { (*pred).next[level].load() };
                                if succ.is_marked() {
                                    // pred was deleted under us and its
                                    // tower word is frozen: re-walking from
                                    // it can never make progress. Restart
                                    // the level from the never-marked head.
                                    from = self.head;
                                    continue;
                                }
                                // If we were deleted meanwhile, stop linking.
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                if unsafe { (*node).next[0].load().is_marked() } {
                                    break 'levels;
                                }
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                unsafe {
                                    (*node).next[level].store(succ.untagged());
                                }
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                if unsafe {
                                    (*pred).next[level]
                                        .compare_exchange(succ, MarkedPtr::new(node))
                                        .is_ok()
                                } {
                                    break;
                                }
                            }
                        }
                        Critical::Done(None)
                    }
                    Err(_) => {
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { free(node) };
                        Critical::Restart
                    }
                }
            }
            SetOp::Remove(key) => {
                if !trim(&w) {
                    return Critical::Restart;
                }
                if w.right.is_null() || Self::key_of(w.right) != key {
                    return Critical::Done(None);
                }
                let victim = w.right;
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let bottom = unsafe { &(*victim).next[0] };
                let r_next = D::c_load_link(bottom);
                if r_next.is_marked() {
                    return Critical::Restart;
                }
                match D::c_cas_link(bottom, r_next, r_next.with_mark()) {
                    Ok(()) => {
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        let value = D::load_fixed(unsafe { &(*victim).value });
                        // Mark every tower level (volatile, raw CAS) so that
                        // aux walks snip us out.
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        let height = D::load_fixed(unsafe { &(*victim).height }) as usize;
                        for level in (1..height).rev() {
                            loop {
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                let cw = unsafe { (*victim).next[level].load() };
                                if cw.is_marked() {
                                    break;
                                }
                                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                                if unsafe {
                                    (*victim).next[level]
                                        .compare_exchange(cw, cw.with_mark())
                                        // nvt-lint: end-allow(raw-pcell-access)
                                        .is_ok()
                                } {
                                    break;
                                }
                            }
                        }
                        // Physically unlink: bottom first (policy CAS), then
                        // every tower level, then retire.
                        let _ = D::c_cas_link(
                            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                            unsafe { &(*w.left).next[0] },
                            MarkedPtr::new(victim),
                            r_next,
                        );
                        for level in (1..height).rev() {
                            self.unlink_level(victim, level, key);
                        }
                        // Ensure the bottom removal happened (ours or a
                        // helper's) before retiring.
                        loop {
                            let e = self.find_entry(guard, SetOp::Get(key));
                            let w2 = SkipList::traverse(self, guard, e, SetOp::Get(key));
                            if w2.right != victim {
                                break;
                            }
                            let _ = trim(&SkipWindow {
                                left: w2.left,
                                left_succ: w2.left_succ,
                                right: r_next.without_mark().ptr(),
                                preds: w2.preds,
                            });
                        }
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { guard.retire(victim) };
                        Critical::Done(Some(value))
                    }
                    Err(_) => Critical::Restart,
                }
            }
        }
    }
}

impl<K, V, D> DurableSet<K, V> for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Insert(key, value)).is_none()
    }

    fn remove(&self, key: K) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Remove(key)).is_some()
    }

    fn get(&self, key: K) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Get(key))
    }

    fn len(&self) -> usize {
        self.bottom_snapshot(false).len()
    }

    fn recover(&self) {
        self.recover_skiplist();
    }
}

impl<K, V, D> PoolAttach for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let list = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, list.head_ptr())?;
        Ok(list)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let head = pool.attach_root_ptr::<SkipNode<K, V, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(head, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover_skiplist();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: the persistent core is exactly the bottom list (`next[0]`), so
// the walk is the Harris-list chain from the head tower through marked
// nodes. Tower levels (`next[1..]`) are volatile shortcuts that
// `recover_skiplist` rebuilds with write-only passes — they are never read
// by recovery and may be stale after a crash, so the trace must not (and
// does not) follow them; every node they could name is on the bottom list.
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<K, V, D> nvtraverse::PoolTrace for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            crate::trace_chain(marker, root as NodePtr<K, V, D::B>, |n| {
                // nvt-lint: allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
                (*n).next[0].load().ptr()
            });
        }
    }
}

impl<K, V, D> Default for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D> fmt::Debug for SkipList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len())
            .finish()
    }
}

impl<K: Word, V: Word, D: Durability> Drop for SkipList<K, V, D> {
    fn drop(&mut self) {
        // Poisoned links (unrecovered crash) end the walk; the tail leaks.
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut cur = self.head;
            while !cur.is_null() {
                // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
                let bits = (*cur).next[0].peek_bits();
                let nxt = if bits == nvtraverse_pmem::POISON {
                    std::ptr::null_mut()
                } else {
                    MarkedPtr::<SkipNode<K, V, D::B>>::from_bits_raw(bits).ptr()
                };
                free(cur);
                cur = nxt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn smoke<D: Durability>() {
        let s: SkipList<u64, u64, D> = SkipList::new();
        assert!(s.is_empty());
        assert!(s.insert(5, 50));
        assert!(s.insert(1, 10));
        assert!(s.insert(9, 90));
        assert!(!s.insert(5, 99));
        assert_eq!(s.get(5), Some(50));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.get(5), None);
        assert_eq!(s.len(), 2);
        s.check_consistency(false).unwrap();
    }

    #[test]
    fn volatile_semantics() {
        smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_semantics() {
        smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_semantics() {
        smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn link_persist_semantics() {
        smoke::<LinkPersist<Clwb>>();
    }

    #[test]
    fn towers_accelerate_and_stay_consistent() {
        let s: SkipList<u64, u64, Volatile> = SkipList::new();
        for k in 0..2000u64 {
            assert!(s.insert(k, k));
        }
        assert_eq!(s.check_consistency(false).unwrap(), 2000);
        // Some node must be taller than 1 (probability astronomically high).
        unsafe {
            assert!(
                !(*s.head).next[1].load().is_null(),
                "towers were never built"
            );
        }
        for k in 0..2000u64 {
            assert_eq!(s.get(k), Some(k));
        }
    }

    #[test]
    fn matches_model_on_random_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let s: SkipList<u64, u64, NvTraverse<Noop>> = SkipList::new();
        let mut model = ModelSet::new();
        for i in 0..4000u64 {
            let k = rng.random_range(0..128);
            match rng.random_range(0..3) {
                0 => assert_eq!(s.insert(k, i), model.insert(k, i), "insert({k})"),
                1 => assert_eq!(s.remove(k), model.remove(k), "remove({k})"),
                _ => assert_eq!(s.get(k), model.get(k), "get({k})"),
            }
        }
        let got = s.bottom_snapshot(false);
        let want: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(got, want);
        s.check_consistency(false).unwrap();
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let s: SkipList<u64, u64, NvTraverse<Clwb>> = SkipList::new();
        std::thread::scope(|sc| {
            for tid in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    let base = tid * 500;
                    for k in base..base + 500 {
                        assert!(s.insert(k, k));
                    }
                    for k in (base..base + 500).step_by(2) {
                        assert!(s.remove(k));
                    }
                });
            }
        });
        assert_eq!(s.check_consistency(false).unwrap(), 1000);
    }

    #[test]
    fn concurrent_contended_stress() {
        use rand::prelude::*;
        let s: SkipList<u64, u64, NvTraverse<Clwb>> = SkipList::new();
        std::thread::scope(|sc| {
            for tid in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(tid);
                    for _ in 0..2000 {
                        let k = rng.random_range(0..64);
                        match rng.random_range(0..10) {
                            0..=3 => {
                                s.insert(k, k);
                            }
                            4..=6 => {
                                s.remove(k);
                            }
                            _ => {
                                s.get(k);
                            }
                        }
                    }
                });
            }
        });
        s.check_consistency(false).unwrap();
    }

    #[test]
    fn recovery_rebuilds_towers_from_bottom() {
        let s: SkipList<u64, u64, NvTraverse<Noop>> = SkipList::new();
        for k in 0..500u64 {
            s.insert(k, k);
        }
        // Wreck the towers (simulating their loss in a crash).
        unsafe {
            for level in 1..MAX_HEIGHT {
                (*s.head).next[level].store(MarkedPtr::null());
            }
        }
        s.recover();
        assert_eq!(s.check_consistency(false).unwrap(), 500);
        for k in 0..500u64 {
            assert_eq!(s.get(k), Some(k), "get({k}) after tower rebuild");
        }
        assert!(s.insert(1000, 1), "usable after recovery");
    }

    #[test]
    fn recovery_trims_bottom_marked_nodes() {
        let s: SkipList<u64, u64, NvTraverse<Noop>> = SkipList::new();
        for k in 0..10u64 {
            s.insert(k, k);
        }
        unsafe {
            // Mark key 4's bottom link by hand (crash mid-delete).
            let mut cur = (*s.head).next[0].load().ptr();
            while !cur.is_null() && (*cur).key.load() != 4 {
                cur = (*cur).next[0].load().ptr();
            }
            let nw = (*cur).next[0].load();
            (*cur).next[0].store(nw.with_mark());
        }
        s.recover();
        assert_eq!(s.get(4), None);
        assert_eq!(s.check_consistency(false).unwrap(), 9);
    }

    /// Livelock hunt (the ROADMAP open item this PR hardens against): loop
    /// the contended concurrent workload, each iteration under a fail-fast
    /// watchdog. A healthy iteration finishes in well under a second even
    /// on the 1-core CI box; a livelocked one trips the 60 s budget
    /// immediately instead of hanging the suite for 20+ minutes.
    ///
    /// Ignored by default (it is a soak, not a unit test). Run with e.g.
    /// `NVT_STRESS_ITERS=500 cargo test --release -p nvtraverse-structures \
    ///  -- --ignored stress_contended_no_livelock --nocapture`.
    #[test]
    #[ignore = "soak test: set NVT_STRESS_ITERS and run with --ignored"]
    fn stress_contended_no_livelock() {
        use rand::prelude::*;
        let iters: usize = std::env::var("NVT_STRESS_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        for i in 0..iters {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let s: SkipList<u64, u64, NvTraverse<Clwb>> = SkipList::new();
                std::thread::scope(|sc| {
                    for tid in 0..4u64 {
                        let s = &s;
                        sc.spawn(move || {
                            // Tiny key range + delete-heavy mix: maximizes
                            // marked-tower traffic, the livelock's habitat.
                            let mut rng =
                                rand::rngs::StdRng::seed_from_u64(tid * 7919 + i as u64);
                            for _ in 0..2000 {
                                let k = rng.random_range(0..32);
                                match rng.random_range(0..10) {
                                    0..=4 => {
                                        s.insert(k, k);
                                    }
                                    5..=8 => {
                                        s.remove(k);
                                    }
                                    _ => {
                                        s.get(k);
                                    }
                                }
                            }
                        });
                    }
                });
                s.check_consistency(false).unwrap();
                let _ = tx.send(());
            });
            if rx.recv_timeout(std::time::Duration::from_secs(60)).is_err() {
                // Fail fast, leaving the stuck iteration's threads behind:
                // the hang itself is the finding.
                panic!("livelock: stress iteration {i} exceeded its 60 s budget");
            }
            if i % 10 == 9 {
                eprintln!("stress: {}/{} iterations clean", i + 1, iters);
            }
        }
    }

    #[test]
    fn height_sequence_is_deterministic_and_bounded() {
        let s1: SkipList<u64, u64, Volatile> = SkipList::new();
        let s2: SkipList<u64, u64, Volatile> = SkipList::new();
        let h1: Vec<usize> = (0..100).map(|_| s1.next_height()).collect();
        let h2: Vec<usize> = (0..100).map(|_| s2.next_height()).collect();
        assert_eq!(h1, h2, "two fresh lists must draw identical heights");
        assert!(h1.iter().all(|&h| (1..=MAX_HEIGHT).contains(&h)));
        assert!(h1.iter().any(|&h| h > 1), "degenerate height sequence");
    }
}
