//! Lock-free hash table: a fixed array of Harris-list buckets.
//!
//! This mirrors the hash table the paper evaluates — "a hash table
//! implemented by David et al. based on Harris's linked-list" (§5) — and the
//! paper's own NVTraverse version, which computes the bucket with a *modulo*
//! rather than a power-of-two bit-mask (§5.3: "This is faster than modulo, a
//! more general function that we use").
//!
//! As a traversal data structure, the table's core is a shallow forest: the
//! bucket array is allocated and persisted once at construction (it is part
//! of the root), and each bucket's sentinel head anchors an independent
//! sorted list. `findEntry` hashes the key to pick the bucket head — a
//! genuine use of the paper's entry-point flexibility (§3: `findEntry`
//! "outputs an entry point into the core tree").

use crate::list::HarrisList;
use nvtraverse::alloc::PoolCtx;
use nvtraverse::detect::{OpError, OpToken};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach};
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::{Backend, MmapBackend, Word};
use nvtraverse_pool::{OpId, OpOutcome, Pool, RawOp};
use std::fmt;
use std::io;

/// A fixed-capacity lock-free hash map with per-bucket Harris lists.
///
/// Named `HashMapDs` ("data structure") to avoid colliding with
/// `std::collections::HashMap` in user code.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::DurableSet;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::hash::HashMapDs;
///
/// let map: HashMapDs<u64, u64, NvTraverse<Clwb>> = HashMapDs::new(64);
/// assert!(map.insert(17, 1700));
/// assert_eq!(map.get(17), Some(1700));
/// ```
pub struct HashMapDs<K: Word + Ord, V: Word, D: Durability> {
    buckets: Box<[HarrisList<K, V, D>]>,
    collector: Collector,
}

impl<K, V, D> HashMapDs<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates a table with `buckets` fixed buckets (rounded up to 1).
    pub fn new(buckets: usize) -> Self {
        Self::with_collector(buckets, Collector::new())
    }

    /// Creates a table whose bucket lists share `collector`.
    pub fn with_collector(buckets: usize, collector: Collector) -> Self {
        let n = buckets.max(1);
        let buckets: Vec<HarrisList<K, V, D>> = (0..n)
            .map(|_| HarrisList::with_collector(collector.clone()))
            .collect();
        HashMapDs {
            buckets: buckets.into_boxed_slice(),
            collector,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The shared collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// `findEntry` for the table: Fibonacci-mix the key bits, then reduce
    /// with the paper's general *modulo*.
    #[inline]
    fn bucket(&self, key: K) -> &HarrisList<K, V, D> {
        self.bucket_for_bits(key.to_bits())
    }

    /// Same bucket choice keyed by raw key bits — recovery classification
    /// only has the descriptor's `key` word, not a `K`.
    #[inline]
    fn bucket_for_bits(&self, key_bits: u64) -> &HarrisList<K, V, D> {
        let mixed = key_bits.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.buckets[(mixed % self.buckets.len() as u64) as usize]
    }

    /// Classifies a recovered operation descriptor against this table's
    /// recovered state by delegating to the owning bucket's
    /// [`HarrisList::classify_op`]. Quiescent; call after
    /// [`recover`](DurableSet::recover). The bucket count must match the
    /// one the descriptor was written under (it is fixed at construction
    /// and persisted in the root table, so a pooled reopen always agrees).
    pub fn classify_op(&self, raw: &RawOp) -> OpOutcome {
        self.bucket_for_bits(raw.key).classify_op(raw)
    }

    /// Quiescent: verifies every bucket's invariants, returning total live
    /// nodes.
    ///
    /// # Errors
    ///
    /// Propagates the first bucket violation, tagged with its index.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        let mut total = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            total += b
                .check_consistency(allow_marked)
                .map_err(|e| format!("bucket {i}: {e}"))?;
        }
        Ok(total)
    }

    /// Quiescent: all `(key, value)` pairs, unordered across buckets.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter_snapshot())
            .collect()
    }

    /// Bucket count used by [`PoolAttach::create_in_pool`]; pick a custom
    /// count with [`HashMapDs::create_in_pool_with_buckets`].
    pub const DEFAULT_POOL_BUCKETS: usize = 64;

    /// Builds a fresh table of `buckets` buckets whose nodes — and whose
    /// bucket-head table — all live in `pool`, registered under `name`.
    ///
    /// The persistent form is a *bucket table* block
    /// `[bucket_count, head_off 0, …, head_off n-1]` registered as the root:
    /// the `Box<[HarrisList]>` handle is volatile and rebuilt from that
    /// table on every attach.
    ///
    /// # Errors
    ///
    /// Fails when the pool is exhausted or the root registry rejects `name`.
    pub fn create_in_pool_with_buckets(
        pool: &Pool,
        name: &str,
        buckets: usize,
    ) -> io::Result<Self> {
        // Entered so every bucket list's context snapshot captures this
        // pool (the table block itself is allocated via `pool.alloc`).
        let _scope = PoolCtx::of(pool).enter();
        let map = Self::with_collector(buckets, Collector::new());
        let n = map.bucket_count();
        let table = pool
            .alloc((n + 1) * 8, 8)
            .ok_or_else(|| io::Error::other("pool exhausted"))?
            as *mut u64;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            table.write(n as u64);
            for (i, b) in map.buckets.iter().enumerate() {
                let head = b.head_ptr() as *const u8;
                assert!(
                    pool.contains(head),
                    "bucket head not allocated from this pool — was another pool installed?"
                );
                table.add(1 + i).write(pool.offset_of(head));
            }
        }
        MmapBackend::flush_range(table as *const u8, (n + 1) * 8);
        MmapBackend::fence();
        pool.set_root_ptr_checked(name, table)?;
        Ok(map)
    }
}

impl<K, V, D> DurableSet<K, V> for HashMapDs<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.bucket(key).insert(key, value)
    }

    fn remove(&self, key: K) -> bool {
        self.bucket(key).remove(key)
    }

    fn get(&self, key: K) -> Option<V> {
        self.bucket(key).get(key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Recovery runs each bucket's `disconnect` pass. The bucket array itself
    /// is immutable and was persisted at construction.
    fn recover(&self) {
        for b in self.buckets.iter() {
            b.recover();
        }
    }

    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        self.bucket(key).try_insert(key, value)
    }

    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        self.bucket(key).try_remove(key)
    }

    fn insert_detectable(
        &self,
        token: &mut OpToken,
        key: K,
        value: V,
    ) -> Result<(OpId, bool), OpError> {
        self.bucket(key).insert_detectable(token, key, value)
    }

    fn remove_detectable(&self, token: &mut OpToken, key: K) -> Result<(OpId, bool), OpError> {
        self.bucket(key).remove_detectable(token, key)
    }
}

impl<K, V, D> PoolAttach for HashMapDs<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        Self::create_in_pool_with_buckets(pool, name, Self::DEFAULT_POOL_BUCKETS)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let table = pool.attach_root_ptr::<u64>(name)? as *const u64;
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        let n = unsafe { table.read() } as usize;
        if n == 0 || n > 1 << 24 {
            return None; // not a plausible bucket table
        }
        // Entered so every bucket list's context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        let collector = Collector::new();
        let buckets: Vec<HarrisList<K, V, D>> = (0..n)
            .map(|i| {
                // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
                let head_off = unsafe { table.add(1 + i).read() };
                let head = pool.at(head_off) as *mut crate::list::Node<K, V, D::B>;
                // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
                unsafe { HarrisList::attach_at(head, collector.clone()) }
            })
            .collect();
        Some(HashMapDs {
            buckets: buckets.into_boxed_slice(),
            collector,
        })
    }

    fn recover_attached(&self) {
        self.recover();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }

    fn resolve_detectable(&self, pool: &Pool) {
        for raw in pool.unresolved_ops() {
            pool.resolve_op(raw.id(), self.classify_op(&raw));
        }
    }
}

// SAFETY: the root is the persistent bucket table `[n, head_off…]`; marking
// it and then delegating each bucket head to the Harris list's walk covers
// every block the table's recovery (per-bucket `disconnect`) can reach.
// Bucket offsets are validated by `Marker::at` before dereference.
// SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
unsafe impl<K, V, D> nvtraverse::PoolTrace for HashMapDs<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        if !marker.mark(root) {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let table = root as *const u64;
            let n = table.read() as usize;
            if n == 0 || n > 1 << 24 {
                return; // not a plausible bucket table (attach rejects too)
            }
            for i in 0..n {
                let head_off = table.add(1 + i).read();
                if let Some(head) = marker.at(head_off) {
                    <HarrisList<K, V, D> as nvtraverse::PoolTrace>::trace(head, marker);
                }
            }
        }
    }
}

impl<K, V, D> fmt::Debug for HashMapDs<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashMapDs")
            .field("buckets", &self.buckets.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    #[test]
    fn basic_semantics() {
        let m: HashMapDs<u64, u64, NvTraverse<Clwb>> = HashMapDs::new(16);
        assert!(m.insert(1, 10));
        assert!(m.insert(17, 170)); // likely different bucket
        assert!(!m.insert(1, 11));
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(17), Some(170));
        assert!(m.remove(1));
        assert_eq!(m.get(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let m: HashMapDs<u64, u64, Volatile> = HashMapDs::new(1);
        for k in 0..100u64 {
            assert!(m.insert(k, k));
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.check_consistency(true).unwrap(), 100);
    }

    #[test]
    fn zero_bucket_request_is_clamped() {
        let m: HashMapDs<u64, u64, Volatile> = HashMapDs::new(0);
        assert_eq!(m.bucket_count(), 1);
        assert!(m.insert(5, 50));
    }

    #[test]
    fn matches_model_on_random_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let m: HashMapDs<u64, u64, NvTraverse<Noop>> = HashMapDs::new(8);
        let mut model = ModelSet::new();
        for i in 0..4000u64 {
            let k = rng.random_range(0..256);
            match rng.random_range(0..3) {
                0 => assert_eq!(m.insert(k, i), model.insert(k, i)),
                1 => assert_eq!(m.remove(k), model.remove(k)),
                _ => assert_eq!(m.get(k), model.get(k)),
            }
        }
        assert_eq!(m.len(), model.len());
        let mut got = m.iter_snapshot();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_stress_across_buckets() {
        let m: HashMapDs<u64, u64, NvTraverse<Clwb>> = HashMapDs::new(32);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    let base = t * 1000;
                    for k in base..base + 1000 {
                        assert!(m.insert(k, k));
                    }
                    for k in (base..base + 1000).step_by(2) {
                        assert!(m.remove(k));
                    }
                });
            }
        });
        assert_eq!(m.check_consistency(true).unwrap(), 2000);
    }

    #[test]
    fn recovery_recurses_into_buckets() {
        let m: HashMapDs<u64, u64, NvTraverse<Noop>> = HashMapDs::new(4);
        for k in 0..20u64 {
            m.insert(k, k);
        }
        m.recover();
        assert_eq!(m.check_consistency(false).unwrap(), 20);
    }

    #[test]
    fn detectable_ops_route_to_buckets() {
        use nvtraverse::detect::OpTable;

        let m: HashMapDs<u64, u64, NvTraverse<Noop>> = HashMapDs::new(8);
        let table: OpTable<Noop> = OpTable::new(2);
        let mut tok = table.token(0);
        for k in 0..32u64 {
            let (id, fresh) = m.insert_detectable(&mut tok, k, k * 10).unwrap();
            assert!(fresh);
            let raw = table.raw(0).unwrap();
            assert_eq!(raw.id(), id);
            assert_eq!(m.classify_op(&raw), OpOutcome::Committed);
        }
        let (_, removed) = m.remove_detectable(&mut tok, 5).unwrap();
        assert!(removed);
        assert_eq!(m.classify_op(&table.raw(0).unwrap()), OpOutcome::Committed);
        let (_, removed) = m.remove_detectable(&mut tok, 5).unwrap();
        assert!(!removed, "second remove of the same key is a no-op");
        assert_eq!(m.classify_op(&table.raw(0).unwrap()), OpOutcome::NotApplied);
        assert_eq!(m.len(), 31);
    }

    #[test]
    fn buckets_share_one_collector() {
        let m: HashMapDs<u64, u64, Volatile> = HashMapDs::new(4);
        // All buckets retire into the same collector instance.
        let epoch_before = m.collector().epoch();
        for k in 0..50u64 {
            m.insert(k, k);
            m.remove(k);
        }
        m.collector().synchronize();
        assert!(m.collector().epoch() > epoch_before);
    }
}
