//! A durable priority queue on top of the skiplist — the paper's §3 lists
//! priority queues among the shapes traversal data structures capture, and
//! the classic lock-free construction (Shavit–Lotan / Sundell–Tsigas) is a
//! skiplist whose `delete-min` removes the leftmost bottom-level node.
//!
//! `pop_min` traverses zero nodes (the entry point *is* the destination:
//! head's bottom successor), marks it — the linearization and persistence
//! point — and reuses the skiplist's removal machinery for the physical
//! unlink. Recovery is the skiplist's: trim bottom-marked nodes, rebuild the
//! volatile towers.

use crate::skiplist::SkipList;
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach};
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::Word;
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;

/// A concurrent, optionally durable min-priority queue of `(priority, item)`
/// pairs with distinct priorities.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::pqueue::PriorityQueue;
///
/// let pq: PriorityQueue<u64, u64, NvTraverse<Clwb>> = PriorityQueue::new();
/// pq.push(5, 50);
/// pq.push(1, 10);
/// pq.push(3, 30);
/// assert_eq!(pq.pop_min(), Some((1, 10)));
/// assert_eq!(pq.pop_min(), Some((3, 30)));
/// assert_eq!(pq.pop_min(), Some((5, 50)));
/// assert_eq!(pq.pop_min(), None);
/// ```
pub struct PriorityQueue<K: Word, V: Word, D: Durability> {
    inner: SkipList<K, V, D>,
}

impl<K, V, D> PriorityQueue<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates an empty priority queue.
    pub fn new() -> Self {
        PriorityQueue {
            inner: SkipList::new(),
        }
    }

    /// Creates an empty queue retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        PriorityQueue {
            inner: SkipList::with_collector(collector),
        }
    }

    /// Inserts an item with the given priority; `false` if that priority is
    /// already queued (priorities are unique, as in the classic skiplist
    /// priority queues).
    pub fn push(&self, priority: K, item: V) -> bool {
        self.inner.insert(priority, item)
    }

    /// Returns the minimum queued priority and its item without removing it.
    pub fn peek_min(&self) -> Option<(K, V)> {
        self.inner.min_entry()
    }

    /// Removes and returns the minimum-priority entry.
    ///
    /// Lock-free: competing poppers each claim a distinct minimum (the mark
    /// CAS on the bottom link arbitrates), so no two callers return the same
    /// entry.
    pub fn pop_min(&self) -> Option<(K, V)> {
        loop {
            let (k, v) = self.inner.min_entry()?;
            // Claim it; if somebody else won the race, retry on the new min.
            if self.inner.remove(k) {
                return Some((k, v));
            }
        }
    }

    /// Quiescent: number of queued entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Quiescent: whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery (delegates to the skiplist: trim marked bottom
    /// nodes, rebuild volatile towers).
    pub fn recover(&self) {
        self.inner.recover();
    }

    /// Quiescent: structural validation, returning the entry count.
    ///
    /// # Errors
    ///
    /// Propagates the skiplist invariant violation, if any.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        self.inner.check_consistency(allow_marked)
    }
}

impl<K, V, D> PoolAttach for PriorityQueue<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Delegates to the underlying skiplist: the registered root *is* the
    /// skiplist head tower, so a pool created by a priority queue can even
    /// be reattached as a plain [`SkipList`] of the same parameters.
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        Ok(PriorityQueue {
            inner: SkipList::create_in_pool(pool, name)?,
        })
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        let inner = unsafe { SkipList::attach_to_pool(pool, name) }?;
        Some(PriorityQueue { inner })
    }

    fn recover_attached(&self) {
        self.inner.recover_attached();
    }

    fn collector_of(&self) -> &Collector {
        self.inner.collector_of()
    }
}

// SAFETY: the registered root *is* the inner skiplist's head tower, so the
// skiplist's bottom-list walk is the priority queue's reachability contract
// verbatim.
unsafe impl<K, V, D> nvtraverse::PoolTrace for PriorityQueue<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe { <SkipList<K, V, D> as nvtraverse::PoolTrace>::trace(root, marker) }
    }
}

impl<K, V, D> Default for PriorityQueue<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D> fmt::Debug for PriorityQueue<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PriorityQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::policy::{NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    #[test]
    fn min_order_is_respected() {
        let pq: PriorityQueue<u64, u64, NvTraverse<Clwb>> = PriorityQueue::new();
        for p in [7u64, 2, 9, 4, 1, 8] {
            assert!(pq.push(p, p * 10));
        }
        assert!(!pq.push(2, 0), "duplicate priority must be rejected");
        let mut out = Vec::new();
        while let Some((p, v)) = pq.pop_min() {
            assert_eq!(v, p * 10);
            out.push(p);
        }
        assert_eq!(out, vec![1, 2, 4, 7, 8, 9]);
    }

    #[test]
    fn peek_does_not_remove() {
        let pq: PriorityQueue<u64, u64, Volatile> = PriorityQueue::new();
        pq.push(3, 30);
        assert_eq!(pq.peek_min(), Some((3, 30)));
        assert_eq!(pq.len(), 1);
        assert_eq!(pq.pop_min(), Some((3, 30)));
        assert_eq!(pq.peek_min(), None);
    }

    #[test]
    fn signed_priorities() {
        let pq: PriorityQueue<i64, u64, Volatile> = PriorityQueue::new();
        for p in [5i64, -3, 0, -10] {
            pq.push(p, 0);
        }
        assert_eq!(pq.pop_min().unwrap().0, -10);
        assert_eq!(pq.pop_min().unwrap().0, -3);
    }

    #[test]
    fn concurrent_poppers_claim_distinct_minima() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const N: u64 = 4000;
        let pq: PriorityQueue<u64, u64, NvTraverse<Clwb>> = PriorityQueue::new();
        for p in 0..N {
            pq.push(p, p);
        }
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pq = &pq;
                let seen = &seen;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((p, _)) = pq.pop_min() {
                        local.push(p);
                    }
                    // Each popper's sequence must be increasing: it never
                    // observes an older minimum after a newer one.
                    if let Some(w) = local.windows(2).find(|w| w[0] >= w[1]) {
                        panic!("non-monotone pop: {} then {} (tail: {:?})", w[0], w[1],
                            &local[local.len().saturating_sub(8)..]);
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), N as usize, "lost or duplicated minima");
        assert!(pq.is_empty());
    }

    #[test]
    fn recovery_restores_the_heap() {
        let pq: PriorityQueue<u64, u64, NvTraverse<Noop>> = PriorityQueue::new();
        for p in [5u64, 1, 3] {
            pq.push(p, p);
        }
        pq.recover();
        assert_eq!(pq.check_consistency(false).unwrap(), 3);
        assert_eq!(pq.pop_min(), Some((1, 1)));
    }
}
