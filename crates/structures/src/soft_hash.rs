//! SOFT hash table: a fixed array of [`SoftList`] buckets.
//!
//! Same shape as [`crate::hash::HashMapDs`] (David et al.'s per-bucket
//! Harris lists, Fibonacci-mix + modulo bucket choice), but each bucket is
//! the minimal-flush SOFT list: volatile links, one validity flush per
//! update, recovery that rebuilds every bucket chain from the sealed nodes.
//! The bucket-head *table* is persistent (`[n, head_off…]`, flushed once at
//! construction, exactly like the NVTraverse table) — only the node links
//! inside the buckets are volatile.
//!
//! Attach cost note: because links are volatile, re-attaching after a
//! restart takes **one** pass over the pool's allocated blocks (shared by
//! all buckets), distributing each sealed node to the bucket its `owner`
//! word names; see [`crate::soft_list`] for the node-level contract.

use crate::soft_list::{HdrProbe, SoftList, SoftNode};
use nvtraverse::alloc::PoolCtx;
use nvtraverse::detect::OpError;
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach};
use nvtraverse_ebr::Collector;
use nvtraverse_pmem::{Backend, MmapBackend, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;

/// A fixed-capacity lock-free hash map with per-bucket SOFT lists.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::Soft;
/// use nvtraverse::DurableSet;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::soft_hash::SoftHash;
///
/// let map: SoftHash<u64, u64, Soft<Clwb>> = SoftHash::new(64);
/// assert!(map.insert(17, 1700));
/// assert_eq!(map.get(17), Some(1700));
/// ```
pub struct SoftHash<K: Word + Ord, V: Word, D: Durability> {
    buckets: Box<[SoftList<K, V, D>]>,
    collector: Collector,
}

impl<K, V, D> SoftHash<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates a table with `buckets` fixed buckets (rounded up to 1).
    pub fn new(buckets: usize) -> Self {
        Self::with_collector(buckets, Collector::new())
    }

    /// Creates a table whose bucket lists share `collector`.
    pub fn with_collector(buckets: usize, collector: Collector) -> Self {
        let n = buckets.max(1);
        let buckets: Vec<SoftList<K, V, D>> = (0..n)
            .map(|_| SoftList::with_collector(collector.clone()))
            .collect();
        SoftHash {
            buckets: buckets.into_boxed_slice(),
            collector,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The shared collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// `findEntry` for the table: Fibonacci-mix the key bits, then reduce
    /// with the paper's general *modulo* (same choice as `HashMapDs`).
    #[inline]
    fn bucket(&self, key: K) -> &SoftList<K, V, D> {
        let mixed = key.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.buckets[(mixed % self.buckets.len() as u64) as usize]
    }

    /// Quiescent: verifies every bucket's invariants, returning total live
    /// nodes.
    ///
    /// # Errors
    ///
    /// Propagates the first bucket violation, tagged with its index.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        let mut total = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            total += b
                .check_consistency(allow_marked)
                .map_err(|e| format!("bucket {i}: {e}"))?;
        }
        Ok(total)
    }

    /// Quiescent: all `(key, value)` pairs, unordered across buckets.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter_snapshot())
            .collect()
    }

    /// Bucket count used by [`PoolAttach::create_in_pool`].
    pub const DEFAULT_POOL_BUCKETS: usize = 64;

    /// Builds a fresh table of `buckets` buckets whose nodes — and whose
    /// bucket-head table — all live in `pool`, registered under `name`.
    /// Persistent form: the same `[bucket_count, head_off…]` table block as
    /// [`crate::hash::HashMapDs::create_in_pool_with_buckets`].
    ///
    /// # Errors
    ///
    /// Fails when the pool is exhausted or the root registry rejects `name`.
    pub fn create_in_pool_with_buckets(
        pool: &Pool,
        name: &str,
        buckets: usize,
    ) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let map = Self::with_collector(buckets, Collector::new());
        let n = map.bucket_count();
        let table = pool
            .alloc((n + 1) * 8, 8)
            .ok_or_else(|| io::Error::other("pool exhausted"))?
            as *mut u64;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            table.write(n as u64);
            for (i, b) in map.buckets.iter().enumerate() {
                let head = b.head_ptr() as *const u8;
                assert!(
                    pool.contains(head),
                    "bucket head not allocated from this pool — was another pool installed?"
                );
                table.add(1 + i).write(pool.offset_of(head));
            }
        }
        MmapBackend::flush_range(table as *const u8, (n + 1) * 8);
        MmapBackend::fence();
        pool.set_root_ptr_checked(name, table)?;
        Ok(map)
    }
}

impl<K, V, D> DurableSet<K, V> for SoftHash<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.bucket(key).insert(key, value)
    }

    fn remove(&self, key: K) -> bool {
        self.bucket(key).remove(key)
    }

    fn get(&self, key: K) -> Option<V> {
        self.bucket(key).get(key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Recovery rebuilds each bucket's chain from its sealed nodes. The
    /// bucket array itself is immutable and was persisted at construction.
    fn recover(&self) {
        for b in self.buckets.iter() {
            b.recover();
        }
    }

    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        self.bucket(key).try_insert(key, value)
    }

    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        self.bucket(key).try_remove(key)
    }
}

impl<K, V, D> PoolAttach for SoftHash<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        Self::create_in_pool_with_buckets(pool, name, Self::DEFAULT_POOL_BUCKETS)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let table = pool.attach_root_ptr::<u64>(name)? as *const u64;
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        let n = unsafe { table.read() } as usize;
        if n == 0 || n > 1 << 24 {
            return None; // not a plausible bucket table
        }
        let _scope = PoolCtx::of(pool).enter();
        let collector = Collector::new();
        let mut heads: Vec<(u64, usize)> = Vec::with_capacity(n); // (head addr, bucket idx)
        let buckets: Vec<SoftList<K, V, D>> = (0..n)
            .map(|i| {
                // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
                let head_off = unsafe { table.add(1 + i).read() };
                let head = pool.at(head_off) as *mut SoftNode<K, V, D::B>;
                heads.push((head as u64, i));
                // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
                unsafe { SoftList::attach_at(head, collector.clone()) }
            })
            .collect();
        // One shared inventory pass: hand every sealed node to the bucket
        // its `owner` word names (the bucket lists were attached with empty
        // registries).
        heads.sort_unstable();
        let node_size = std::mem::size_of::<SoftNode<K, V, D::B>>() as u64;
        for (off, cap) in pool.live_payloads().ok()? {
            if cap < node_size {
                continue;
            }
            let p = pool.at(off) as *mut SoftNode<K, V, D::B>;
            if heads.binary_search_by_key(&(p as u64), |h| h.0).is_ok() {
                continue; // a bucket head itself
            }
            // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
            match unsafe { crate::soft_list::probe_header(p) } {
                HdrProbe::Live { owner, seq, .. } => {
                    if let Ok(i) = heads.binary_search_by_key(&owner, |h| h.0) {
                        buckets[heads[i].1].register(p);
                        buckets[heads[i].1].note_seq(seq);
                    }
                }
                // Durably removed but not yet reused: keep the owning
                // bucket's seq counter ahead of it.
                HdrProbe::Tomb { owner, seq } => {
                    if let Ok(i) = heads.binary_search_by_key(&owner, |h| h.0) {
                        buckets[heads[i].1].note_seq(seq);
                    }
                }
                HdrProbe::Invalid => {}
            }
        }
        Some(SoftHash {
            buckets: buckets.into_boxed_slice(),
            collector,
        })
    }

    fn recover_attached(&self) {
        self.recover();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: the root is the persistent bucket table `[n, head_off…]`; SOFT
// reachability is header-proved, not link-based, so after marking the table
// and every bucket head the walk makes one pass over the heap's allocated
// blocks keeping each sealed node owned by any of the heads — linked or not
// (the recovery-rebuild contract of `soft_list`). Offsets are validated by
// `Marker::at` before dereference.
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<K, V, D> nvtraverse::PoolTrace for SoftHash<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        if !marker.mark(root) {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let table = root as *const u64;
            let n = table.read() as usize;
            if n == 0 || n > 1 << 24 {
                return; // not a plausible bucket table (attach rejects too)
            }
            let mut heads = Vec::with_capacity(n);
            for i in 0..n {
                let head_off = table.add(1 + i).read();
                if let Some(head) = marker.at(head_off) {
                    marker.mark(head);
                    heads.push(head as u64);
                }
            }
            crate::soft_list::soft_mark_owned::<K, V, D::B>(marker, &heads);
        }
    }
}

impl<K, V, D> fmt::Debug for SoftHash<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftHash")
            .field("buckets", &self.buckets.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Soft, Volatile};
    use nvtraverse_pmem::{Clwb, Noop, Sim, SimHandle};

    #[test]
    fn basic_semantics() {
        let m: SoftHash<u64, u64, Soft<Clwb>> = SoftHash::new(16);
        assert!(m.insert(1, 10));
        assert!(m.insert(17, 170));
        assert!(!m.insert(1, 11));
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(17), Some(170));
        assert!(m.remove(1));
        assert_eq!(m.get(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_bucket_request_is_clamped() {
        let m: SoftHash<u64, u64, Volatile> = SoftHash::new(0);
        assert_eq!(m.bucket_count(), 1);
        assert!(m.insert(5, 50));
    }

    #[test]
    fn matches_model_on_random_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let m: SoftHash<u64, u64, Soft<Noop>> = SoftHash::new(8);
        let mut model = ModelSet::new();
        for i in 0..4000u64 {
            let k = rng.random_range(0..256);
            match rng.random_range(0..3) {
                0 => assert_eq!(m.insert(k, i), model.insert(k, i)),
                1 => assert_eq!(m.remove(k), model.remove(k)),
                _ => assert_eq!(m.get(k), model.get(k)),
            }
        }
        assert_eq!(m.len(), model.len());
        let mut got = m.iter_snapshot();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_stress_across_buckets() {
        let m: SoftHash<u64, u64, Soft<Clwb>> = SoftHash::new(32);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    let base = t * 1000;
                    for k in base..base + 1000 {
                        assert!(m.insert(k, k));
                    }
                    for k in (base..base + 1000).step_by(2) {
                        assert!(m.remove(k));
                    }
                });
            }
        });
        assert_eq!(m.check_consistency(true).unwrap(), 2000);
    }

    #[test]
    fn recovery_rebuilds_every_bucket() {
        let sim = SimHandle::new();
        let guard = sim.enter();
        let m: SoftHash<u64, u64, Soft<Sim>> = SoftHash::with_collector(4, Collector::leaking());
        for k in 0..40u64 {
            assert!(m.insert(k, k * 3));
        }
        for k in (0..40u64).step_by(4) {
            assert!(m.remove(k));
        }
        unsafe { sim.crash_and_rollback() };
        m.recover();
        assert_eq!(m.check_consistency(false).unwrap(), 30);
        let mut got = m.iter_snapshot();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..40u64).filter(|k| k % 4 != 0).map(|k| (k, k * 3)).collect();
        assert_eq!(got, want);
        drop(m);
        drop(guard);
    }
}
