//! [`ShardedSet`]: one logical set hash-partitioned across **N independent
//! pool files** — the first concrete sharding step of the ROADMAP's
//! scale-out north star, and the proof that pools are first-class values.
//!
//! NVTraverse's correctness argument is about *fence placement*, not memory
//! residence (the destination matters, not the journey) — nothing in the
//! algorithms requires a single global heap. So a set can be split by key
//! hash across independent pools, each with its own allocator, root, and
//! recovery lifecycle:
//!
//! * **Scale**: operations on different shards share *no* allocator state —
//!   not even lock-free shard heads — and no structure memory. Contention
//!   drops with shard count, and each shard file can later live on a
//!   different device.
//! * **Independent recovery**: every shard is opened, heap-walked,
//!   mark-sweep-collected and `recover()`ed on its own — concurrently, one
//!   thread per shard at [`ShardedSet::open`] — and each reports its own
//!   [`RecoveryReport`] ([`ShardedSet::recovery_reports`]). A crash is
//!   repaired shard by shard; a corrupt shard file fails *its* open without
//!   touching the others' data.
//! * **Uniform interface**: [`ShardedSet`] implements [`DurableSet`] by
//!   routing each key to `shard(hash(key) % N)`, so it drops into every
//!   harness, oracle, and benchmark the per-structure sets already use.
//!
//! On disk, a sharded set is a directory of pool files `shard-000.pool`,
//! `shard-001.pool`, … plus a `shards.count` manifest written *after*
//! every shard exists — the commit point of creation. Opening trusts the
//! manifest, never the file listing, so an interrupted create (or a
//! missing shard file) fails loudly instead of silently coming up as a
//! smaller set that routes keys to the wrong shards (the count is fixed
//! at creation: routing depends on it).
//!
//! # Example
//!
//! ```
//! use nvtraverse::policy::NvTraverse;
//! use nvtraverse::pmem::MmapBackend;
//! use nvtraverse::DurableSet;
//! use nvtraverse_structures::list::HarrisList;
//! use nvtraverse_structures::sharded::ShardedSet;
//!
//! type List = HarrisList<u64, u64, NvTraverse<MmapBackend>>;
//! let dir = std::env::temp_dir().join(format!("doc-shards-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//!
//! let set = ShardedSet::<List>::create(&dir, 4, 1 << 20)?;
//! for k in 0..100u64 { set.insert(k, k * 2); }
//! set.close()?;
//!
//! // Reopen: all 4 pools open concurrently, each recovers independently.
//! let set = ShardedSet::<List>::open(&dir)?;
//! assert_eq!(set.shard_count(), 4);
//! assert_eq!(set.len(), 100);
//! assert!(set.recovery_reports().iter().all(|r| r.gc_ran));
//! # set.close()?; std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use nvtraverse::detect::{DetectablePool, OpError, OpToken};
use nvtraverse::{
    register_pool_tracer, restore_pool_tracer, DurableSet, PoolAttach, PoolTrace, PooledHandle,
    TypedRoots,
};
use nvtraverse_pmem::Word;
use nvtraverse_pool::{OpId, Pool, RecoveryReport};
use std::io;
use std::path::{Path, PathBuf};

/// Root name every shard registers its structure under (one structure per
/// shard pool).
pub const SHARD_ROOT: &str = "shard";

/// The key-routing mix (splitmix64): decorrelates shard choice from low key
/// bits so sequential keys spread across shards. Must stay stable — it is
/// effectively part of the on-disk format (re-routing keys would "lose"
/// them in the wrong shard).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Which of `shards` shards a key (by its bit pattern) routes to — the
/// routing function of every sharded set, exposed so remote clients (the
/// `nvtraverse-server` client library) can predict a key's shard without
/// holding the set. Deterministic and stable across processes and
/// versions: it is part of the on-disk format.
///
/// # Panics
///
/// Panics when `shards` is 0 (a sharded set always has at least one).
pub fn shard_route(key_bits: u64, shards: usize) -> usize {
    (mix(key_bits) % shards as u64) as usize
}

fn shard_file(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i:03}.pool"))
}

/// The completion manifest: written (and fsynced) **after** every shard
/// pool exists, holding the decimal shard count. Routing depends on the
/// count, so it must never be inferred from however many files happen to
/// be present — a create that crashed mid-way leaves shard files but no
/// manifest, and `open` then fails loudly instead of silently coming up as
/// a smaller set that routes keys to the wrong shards.
fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("shards.count")
}

fn write_manifest(dir: &Path, shards: usize) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(manifest_file(dir))?;
    writeln!(f, "{shards}")?;
    f.sync_all()
}

fn read_manifest(dir: &Path) -> io::Result<usize> {
    let text = std::fs::read_to_string(manifest_file(dir)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "{}: no shard-count manifest — not a sharded set, or its \
                 creation never completed (remove the directory to recreate)",
                dir.display()
            ),
        )
    })?;
    text.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: corrupt shard-count manifest {text:?}", dir.display()),
        )
    })
}

/// One detectable-operation token **per shard**: each shard is its own pool
/// with its own descriptor table, so a sharded client holds a bundle of
/// per-pool [`OpToken`]s and [`ShardedSet::insert_detectable`] routes each
/// operation to the token of the shard the key hashes to.
///
/// Obtain with [`ShardedSet::detectable_tokens`]; like a single token, a
/// bundle belongs to one client thread (`Send`, not `Sync`).
#[derive(Debug)]
pub struct ShardTokens {
    tokens: Box<[OpToken]>,
}

impl ShardTokens {
    /// The token for shard `i` — for asking a shard's pool about a
    /// previous operation's slot, or driving a shard directly.
    ///
    /// # Panics
    ///
    /// Panics when `i` is not a shard index of the set that issued this
    /// bundle.
    pub fn token(&mut self, i: usize) -> &mut OpToken {
        &mut self.tokens[i]
    }
}

/// One logical [`DurableSet`] hash-partitioned across N pool files, each an
/// independently-recoverable pool holding one `S` under [`SHARD_ROOT`]. See
/// the [module docs](self).
pub struct ShardedSet<S: PoolAttach> {
    shards: Box<[PooledHandle<S>]>,
    dir: PathBuf,
}

impl<S: PoolAttach> std::fmt::Debug for ShardedSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSet")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<S: PoolTrace + Send> ShardedSet<S> {
    /// Creates `shards` fresh pool files of `capacity_per_shard` bytes each
    /// under `dir` (created if missing), each holding one empty `S`.
    ///
    /// # Errors
    ///
    /// Fails when `shards` is 0, a shard file already exists, or any pool
    /// creation fails (already-created shards are left on disk; remove the
    /// directory to retry).
    pub fn create(
        dir: impl AsRef<Path>,
        shards: usize,
        capacity_per_shard: u64,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        if shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded set needs at least one shard",
            ));
        }
        std::fs::create_dir_all(dir)?;
        if shard_file(dir, 0).exists() || manifest_file(dir).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a sharded set", dir.display()),
            ));
        }
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let pool = Pool::builder()
                .path(shard_file(dir, i))
                .capacity(capacity_per_shard)
                .create()?;
            handles.push(pool.create_root::<S>(SHARD_ROOT)?);
        }
        // The manifest is the commit point: only a fully-created set has
        // one, so an interrupted create can never be opened truncated.
        write_manifest(dir, shards)?;
        Ok(ShardedSet {
            shards: handles.into_boxed_slice(),
            dir: dir.to_path_buf(),
        })
    }

    /// Opens the sharded set under `dir`: discovers the shard files, then
    /// opens **all shards concurrently** (one thread per shard — this is
    /// the multi-pool capability exercised end to end). Each shard runs the
    /// full independent recovery pipeline: heap walk, root-driven
    /// mark-sweep GC (the tracer is registered before the open, so the GC
    /// always runs eagerly), and the structure's own `recover()`.
    ///
    /// # Errors
    ///
    /// Fails when `dir` holds no completed sharded set (no manifest), a
    /// manifest-promised shard file is missing, or any shard fails to
    /// open — one shard's failure does not modify the other shards'
    /// files.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        // The manifest — not the file listing — is the source of truth for
        // the count: every shard it promises must exist.
        let count = read_manifest(dir)?;
        for i in 0..count {
            if !shard_file(dir, i).exists() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "{}: manifest promises {count} shards but shard {i} is missing",
                        dir.display()
                    ),
                ));
            }
        }
        let mut results: Vec<io::Result<PooledHandle<S>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..count)
                .map(|i| {
                    let path = shard_file(dir, i);
                    scope.spawn(move || {
                        // Pre-register the tracer so the open itself runs
                        // the recovery GC (eagerly, not pending).
                        // SAFETY: shard pools hold exactly one root, created
                        // as `S` by `create` — the registration contract.
                        let prev = unsafe { register_pool_tracer::<S>(&path, SHARD_ROOT) };
                        let attempt = Pool::builder()
                            .path(&path)
                            .open()
                            .and_then(|pool| pool.root::<S>(SHARD_ROOT));
                        if attempt.is_err() {
                            restore_pool_tracer(&path, SHARD_ROOT, prev);
                        }
                        attempt
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard open worker panicked"))
                .collect()
        });
        let mut handles = Vec::with_capacity(count);
        for (i, r) in results.drain(..).enumerate() {
            handles.push(r.map_err(|e| {
                io::Error::new(e.kind(), format!("shard {i} of {}: {e}", dir.display()))
            })?);
        }
        Ok(ShardedSet {
            shards: handles.into_boxed_slice(),
            dir: dir.to_path_buf(),
        })
    }

    /// [`ShardedSet::open`] when the directory holds a set, otherwise
    /// [`ShardedSet::create`] — the restart-loop entry point.
    ///
    /// # Errors
    ///
    /// Propagates open/create failures.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        shards: usize,
        capacity_per_shard: u64,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        if manifest_file(dir).exists() {
            Self::open(dir)
        } else {
            Self::create(dir, shards, capacity_per_shard)
        }
    }
}

impl<S: PoolAttach> ShardedSet<S> {
    /// Number of shards (fixed at creation; key routing depends on it).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The handle of shard `i` (oracles and tests inspect shards directly).
    ///
    /// # Panics
    ///
    /// Panics when `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &PooledHandle<S> {
        &self.shards[i]
    }

    /// All shard handles, in shard order.
    pub fn shards(&self) -> impl Iterator<Item = &PooledHandle<S>> {
        self.shards.iter()
    }

    /// Which shard a key (by its bit pattern) routes to —
    /// [`shard_route`]`(key_bits, self.shard_count())`.
    pub fn shard_index_of(&self, key_bits: u64) -> usize {
        shard_route(key_bits, self.shards.len())
    }

    /// One [`RecoveryReport`] per shard, in shard order — N independent
    /// recoveries, not one global one.
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.shards.iter().map(|s| s.pool().recovery_report()).collect()
    }

    /// One metrics snapshot per shard pool, in shard order — each shard's
    /// flush/fence attribution, allocator counters, and latency histograms
    /// are as independent as its allocator and recovery are.
    pub fn metrics_snapshots(&self) -> Vec<nvtraverse_obs::Snapshot> {
        self.shards.iter().map(|s| s.pool().metrics().snapshot()).collect()
    }

    /// All shards' metrics merged into a single [`nvtraverse_obs::Snapshot`]
    /// — the logical set's aggregate view (counters sum; histograms merge
    /// bucket-wise, so quantiles stay meaningful).
    pub fn metrics_snapshot(&self) -> nvtraverse_obs::Snapshot {
        let mut total = nvtraverse_obs::Snapshot::default();
        for s in self.shards.iter() {
            total.merge(&s.pool().metrics().snapshot());
        }
        total
    }

    /// Registers this client with **every** shard's persistent descriptor
    /// table and returns the per-shard token bundle for
    /// [`insert_detectable`](ShardedSet::insert_detectable) /
    /// [`remove_detectable`](ShardedSet::remove_detectable).
    ///
    /// # Errors
    ///
    /// Fails when any shard's pool cannot hand out a descriptor slot
    /// (table full, or the pool was opened read-only/rebased); already
    /// claimed slots in other shards stay claimed.
    pub fn detectable_tokens(&self) -> io::Result<ShardTokens> {
        let tokens: io::Result<Vec<OpToken>> =
            self.shards.iter().map(|s| s.pool().op_token()).collect();
        Ok(ShardTokens {
            tokens: tokens?.into_boxed_slice(),
        })
    }

    /// Flushes every shard to its backing file and detaches, without
    /// freeing any live node (each shard's [`PooledHandle::close`]).
    ///
    /// # Errors
    ///
    /// Returns the first shard sync failure (later shards still close).
    pub fn close(self) -> io::Result<()> {
        let mut first_err = None;
        for handle in self.shards.into_vec() {
            if let Err(e) = handle.close() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<K, V, S> DurableSet<K, V> for ShardedSet<S>
where
    K: Word,
    V: Word,
    S: PoolAttach + DurableSet<K, V>,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.shards[self.shard_index_of(key.to_bits())].insert(key, value)
    }

    fn remove(&self, key: K) -> bool {
        self.shards[self.shard_index_of(key.to_bits())].remove(key)
    }

    fn get(&self, key: K) -> Option<V> {
        self.shards[self.shard_index_of(key.to_bits())].get(key)
    }

    /// Quiescent, like every `len`: sums the shards.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Re-runs every shard's recovery pass. [`ShardedSet::open`] already
    /// recovered each shard, so this is only needed for hand-driven crash
    /// simulation.
    fn recover(&self) {
        for s in self.shards.iter() {
            s.recover();
        }
    }

    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        self.shards[self.shard_index_of(key.to_bits())].try_insert(key, value)
    }

    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        self.shards[self.shard_index_of(key.to_bits())].try_remove(key)
    }
}

impl<S: PoolAttach> ShardedSet<S> {
    /// Detectable insert, routed to the shard the key hashes to and armed
    /// in **that shard's** descriptor table. The returned [`OpId`] is
    /// scoped to that shard's pool — after a crash, ask
    /// `set.shard(set.shard_index_of(key.to_bits())).pool().op_outcome(id)`.
    ///
    /// The trait-level single-token form stays `Unsupported` for a sharded
    /// set: one token cannot span N pools.
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`OpError`] (e.g. that shard's pool is full).
    ///
    /// # Panics
    ///
    /// Panics when `tokens` came from a set with a different shard count.
    pub fn insert_detectable<K, V>(
        &self,
        tokens: &mut ShardTokens,
        key: K,
        value: V,
    ) -> Result<(OpId, bool), OpError>
    where
        K: Word,
        V: Word,
        S: DurableSet<K, V>,
    {
        let i = self.shard_index_of(key.to_bits());
        self.shards[i].insert_detectable(tokens.token(i), key, value)
    }

    /// Detectable remove; see
    /// [`insert_detectable`](ShardedSet::insert_detectable) for routing and
    /// `OpId` scoping.
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`OpError`].
    ///
    /// # Panics
    ///
    /// Panics when `tokens` came from a set with a different shard count.
    pub fn remove_detectable<K, V>(
        &self,
        tokens: &mut ShardTokens,
        key: K,
    ) -> Result<(OpId, bool), OpError>
    where
        K: Word,
        V: Word,
        S: DurableSet<K, V>,
    {
        let i = self.shard_index_of(key.to_bits());
        self.shards[i].remove_detectable(tokens.token(i), key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::policy::NvTraverse;
    use nvtraverse_pmem::MmapBackend;

    type List = crate::list::HarrisList<u64, u64, NvTraverse<MmapBackend>>;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "nvt-sharded-{}-{tag}.shards",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// The manifest is the creation commit point: a set whose create was
    /// interrupted (shard files, no manifest) and a set missing a
    /// manifest-promised shard must both fail to open loudly — never come
    /// up as a smaller set that silently routes keys to wrong shards.
    #[test]
    fn incomplete_sets_are_rejected_loudly() {
        let dir = tmp_dir("incomplete");
        ShardedSet::<List>::create(&dir, 2, 1 << 20)
            .unwrap()
            .close()
            .unwrap();

        // "Crash mid-create": files exist, manifest does not.
        std::fs::remove_file(manifest_file(&dir)).unwrap();
        let err = ShardedSet::<List>::open(&dir).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
        // open_or_create must not silently recreate over the leftovers.
        assert!(ShardedSet::<List>::open_or_create(&dir, 2, 1 << 20).is_err());

        // Manifest promises 2 shards, one is gone.
        write_manifest(&dir, 2).unwrap();
        std::fs::remove_file(shard_file(&dir, 1)).unwrap();
        let err = ShardedSet::<List>::open(&dir).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Detectable operations route to per-shard descriptor tables, and
    /// after a clean close + reopen each shard's pool answers for the last
    /// operation armed in its table.
    #[test]
    fn detectable_ops_survive_reopen() {
        use nvtraverse_pool::OpOutcome;

        let dir = tmp_dir("detectable");
        let mut last: Vec<Option<(u64, nvtraverse_pool::OpId)>> = vec![None; 2];
        {
            let set = ShardedSet::<List>::create(&dir, 2, 1 << 20).unwrap();
            let mut toks = set.detectable_tokens().unwrap();
            for k in 0..16u64 {
                let (id, fresh) = set.insert_detectable(&mut toks, k, k + 1).unwrap();
                assert!(fresh);
                last[set.shard_index_of(k)] = Some((k, id));
            }
            drop(toks);
            set.close().unwrap();
        }
        let set = ShardedSet::<List>::open(&dir).unwrap();
        for (i, entry) in last.iter().enumerate() {
            let (k, id) = entry.expect("16 keys must reach both shards");
            assert_eq!(
                set.shard(i).pool().op_outcome(id),
                Some(OpOutcome::Committed),
                "shard {i} last insert (key {k})"
            );
            assert_eq!(set.get(k), Some(k + 1));
        }
        for r in set.recovery_reports() {
            assert_eq!(r.ops_descriptors, 1, "one registered client per shard");
            assert_eq!(r.ops_pending, 0, "open must leave no undecided op");
        }
        set.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The aggregate [`ShardedSet::metrics_snapshot`] must equal the
    /// element-wise sum of the per-shard snapshots at a quiescent point —
    /// the determinism contract the KV server's STATS reply and the
    /// `kv_service` figure's fences/op attribution both lean on.
    #[test]
    fn metrics_snapshot_is_the_sum_of_the_shards() {
        if !nvtraverse_obs::enabled() {
            return; // NVT_OBS=off: nothing is recorded, nothing to pin
        }
        let dir = tmp_dir("metrics");
        let set = ShardedSet::<List>::create(&dir, 3, 1 << 20).unwrap();
        for k in 0..64u64 {
            // Attribute each op to its shard's pool, as the server does.
            let _t =
                nvtraverse_obs::attribute_to(Some(set.shard(set.shard_index_of(k)).pool().metrics()));
            set.insert(k, k);
        }
        let parts = set.metrics_snapshots();
        assert_eq!(parts.len(), 3);
        let mut summed = nvtraverse_obs::Snapshot::default();
        for p in &parts {
            summed.merge(p);
        }
        let aggregate = set.metrics_snapshot();
        assert_eq!(aggregate, summed, "aggregate must be the shard-wise sum");
        assert!(
            parts.iter().all(|p| p.total_flushes() > 0),
            "64 keys over 3 shards must flush in every shard"
        );
        assert_eq!(
            aggregate.total_flushes(),
            parts.iter().map(|p| p.total_flushes()).sum::<u64>()
        );
        assert_eq!(
            aggregate.total_fences(),
            parts.iter().map(|p| p.total_fences()).sum::<u64>()
        );
        // Deterministic while quiescent: asking again changes nothing.
        assert_eq!(set.metrics_snapshot(), aggregate);
        set.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Keys must route deterministically, within bounds, and (for a
    /// non-trivial key range) touch every shard.
    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        let dir = tmp_dir("routing");
        let set = ShardedSet::<List>::create(&dir, 4, 1 << 20).unwrap();
        let mut seen = [false; 4];
        for k in 0..256u64 {
            let i = set.shard_index_of(k);
            assert!(i < 4);
            assert_eq!(i, set.shard_index_of(k), "routing must be deterministic");
            assert_eq!(
                i,
                shard_route(k, 4),
                "the free routing function must agree with the set"
            );
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 keys must reach all 4 shards");
        set.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
