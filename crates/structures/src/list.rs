//! Harris's lock-free sorted linked list in traversal form — the paper's
//! running example (§2.1, §3, and the pseudocode of §4.4, Algorithms 3–4).
//!
//! The list maps totally ordered [`Word`] keys to [`Word`] values, with set
//! semantics (an insert of an existing key fails and keeps the old value).
//! Deletion is two-phase: a *mark* CAS on the victim's `next` word logically
//! deletes it (freezing the node, Definition 1), and a second CAS swings the
//! predecessor's `next` pointer to physically disconnect it. The traversal
//! never modifies shared memory — physical deletion of marked chains happens
//! in the critical method (`deleteMarkedNodes` of Algorithm 4).
//!
//! The `ORIG_PARENT` const parameter selects the `ensureReachable` strategy
//! of §4.1/Lemma 4.1:
//!
//! * `false` (default) — the *optimization*: the traversal returns the
//!   current parent of the left node and its `next` field is flushed;
//! * `true` — Supplement 2: every node carries an *original parent* field
//!   recording the address of the pointer that linked it in, and that
//!   address is flushed instead (costs one word per node; ablation `abl2`).

use nvtraverse::alloc::{alloc_node, clear_pool_full, free, pool_full_seen, try_alloc_node, PoolCtx};
use nvtraverse::detect::{ArmHandle, OpError, OpToken};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach, SetOp};
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::optable::{
    classify_raw, RawClass, OP_KIND_INSERT, OP_KIND_REMOVE, OP_TARGET_MISS,
};
use nvtraverse_pool::{OpId, OpOutcome, Pool, RawOp};
use std::fmt;
use std::io;
use std::marker::PhantomData;

/// One list node. All fields are 64-bit persistent cells; `key`, `value` and
/// `orig_parent` are immutable after initialization (flushed once, before the
/// node is linked in).
///
/// Exposed (with private fields) because it appears in the [`TraversalOps`]
/// associated types; user code never constructs nodes directly.
#[repr(C)]
pub struct Node<K: Word, V: Word, B: Backend> {
    pub(crate) key: PCell<K, B>,
    pub(crate) value: PCell<V, B>,
    /// Link word: pointer to successor + mark bit (logical deletion).
    pub(crate) next: PCell<MarkedPtr<Node<K, V, B>>, B>,
    /// Address of the pointer that first linked this node in (Supplement 2).
    pub(crate) orig_parent: PCell<u64, B>,
    /// Detectable-operation tag ([`OpId::to_bits`] of the insert that
    /// created this node; 0 for non-detectable inserts and sentinels).
    /// Immutable after initialization; what lets recovery attribute a
    /// surviving node to one specific descriptor.
    pub(crate) op_tag: PCell<u64, B>,
}

impl<K: Word + fmt::Debug, V: Word, B: Backend> fmt::Debug for Node<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node").field("key", &self.key).finish()
    }
}

type NodePtr<K, V, B> = *mut Node<K, V, B>;

/// The traversal window: the suffix of the path that `traverse` returns
/// (paper §3.1 — left, right, and enough information to trim the marked
/// chain between them).
pub struct Window<K: Word, V: Word, B: Backend> {
    /// Current parent of `left` (for the Lemma 4.1 `ensureReachable`).
    left_parent: NodePtr<K, V, B>,
    /// Last unmarked node with key < search key (or the head sentinel).
    left: NodePtr<K, V, B>,
    /// The word read from `left.next` when `left` was selected; its pointer
    /// is the first node of the marked chain (or `right` itself).
    left_succ: MarkedPtr<Node<K, V, B>>,
    /// First unmarked node with key ≥ search key; null = end of list.
    right: NodePtr<K, V, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for Window<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Window")
            .field("left", &self.left)
            .field("right", &self.right)
            .finish()
    }
}

/// The list's operation-driver input: the set operation plus, for
/// detectable operations, the descriptor handle the critical section arms
/// and publishes at its linearization point.
#[derive(Debug, Clone, Copy)]
pub struct ListOp<K, V> {
    op: SetOp<K, V>,
    detect: Option<ArmHandle>,
}

impl<K, V> From<SetOp<K, V>> for ListOp<K, V> {
    fn from(op: SetOp<K, V>) -> Self {
        ListOp { op, detect: None }
    }
}

impl<K, V> ListOp<K, V> {
    /// A detectable operation: `op` driven through `handle`'s descriptor
    /// slot (armed before, published at, its linearization point).
    pub(crate) fn detectable(op: SetOp<K, V>, handle: ArmHandle) -> Self {
        ListOp {
            op,
            detect: Some(handle),
        }
    }
}

/// Harris's sorted linked list, parameterized by durability policy.
///
/// See the [module docs](self) and the crate example. All operations are
/// lock-free and (for durable policies) durably linearizable.
pub struct HarrisList<K: Word, V: Word, D: Durability, const ORIG_PARENT: bool = false> {
    head: NodePtr<K, V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    _marker: PhantomData<fn() -> D>,
}

/// Harris list variant that implements `ensureReachable` via the
/// original-parent field of Supplement 2 (used by the `abl2` ablation).
pub type HarrisListOrigParent<K, V, D> = HarrisList<K, V, D, true>;

// SAFETY: the raw head pointer is only dereferenced through the lock-free
// protocol; nodes are PCell-based and retired through the collector.
unsafe impl<K: Word, V: Word, D: Durability, const P: bool> Send for HarrisList<K, V, D, P> {}
unsafe impl<K: Word, V: Word, D: Durability, const P: bool> Sync for HarrisList<K, V, D, P> {}

impl<K, V, D, const ORIG_PARENT: bool> HarrisList<K, V, D, ORIG_PARENT>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates an empty list (its own collector).
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty list that retires nodes into `collector`.
    ///
    /// The hash table shares one collector across all of its bucket lists;
    /// crash tests pass [`Collector::leaking`].
    pub fn with_collector(collector: Collector) -> Self {
        let head = alloc_node::<_, D::B>(Node {
            key: PCell::new(K::from_bits(0)), // sentinel: never read
            value: PCell::new(V::from_bits(0)),
            next: PCell::new(MarkedPtr::null()),
            orig_parent: PCell::new(0),
            op_tag: PCell::new(0),
        });
        // Persist the empty list so it survives a crash at time zero.
        D::persist_new_node(head as *const u8, std::mem::size_of::<Node<K, V, D::B>>());
        D::before_return();
        HarrisList {
            head,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// The collector nodes are retired into.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The head sentinel (for pool root registration by this crate).
    pub(crate) fn head_ptr(&self) -> NodePtr<K, V, D::B> {
        self.head
    }

    /// Rebuilds a list handle around an existing head sentinel — the attach
    /// half of the pool lifecycle.
    ///
    /// # Safety
    ///
    /// `head` must be the head sentinel of a list built with the *same*
    /// `K`/`V`/`D` parameters, reachable and quiescent. The caller is
    /// responsible for not dropping two handles to the same list (the
    /// pooled lifecycle never drops — see `nvtraverse::PooledSet`).
    pub(crate) unsafe fn attach_at(head: NodePtr<K, V, D::B>, collector: Collector) -> Self {
        HarrisList {
            head,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn key_of(node: NodePtr<K, V, D::B>) -> K {
        debug_assert!(!node.is_null());
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        D::load_fixed(unsafe { &(*node).key })
    }

    /// The word form of `right` for CAS expected values (null ⇒ null word).
    #[inline]
    fn word_of(node: NodePtr<K, V, D::B>) -> MarkedPtr<Node<K, V, D::B>> {
        if node.is_null() {
            MarkedPtr::null()
        } else {
            MarkedPtr::new(node)
        }
    }

    /// `deleteMarkedNodes` (Algorithm 4, lines 40–57): physically disconnect
    /// the marked chain between `left` and `right` with the unique
    /// disconnection CAS (Property 5), retiring the chain on success.
    ///
    /// Returns `false` if the caller must re-traverse.
    fn trim(&self, guard: &Guard, w: &Window<K, V, D::B>) -> bool {
        if w.left_succ.ptr() == w.right {
            // nodes.size() == 2: left and right are already adjacent.
            return true;
        }
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        let left_next = unsafe { &(*w.left).next };
        match D::c_cas_link(left_next, w.left_succ, Self::word_of(w.right)) {
            Ok(()) => {
                // The chain [left_succ .. right) is now unreachable; every
                // node in it is marked (frozen), so plain loads suffice.
                let mut cur = w.left_succ.ptr();
                while !cur.is_null() && cur != w.right {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    // nvt-lint: allow(raw-pcell-access): reading the frozen (marked) chain being trimmed; plain loads suffice
                    let nxt = unsafe { (*cur).next.load() };
                    debug_assert!(nxt.is_marked(), "trimmed an unmarked node");
                    // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                    unsafe { guard.retire(cur) };
                    cur = nxt.ptr();
                }
                // Algorithm 4 lines 50–53: if right got marked meanwhile the
                // caller's picture of the list is stale.
                if !w.right.is_null() {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    let rn = D::c_load_link(unsafe { &(*w.right).next });
                    if rn.is_marked() {
                        return false;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Quiescent: counts unmarked reachable nodes.
    fn quiescent_len(&self) -> usize {
        let mut n = 0;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                // nvt-lint: end-allow(raw-pcell-access)
                if !nw.is_marked() {
                    n += 1;
                }
                cur = nw.ptr();
            }
        }
        n
    }

    /// Quiescent: collects the unmarked `(key, value)` pairs in list order.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if !nw.is_marked() {
                    out.push(((*cur).key.load(), (*cur).value.load()));
                    // nvt-lint: end-allow(raw-pcell-access)
                }
                cur = nw.ptr();
            }
        }
        out
    }

    /// Quiescent: verifies structural invariants, returning the number of
    /// live (unmarked) nodes.
    ///
    /// # Errors
    ///
    /// Describes the violation: unsorted keys, or (when `allow_marked` is
    /// false, e.g. right after recovery) a reachable marked node.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        let mut live = 0;
        let mut last_key: Option<K> = None;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if nw.is_marked() {
                    if !allow_marked {
                        return Err("reachable marked node after recovery".into());
                    }
                } else {
                    let k = (*cur).key.load();
                    // nvt-lint: end-allow(raw-pcell-access)
                    if let Some(prev) = last_key.take() {
                        if prev >= k {
                            return Err("keys not strictly increasing".into());
                        }
                    }
                    last_key = Some(k);
                    live += 1;
                }
                cur = nw.ptr();
            }
        }
        Ok(live)
    }

    /// The recovery procedure (paper §4 "Recovery"): run `disconnect(root)`
    /// (Supplement 1) — one pass that physically deletes every marked node.
    ///
    /// May run concurrently with other operations (Supplement 1 requires
    /// this), though it is normally called once, quiescently, after a crash.
    pub fn recover_list(&self) {
        if !D::DURABLE {
            return;
        }
        let guard = self.collector.pin();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let mut pred: NodePtr<K, V, D::B> = self.head;
            loop {
                // Raw load: strip the link-and-persist dirty bit before
                // using the word as a CAS expectation.
                // nvt-lint: begin-allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
                let start = (*pred).next.load().without_dirty();
                debug_assert!(!start.is_marked(), "predecessor must be unmarked");
                // Find the first unmarked node at or after start.
                let mut cur = start.ptr();
                while !cur.is_null() {
                    let nw = (*cur).next.load();
                    if nw.is_marked() {
                        cur = nw.ptr();
                    } else {
                        break;
                    }
                }
                if cur != start.ptr() {
                    // Disconnect the marked chain [start .. cur) atomically
                    // (the unique legal disconnection of Property 5).
                    if D::c_cas_link(&(*pred).next, start, Self::word_of(cur)).is_ok() {
                        let mut dead = start.ptr();
                        while !dead.is_null() && dead != cur {
                            let nxt = (*dead).next.load().ptr();
                            // nvt-lint: end-allow(raw-pcell-access)
                            guard.retire(dead);
                            dead = nxt;
                        }
                    } else {
                        // Raced with a concurrent trim; rescan from pred.
                        continue;
                    }
                }
                if cur.is_null() {
                    break;
                }
                pred = cur;
            }
        }
        D::before_return();
    }

    /// Quiescent lookup for recovery classification: the op tag of the
    /// live (unmarked, reachable) node holding exactly `key_bits`, if any.
    fn surviving_tag(&self, key_bits: u64) -> Option<u64> {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent post-crash inspection of raw tag bits
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if !nw.is_marked() && (*cur).key.load().to_bits() == key_bits {
                    return Some((*cur).op_tag.load());
                    // nvt-lint: end-allow(raw-pcell-access)
                }
                cur = nw.ptr();
            }
        }
        None
    }

    /// Classifies one recovered operation descriptor against this list's
    /// **recovered** state. Quiescent; call after
    /// [`recover_list`](HarrisList::recover_list) (so no reachable node is
    /// still marked). Public so crash harnesses can assert the library's
    /// answer per descriptor; the pooled open path runs it automatically
    /// through `PoolAttach::resolve_detectable`.
    ///
    /// The descriptor alone decides stale-sequence and published-no-op
    /// cases; everything else is decided by the surviving state, never by
    /// a published "applied" bit (see `nvtraverse_pool::optable`):
    ///
    /// * insert — committed iff a live node carries this very operation's
    ///   tag;
    /// * remove — not applied if it armed against a miss, or its recorded
    ///   target (by tag) still lives; committed otherwise.
    ///
    /// Assumes at most one detectable client mutates a given key (the
    /// "Tracking in Order to Recover" per-process descriptor model).
    pub fn classify_op(&self, raw: &RawOp) -> OpOutcome {
        match classify_raw(Some(raw), raw.id()) {
            RawClass::Decided(outcome) => outcome,
            RawClass::NeedsLookup => {
                let tag = self.surviving_tag(raw.key);
                match raw.kind {
                    OP_KIND_INSERT => {
                        if tag == Some(raw.id().to_bits()) {
                            OpOutcome::Committed
                        } else {
                            OpOutcome::NotApplied
                        }
                    }
                    OP_KIND_REMOVE => {
                        if raw.target_tag == OP_TARGET_MISS || tag == Some(raw.target_tag) {
                            OpOutcome::NotApplied
                        } else {
                            OpOutcome::Committed
                        }
                    }
                    // Unknown kind bits (torn arm that still matched the
                    // sequence number): nothing can have applied.
                    _ => OpOutcome::NotApplied,
                }
            }
        }
    }
}

impl<K, V, D, const ORIG_PARENT: bool> TraversalOps for HarrisList<K, V, D, ORIG_PARENT>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = ListOp<K, V>;
    /// `Insert` → existing value if the key was present (failure);
    /// `Remove`/`Get` → the value found.
    type Output = Option<V>;
    type Entry = NodePtr<K, V, D::B>;
    type Window = Window<K, V, D::B>;

    fn find_entry(&self, _guard: &Guard, _input: Self::Input) -> Self::Entry {
        // The head of the list is the only entry point (§3: findEntry "is
        // allowed to simply return the root").
        self.head
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        let key = match input.op {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let head = entry;
            let mut left_parent = head;
            let mut left = head;
            let mut left_succ = D::t_load_link(&(*head).next);
            let mut pred = head;
            let mut curr = head;
            let mut succ = left_succ; // invariant: succ = word of curr.next
            loop {
                if !succ.is_marked() {
                    if curr != head && Self::key_of(curr) >= key {
                        // curr is the right node: first unmarked key ≥ k.
                        break;
                    }
                    // curr is unmarked with key < k: new left candidate.
                    left_parent = pred;
                    left = curr;
                    left_succ = succ;
                }
                pred = curr;
                let nxt = succ.ptr();
                if nxt.is_null() {
                    curr = std::ptr::null_mut();
                    break;
                }
                curr = nxt;
                succ = D::t_load_link(&(*curr).next);
            }
            Window {
                left_parent,
                left,
                left_succ,
                right: curr,
            }
        }
    }

    fn collect_persist_set(&self, w: &Self::Window, out: &mut PersistSet) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            if ORIG_PARENT {
                // Supplement 2: flush the location recorded at insert time.
                let addr = D::load_fixed(&(*w.left).orig_parent);
                if addr != 0 {
                    out.set_parent(addr as *const u8);
                }
            } else {
                // Lemma 4.1 optimization: flush the current parent's link.
                out.set_parent((*w.left_parent).next.addr());
            }
            // Protocol 1: the mutable fields the traversal read in the
            // returned nodes (keys are immutable — "no flush", Alg. 3 l.23).
            out.push((*w.left).next.addr());
            if !w.right.is_null() {
                out.push((*w.right).next.addr());
            }
        }
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        let detect = input.detect;
        match input.op {
            SetOp::Get(key) => {
                // findCritical (Algorithm 4, lines 1–6).
                if w.right.is_null() || Self::key_of(w.right) != key {
                    Critical::Done(None)
                } else {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })))
                }
            }
            SetOp::Insert(key, value) => {
                // insertCritical (Algorithm 3, lines 18–35).
                if !self.trim(guard, &w) {
                    return Critical::Restart;
                }
                if !w.right.is_null() && Self::key_of(w.right) == key {
                    if let Some(h) = detect {
                        // Duplicate: the no-op linearizes right here — arm
                        // and publish together, both made durable by the
                        // operation's closing `before_return` fence.
                        h.arm::<D::B>(0);
                        h.publish::<D::B>(false);
                    }
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    return Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })));
                }
                let Some(node) = try_alloc_node::<_, D::B>(Node {
                    key: PCell::new(key),
                    value: PCell::new(value),
                    next: PCell::new(Self::word_of(w.right)),
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    orig_parent: PCell::new(unsafe { (*w.left).next.addr() } as u64),
                    op_tag: PCell::new(detect.map_or(0, |h| h.tag())),
                }) else {
                    // Pool exhausted: nothing changed. The thread-local
                    // pool-full flag is set; report "no effect" through the
                    // duplicate-shaped output so `try_insert` can translate
                    // it into a recoverable error (plain `insert` panics
                    // there, preserving the old contract).
                    return Critical::Done(Some(value));
                };
                D::persist_new_node(node as *const u8, std::mem::size_of::<Node<K, V, D::B>>());
                if let Some(h) = detect {
                    // Armed before the linearizing CAS; that CAS's pre-CAS
                    // fence orders the descriptor before the insertion
                    // becomes durable. Idempotent across restarts.
                    h.arm::<D::B>(0);
                }
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let left_next = unsafe { &(*w.left).next };
                match D::c_cas_link(left_next, Self::word_of(w.right), MarkedPtr::new(node)) {
                    Ok(()) => {
                        if let Some(h) = detect {
                            // Linearized: publish the applied result; the
                            // closing `before_return` fence makes it durable.
                            h.publish::<D::B>(true);
                        }
                        Critical::Done(None)
                    }
                    Err(_) => {
                        // Never published: free directly, no epoch needed.
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { free(node) };
                        Critical::Restart
                    }
                }
            }
            SetOp::Remove(key) => {
                // deleteCritical (Algorithm 3, lines 37–57).
                if !self.trim(guard, &w) {
                    return Critical::Restart;
                }
                if w.right.is_null() || Self::key_of(w.right) != key {
                    if let Some(h) = detect {
                        // Miss: a no-op remove. The MISS sentinel (not 0)
                        // distinguishes this from removing an untagged node.
                        h.arm::<D::B>(OP_TARGET_MISS);
                        h.publish::<D::B>(false);
                    }
                    return Critical::Done(None);
                }
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let right_next = unsafe { &(*w.right).next };
                let r_next = D::c_load_link(right_next);
                if r_next.is_marked() {
                    return Critical::Restart;
                }
                if let Some(h) = detect {
                    // Record which node this remove targets (its insert's
                    // tag — 0 for non-detectable inserts), so recovery can
                    // ask "does that exact node survive?". The marking
                    // CAS's pre-fence orders the armed words.
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    h.arm::<D::B>(D::load_fixed(unsafe { &(*w.right).op_tag }));
                }
                match D::c_cas_link(right_next, r_next, r_next.with_mark()) {
                    Ok(()) => {
                        if let Some(h) = detect {
                            // The mark IS the linearization (logical
                            // deletion); publish before the best-effort
                            // physical splice.
                            h.publish::<D::B>(true);
                        }
                        // Logically deleted; now try the physical splice. If
                        // it fails another traversal's trim will finish it.
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        let left_next = unsafe { &(*w.left).next };
                        if D::c_cas_link(left_next, Self::word_of(w.right), r_next).is_ok() {
                            // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                            unsafe { guard.retire(w.right) };
                        }
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })))
                    }
                    Err(_) => Critical::Restart,
                }
            }
        }
    }
}

impl<K, V, D, const ORIG_PARENT: bool> DurableSet<K, V> for HarrisList<K, V, D, ORIG_PARENT>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.try_insert(key, value)
            .expect("persistent pool exhausted (and volatile fallback would lose data)")
    }

    fn remove(&self, key: K) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, ListOp::from(SetOp::Remove(key))).is_some()
    }

    fn get(&self, key: K) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, ListOp::from(SetOp::Get(key)))
    }

    fn len(&self) -> usize {
        self.quiescent_len()
    }

    fn recover(&self) {
        self.recover_list();
    }

    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        clear_pool_full();
        let existing = run_operation(self, &guard, ListOp::from(SetOp::Insert(key, value)));
        if pool_full_seen() {
            return Err(OpError::PoolFull);
        }
        Ok(existing.is_none())
    }

    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        Ok(self.remove(key))
    }

    fn insert_detectable(
        &self,
        token: &mut OpToken,
        key: K,
        value: V,
    ) -> Result<(OpId, bool), OpError> {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        clear_pool_full();
        let h = token.begin_insert(key.to_bits(), value.to_bits());
        let existing = run_operation(
            self,
            &guard,
            ListOp::detectable(SetOp::Insert(key, value), h),
        );
        if pool_full_seen() {
            return Err(OpError::PoolFull);
        }
        Ok((h.id(), existing.is_none()))
    }

    fn remove_detectable(&self, token: &mut OpToken, key: K) -> Result<(OpId, bool), OpError> {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        let h = token.begin_remove(key.to_bits());
        let removed = run_operation(self, &guard, ListOp::detectable(SetOp::Remove(key), h));
        Ok((h.id(), removed.is_some()))
    }
}

impl<K, V, D, const ORIG_PARENT: bool> PoolAttach for HarrisList<K, V, D, ORIG_PARENT>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let list = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, list.head)?;
        Ok(list)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let head = pool.attach_root_ptr::<Node<K, V, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(head, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover_list();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }

    fn resolve_detectable(&self, pool: &Pool) {
        for raw in pool.unresolved_ops() {
            pool.resolve_op(raw.id(), self.classify_op(&raw));
        }
    }
}

// SAFETY: the walk mirrors `recover_list` exactly — from the head sentinel
// along `next` pointers, straight *through* marked nodes (a reachable
// marked node is trimmed by recovery, so it must survive the sweep). The
// only other blocks a list ever reaches are its nodes' own fields.
// SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
unsafe impl<K, V, D, const ORIG_PARENT: bool> nvtraverse::PoolTrace
    for HarrisList<K, V, D, ORIG_PARENT>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            crate::trace_chain(marker, root as NodePtr<K, V, D::B>, |n| {
                // Raw load; `.ptr()` strips mark/flag/dirty bits.
                // nvt-lint: allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
                (*n).next.load().ptr()
            });
        }
    }
}

impl<K, V, D, const P: bool> Default for HarrisList<K, V, D, P>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D, const P: bool> fmt::Debug for HarrisList<K, V, D, P>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisList")
            .field("len", &self.quiescent_len())
            .field("durable", &D::DURABLE)
            .finish()
    }
}

impl<K: Word, V: Word, D: Durability, const P: bool> Drop for HarrisList<K, V, D, P> {
    fn drop(&mut self) {
        // Exclusive access: free every node reachable from head, marked or
        // not. Trimmed nodes were handed to the collector already. Links
        // poisoned by an unrecovered simulated crash terminate the walk
        // (leaking the tail), matching a persistent heap's behaviour.
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut cur = self.head;
            while !cur.is_null() {
                // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
                let bits = (*cur).next.peek_bits();
                let nxt = if bits == nvtraverse_pmem::POISON {
                    std::ptr::null_mut()
                } else {
                    MarkedPtr::<Node<K, V, D::B>>::from_bits_raw(bits).ptr()
                };
                free(cur);
                cur = nxt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn policies_smoke<D: Durability>() {
        let l: HarrisList<u64, u64, D> = HarrisList::new();
        assert!(l.is_empty());
        assert!(l.insert(2, 20));
        assert!(l.insert(1, 10));
        assert!(l.insert(3, 30));
        assert!(!l.insert(2, 99), "duplicate insert must fail");
        assert_eq!(l.get(2), Some(20), "failed insert must not overwrite");
        assert_eq!(l.len(), 3);
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.get(2), None);
        assert_eq!(l.check_consistency(true).unwrap(), 2);
        assert_eq!(
            l.iter_snapshot(),
            vec![(1, 10), (3, 30)],
            "must stay sorted"
        );
    }

    #[test]
    fn volatile_semantics() {
        policies_smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_semantics() {
        policies_smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_semantics() {
        policies_smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn link_persist_semantics() {
        policies_smoke::<LinkPersist<Clwb>>();
    }

    #[test]
    fn orig_parent_variant_semantics() {
        let l: HarrisListOrigParent<u64, u64, NvTraverse<Noop>> = HarrisList::new();
        for k in 0..50u64 {
            assert!(l.insert(k, k + 100));
        }
        for k in (0..50u64).step_by(2) {
            assert!(l.remove(k));
        }
        assert_eq!(l.len(), 25);
        assert_eq!(l.check_consistency(true).unwrap(), 25);
    }

    #[test]
    fn signed_keys_sort_by_value_not_bits() {
        let l: HarrisList<i64, u64, Volatile> = HarrisList::new();
        for k in [-5i64, 3, -1, 0, 7] {
            assert!(l.insert(k, 0));
        }
        let keys: Vec<i64> = l.iter_snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![-5, -1, 0, 3, 7]);
    }

    #[test]
    fn boundary_inserts_at_both_ends() {
        let l: HarrisList<u64, u64, Volatile> = HarrisList::new();
        assert!(l.insert(u64::MAX, 1));
        assert!(l.insert(0, 2));
        assert!(l.insert(u64::MAX / 2, 3));
        assert_eq!(l.get(u64::MAX), Some(1));
        assert_eq!(l.get(0), Some(2));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn matches_model_on_random_sequential_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let l: HarrisList<u64, u64, NvTraverse<Noop>> = HarrisList::new();
        let mut model = ModelSet::new();
        for i in 0..3000u64 {
            let k = rng.random_range(0..64);
            match rng.random_range(0..3) {
                0 => assert_eq!(l.insert(k, i), model.insert(k, i), "insert({k})"),
                1 => assert_eq!(l.remove(k), model.remove(k), "remove({k})"),
                _ => assert_eq!(l.get(k), model.get(k), "get({k})"),
            }
        }
        assert_eq!(l.len(), model.len());
        let pairs: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(l.iter_snapshot(), pairs);
    }

    #[test]
    fn concurrent_disjoint_ranges_keep_all_inserts() {
        const THREADS: u64 = 4;
        const PER: u64 = 300;
        let l: HarrisList<u64, u64, NvTraverse<Clwb>> = HarrisList::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let l = &l;
                s.spawn(move || {
                    let base = t * PER;
                    for k in base..base + PER {
                        assert!(l.insert(k, k));
                    }
                    for k in (base..base + PER).step_by(3) {
                        assert!(l.remove(k));
                    }
                });
            }
        });
        let expected = (THREADS * PER) as usize - (THREADS as usize * PER.div_ceil(3) as usize);
        assert_eq!(l.check_consistency(true).unwrap(), expected);
    }

    #[test]
    fn concurrent_contended_single_key_is_coherent() {
        // All threads fight over one key; successful inserts and removes
        // must alternate per key, so totals balance.
        use std::sync::atomic::{AtomicI64, Ordering};
        let l: HarrisList<u64, u64, NvTraverse<Clwb>> = HarrisList::new();
        let balance = AtomicI64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let balance = &balance;
                s.spawn(move || {
                    for i in 0..2000 {
                        if i % 2 == 0 {
                            if l.insert(42, 1) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if l.remove(42) {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let final_present = l.contains(42) as i64;
        assert_eq!(balance.load(Ordering::Relaxed), final_present);
        l.check_consistency(true).unwrap();
    }

    #[test]
    fn concurrent_mixed_ops_stress() {
        use rand::prelude::*;
        let l: HarrisList<u64, u64, LinkPersist<Clwb>> = HarrisList::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t);
                    for _ in 0..4000 {
                        let k = rng.random_range(0..128);
                        match rng.random_range(0..10) {
                            0..=2 => {
                                l.insert(k, k);
                            }
                            3..=5 => {
                                l.remove(k);
                            }
                            _ => {
                                l.get(k);
                            }
                        }
                    }
                });
            }
        });
        l.check_consistency(true).unwrap();
    }

    #[test]
    fn recovery_trims_marked_nodes() {
        // Mark a node by hand (simulating a crash between the mark and the
        // physical delete), then check recover() disconnects it.
        let l: HarrisList<u64, u64, NvTraverse<Noop>> = HarrisList::new();
        for k in 1..=5u64 {
            l.insert(k, k);
        }
        unsafe {
            // Find node 3 and set its mark bit directly.
            let mut cur = (*l.head).next.load().ptr();
            while !cur.is_null() && (*cur).key.load() != 3 {
                cur = (*cur).next.load().ptr();
            }
            let nw = (*cur).next.load();
            (*cur).next.store(nw.with_mark());
        }
        assert!(l.check_consistency(false).is_err(), "marked node visible");
        l.recover();
        assert_eq!(l.check_consistency(false).unwrap(), 4);
        assert_eq!(l.get(3), None);
        assert!(l.insert(3, 33), "list must be fully usable after recovery");
    }

    #[test]
    fn drop_frees_marked_and_unmarked() {
        // Covered implicitly by miri-less leak checks elsewhere; here we just
        // exercise the path: build, mark one node, drop.
        let l: HarrisList<u64, u64, Volatile> = HarrisList::new();
        for k in 1..=10u64 {
            l.insert(k, k);
        }
        unsafe {
            let first = (*l.head).next.load().ptr();
            let nw = (*first).next.load();
            (*first).next.store(nw.with_mark());
        }
        drop(l); // must not leak or double-free
    }

    #[test]
    fn empty_list_operations() {
        let l: HarrisList<u64, u64, NvTraverse<Noop>> = HarrisList::new();
        assert_eq!(l.get(1), None);
        assert!(!l.remove(1));
        assert_eq!(l.len(), 0);
        assert!(l.is_empty());
        assert_eq!(l.check_consistency(false).unwrap(), 0);
        l.recover(); // recovery of an empty list is a no-op
        assert!(l.is_empty());
    }

    #[test]
    fn debug_format_mentions_len() {
        let l: HarrisList<u64, u64, Volatile> = HarrisList::new();
        l.insert(1, 1);
        let s = format!("{l:?}");
        assert!(s.contains("len"), "{s}");
    }

    #[test]
    fn detectable_ops_publish_and_classify() {
        use nvtraverse::detect::OpTable;
        use nvtraverse_pool::optable::{OP_RESULT_APPLIED, OP_RESULT_NOOP};

        let l: HarrisList<u64, u64, NvTraverse<Noop>> = HarrisList::new();
        let table: OpTable<Noop> = OpTable::new(4);
        let mut tok = table.token(0);

        // Fresh insert: published applied, classifiable as committed.
        let (id1, fresh) = l.insert_detectable(&mut tok, 7, 70).unwrap();
        assert!(fresh);
        let raw = table.raw(0).expect("descriptor armed");
        assert_eq!(raw.id(), id1);
        assert_eq!(raw.published(), Some(OP_RESULT_APPLIED));
        assert_eq!(l.classify_op(&raw), OpOutcome::Committed);
        assert_eq!(l.get(7), Some(70));

        // Duplicate insert: published no-op, and the earlier op is now
        // superseded in the descriptor.
        let (id2, fresh) = l.insert_detectable(&mut tok, 7, 99).unwrap();
        assert!(!fresh);
        assert!(id2.seq() > id1.seq());
        let raw = table.raw(0).unwrap();
        assert_eq!(raw.id(), id2);
        assert_eq!(raw.published(), Some(OP_RESULT_NOOP));
        assert_eq!(l.classify_op(&raw), OpOutcome::NotApplied);
        assert_eq!(
            classify_raw(Some(&raw), id1),
            RawClass::Decided(OpOutcome::Superseded)
        );
        assert_eq!(l.get(7), Some(70), "failed insert must not overwrite");

        // Remove of a missing key: armed against a miss, no-op.
        let (_, removed) = l.remove_detectable(&mut tok, 100).unwrap();
        assert!(!removed);
        let raw = table.raw(0).unwrap();
        assert_eq!(raw.target_tag, OP_TARGET_MISS);
        assert_eq!(l.classify_op(&raw), OpOutcome::NotApplied);

        // Remove of a live key: committed, and the key is gone.
        let (_, removed) = l.remove_detectable(&mut tok, 7).unwrap();
        assert!(removed);
        let raw = table.raw(0).unwrap();
        assert_eq!(raw.published(), Some(OP_RESULT_APPLIED));
        assert_eq!(l.classify_op(&raw), OpOutcome::Committed);
        assert_eq!(l.get(7), None);

        // A re-issued token resumes from the stored sequence number.
        let resumed = table.token(0);
        assert_eq!(resumed.last_op().map(|id| id.seq()), Some(raw.seq));
    }
}
