//! Traversal-form lock-free data structures for the NVTraverse reproduction.
//!
//! Every structure evaluated in the paper's §5, written once against the
//! [`Durability`](nvtraverse::Durability) policy interface so the same code
//! instantiates as the original algorithm, the NVTraverse version, the
//! Izraelevitz et al. baseline, or the link-and-persist ("Log Free")
//! competitor:
//!
//! * [`list::HarrisList`] — Harris's sorted linked list (the running example,
//!   paper §2.1/§4.4),
//! * [`hash::HashMapDs`] — fixed-size bucket array of Harris lists (David et
//!   al. style),
//! * [`ellen_bst::EllenBst`] — Ellen et al.'s non-blocking external BST,
//! * [`nm_bst::NmBst`] — Natarajan & Mittal's edge-marking external BST,
//! * [`skiplist::SkipList`] — a lock-free skiplist whose bottom level is the
//!   persistent core tree and whose towers are volatile and rebuilt on
//!   recovery (paper §3, Property 2 discussion),
//! * [`queue::MsQueue`] / [`stack::TreiberStack`] — queue and stack in
//!   traversal form (paper §3: "traversal data structures capture not just
//!   set data structures, but also queues, stacks, …").
//!
//! Every structure (including [`pqueue::PriorityQueue`]) implements
//! [`PoolAttach`](nvtraverse::PoolAttach): it can be created inside a
//! `nvtraverse-pool` file, found again by name after a restart, and
//! recovered — see `nvtraverse::PooledHandle` for the packaged lifecycle
//! and the repository's `ARCHITECTURE.md` for the per-structure recovery
//! table (what each root encodes and what is rebuilt volatile-side).
//! Each also implements [`PoolTrace`](nvtraverse::PoolTrace) — the
//! reachability walk `Pool::open`'s mark-sweep recovery GC uses to sweep
//! crash-stranded blocks; the table's *reachability contract* column
//! documents exactly which links each walk follows.
//!
//! # Example
//!
//! ```
//! use nvtraverse::policy::NvTraverse;
//! use nvtraverse::DurableSet;
//! use nvtraverse_pmem::Clwb;
//! use nvtraverse_structures::list::HarrisList;
//!
//! // A durably linearizable sorted list on real flush instructions.
//! let list: HarrisList<u64, u64, NvTraverse<Clwb>> = HarrisList::new();
//! assert!(list.insert(3, 30));
//! assert!(list.contains(3));
//! assert!(list.remove(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// The singly-linked chain walk shared by every `PoolTrace` implementation
/// built on a next-pointer chain (list and skiplist bottom level, queue
/// node chain, stack chain): mark `cur`, then follow `next` until the end
/// of the chain or an already-marked node (a shared suffix needs walking
/// only once). Marked/logically-deleted links are followed like any other —
/// a reachable-but-marked node must survive the sweep so `recover()` can
/// trim it through the collector.
///
/// # Safety
///
/// `cur` must be null or a chain node valid under `Pool::open` recovery's
/// quiescence, and `next` must read the node's link word without side
/// effects (raw load, no policy flushes).
pub(crate) unsafe fn trace_chain<N>(
    marker: &mut nvtraverse_pool::Marker<'_>,
    mut cur: *mut N,
    next: impl Fn(*mut N) -> *mut N,
) {
    while !cur.is_null() && marker.mark(cur as *const u8) {
        cur = next(cur);
    }
}

pub mod ellen_bst;
pub mod hash;
pub mod list;
pub mod nm_bst;
pub mod pqueue;
pub mod queue;
pub mod sharded;
pub mod skiplist;
pub mod soft_hash;
pub mod soft_list;
pub mod stack;

/// Convenient aliases for the common instantiations of every structure.
pub mod prelude {
    use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse, Soft, Volatile};
    use nvtraverse_pmem::Clwb;

    /// The paper's "Traverse" series: NVTraverse on hardware flushes.
    pub type DurableList<K, V> = crate::list::HarrisList<K, V, NvTraverse<Clwb>>;
    /// The paper's "orig" series: no persistence.
    pub type VolatileList<K, V> = crate::list::HarrisList<K, V, Volatile>;
    /// The paper's "Izraelevitz" series.
    pub type IzraelevitzList<K, V> = crate::list::HarrisList<K, V, Izraelevitz<Clwb>>;
    /// The paper's "Log Free" series (link-and-persist).
    pub type LogFreeList<K, V> = crate::list::HarrisList<K, V, LinkPersist<Clwb>>;
    /// The SOFT related-work series: volatile links, one validity flush
    /// per update (list form).
    pub type SoftDurableList<K, V> = crate::soft_list::SoftList<K, V, Soft<Clwb>>;

    /// Durable hash table.
    pub type DurableHashMap<K, V> = crate::hash::HashMapDs<K, V, NvTraverse<Clwb>>;
    /// The SOFT related-work series, hash-table form.
    pub type SoftDurableHashMap<K, V> = crate::soft_hash::SoftHash<K, V, Soft<Clwb>>;
    /// Durable Ellen et al. BST.
    pub type DurableEllenBst<K, V> = crate::ellen_bst::EllenBst<K, V, NvTraverse<Clwb>>;
    /// Durable Natarajan–Mittal BST.
    pub type DurableNmBst<K, V> = crate::nm_bst::NmBst<K, V, NvTraverse<Clwb>>;
    /// Durable skiplist.
    pub type DurableSkipList<K, V> = crate::skiplist::SkipList<K, V, NvTraverse<Clwb>>;
    /// Durable Michael–Scott queue.
    pub type DurableQueue<V> = crate::queue::MsQueue<V, NvTraverse<Clwb>>;
    /// Durable Treiber stack.
    pub type DurableStack<V> = crate::stack::TreiberStack<V, NvTraverse<Clwb>>;
    /// Durable min-priority queue.
    pub type DurablePriorityQueue<K, V> = crate::pqueue::PriorityQueue<K, V, NvTraverse<Clwb>>;

    /// A hash-sharded durable set over N independent pool files
    /// (`MmapBackend`: the pool's own flush/fence backend).
    pub type ShardedDurableSet<K, V> = crate::sharded::ShardedSet<
        crate::hash::HashMapDs<K, V, NvTraverse<nvtraverse_pmem::MmapBackend>>,
    >;
}
