//! Ellen et al.'s non-blocking external binary search tree (PODC 2010) in
//! traversal form — one of the two BSTs of the paper's evaluation (§5).
//!
//! The tree is *external*: internal nodes carry routing keys only, all data
//! lives in leaves, and every internal node has exactly two children. Updates
//! coordinate through each internal node's `update` word — an info-record
//! pointer plus a 2-bit state (`CLEAN`/`IFLAG`/`DFLAG`/`MARK`) — which makes
//! threads *help* stalled operations instead of blocking on them.
//!
//! In traversal-data-structure terms (paper §3):
//!
//! * `traverse` is the descent from the root to a leaf, recording the last
//!   two internal nodes (`gp`, `p`), their update words, and the child links
//!   followed — a constant-size suffix of the path;
//! * the *mark* of Definition 1 is the `MARK` state in an internal node's
//!   update word: a marked internal is frozen and will be disconnected by
//!   `helpMarked`, the unique disconnection instruction (Property 5);
//! * `critical` is the flag/mark/help machinery, with Protocol 2 flushes
//!   injected through the `Durability` policy's `c_*` methods;
//! * the recovery `disconnect` pass (Supplement 1) walks the tree and helps
//!   every non-`CLEAN` update word to completion.

use nvtraverse::alloc::{alloc_node, free, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach, SetOp};
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;

/// Update-word states (the two algorithm tag bits of [`MarkedPtr`]).
const CLEAN: u64 = 0b00;
const IFLAG: u64 = 0b01;
const DFLAG: u64 = 0b10;
const MARK: u64 = 0b11;

/// Sentinel rank: 0 = ordinary key, 1 = ∞₁, 2 = ∞₂ (root). Every ordinary
/// key compares below both infinities, so the initial tree
/// `root(∞₂) → [leaf(∞₁), leaf(∞₂)]` routes all keys into its left spine.
const RANK_NORMAL: u64 = 0;
const RANK_INF1: u64 = 1;
const RANK_INF2: u64 = 2;

/// A tree node (internal or leaf). `key`, `rank`, `leaf` and `value` are
/// immutable after initialization; `left`/`right`/`update` are only used on
/// internal nodes.
#[repr(C)]
pub struct BstNode<K: Word, V: Word, B: Backend> {
    key: PCell<K, B>,
    value: PCell<V, B>,
    rank: PCell<u64, B>,
    leaf: PCell<bool, B>,
    left: PCell<MarkedPtr<BstNode<K, V, B>>, B>,
    right: PCell<MarkedPtr<BstNode<K, V, B>>, B>,
    update: PCell<MarkedPtr<Info<K, V, B>>, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for BstNode<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BstNode")
            .field("leaf", &self.leaf)
            .finish()
    }
}

/// An operation descriptor. One record serves both insert (`p`, `l`,
/// `new_internal`) and delete (`gp`, `p`, `l`, `pupdate`); all fields are
/// immutable and persisted before the record is published by a flag CAS, so
/// helpers (and the recovery pass) can always rely on them.
#[repr(C)]
pub struct Info<K: Word, V: Word, B: Backend> {
    gp: PCell<*mut BstNode<K, V, B>, B>,
    p: PCell<*mut BstNode<K, V, B>, B>,
    l: PCell<*mut BstNode<K, V, B>, B>,
    new_internal: PCell<*mut BstNode<K, V, B>, B>,
    /// The `p.update` word observed by the deleter (bits of a `MarkedPtr`).
    pupdate: PCell<u64, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for Info<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Info")
    }
}

type NodePtr<K, V, B> = *mut BstNode<K, V, B>;
/// A child-pointer cell of an internal node.
type ChildCell<K, V, D> =
    PCell<MarkedPtr<BstNode<K, V, <D as Durability>::B>>, <D as Durability>::B>;

/// The traversal window: the search's destination plus the two ancestors the
/// critical method may modify (Ellen et al.'s `Search` result).
pub struct SeekRecord<K: Word, V: Word, B: Backend> {
    /// Grandparent of the leaf (null only while the tree is trivially
    /// shallow).
    gp: NodePtr<K, V, B>,
    /// Parent of the leaf.
    p: NodePtr<K, V, B>,
    /// The leaf the search arrived at.
    l: NodePtr<K, V, B>,
    /// `gp.update` as read during the traversal.
    gpupdate: MarkedPtr<Info<K, V, B>>,
    /// `p.update` as read during the traversal.
    pupdate: MarkedPtr<Info<K, V, B>>,
    /// Address of the child cell followed into `gp` (ensureReachable).
    anc_link: *const u8,
    /// Address of the child cell followed `gp → p`.
    gp_link: *const u8,
    /// Address of the child cell followed `p → l`.
    p_link: *const u8,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for SeekRecord<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeekRecord")
            .field("gp", &self.gp)
            .field("p", &self.p)
            .field("l", &self.l)
            .finish()
    }
}

/// Ellen et al.'s lock-free external BST, parameterized by durability policy.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse::DurableSet;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::ellen_bst::EllenBst;
///
/// let t: EllenBst<u64, u64, NvTraverse<Clwb>> = EllenBst::new();
/// assert!(t.insert(5, 50));
/// assert_eq!(t.get(5), Some(50));
/// assert!(t.remove(5));
/// ```
pub struct EllenBst<K: Word, V: Word, D: Durability> {
    root: NodePtr<K, V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Send for EllenBst<K, V, D> {}
// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<K: Word, V: Word, D: Durability> Sync for EllenBst<K, V, D> {}

impl<K, V, D> EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates the initial tree: `root(∞₂)` over `leaf(∞₁)` and `leaf(∞₂)`.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty tree retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let inf1 = Self::alloc_leaf_ranked(K::from_bits(0), V::from_bits(0), RANK_INF1);
        let inf2 = Self::alloc_leaf_ranked(K::from_bits(0), V::from_bits(0), RANK_INF2);
        let root = alloc_node::<_, D::B>(BstNode {
            key: PCell::new(K::from_bits(0)),
            value: PCell::new(V::from_bits(0)),
            rank: PCell::new(RANK_INF2),
            leaf: PCell::new(false),
            left: PCell::new(MarkedPtr::new(inf1)),
            right: PCell::new(MarkedPtr::new(inf2)),
            update: PCell::new(MarkedPtr::null()),
        });
        let size = std::mem::size_of::<BstNode<K, V, D::B>>();
        D::persist_new_node(inf1 as *const u8, size);
        D::persist_new_node(inf2 as *const u8, size);
        D::persist_new_node(root as *const u8, size);
        D::before_return();
        EllenBst {
            root,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    fn alloc_leaf_ranked(key: K, value: V, rank: u64) -> NodePtr<K, V, D::B> {
        alloc_node::<_, D::B>(BstNode {
            key: PCell::new(key),
            value: PCell::new(value),
            rank: PCell::new(rank),
            leaf: PCell::new(true),
            left: PCell::new(MarkedPtr::null()),
            right: PCell::new(MarkedPtr::null()),
            update: PCell::new(MarkedPtr::null()),
        })
    }

    /// The collector nodes are retired into.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Rebuilds a tree handle around an existing root node — the attach
    /// half of the pool lifecycle. The caller must run
    /// [`EllenBst::recover_tree`] before any operation so every published
    /// Info record (flagged or marked update word) is helped to completion.
    ///
    /// # Safety
    ///
    /// `root` must be the `∞₂` root of a tree built with the *same*
    /// `K`/`V`/`D` parameters, reachable and quiescent, and the caller must
    /// not drop two handles to the same tree (the pooled lifecycle never
    /// drops — see `nvtraverse::PooledHandle`).
    unsafe fn attach_at(root: NodePtr<K, V, D::B>, collector: Collector) -> Self {
        EllenBst {
            root,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// `true` if search key `k` routes left of `node` (considering ranks).
    #[inline]
    fn goes_left(k: K, node: NodePtr<K, V, D::B>) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let rank = D::load_fixed(&(*node).rank);
            if rank != RANK_NORMAL {
                true // every ordinary key < ∞₁ < ∞₂
            } else {
                k < D::load_fixed(&(*node).key)
            }
        }
    }

    /// Whether leaf `l` holds exactly ordinary key `k`.
    #[inline]
    fn leaf_is(l: NodePtr<K, V, D::B>, k: K) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            D::load_fixed(&(*l).rank) == RANK_NORMAL && D::load_fixed(&(*l).key) == k
        }
    }

    /// Node-vs-node routing order for `casChild`: compares (rank, key).
    #[inline]
    fn node_lt(a: NodePtr<K, V, D::B>, b: NodePtr<K, V, D::B>) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let (ra, rb) = (D::load_fixed(&(*a).rank), D::load_fixed(&(*b).rank));
            if ra != rb {
                ra < rb
            } else if ra != RANK_NORMAL {
                false
            } else {
                D::load_fixed(&(*a).key) < D::load_fixed(&(*b).key)
            }
        }
    }

    /// `CAS-Child(parent, old, new)`: swings the correct child pointer of
    /// `parent` from `old` to `new`, choosing the side by `new`'s routing
    /// position (every key in the replaced subtree is on the same side).
    fn cas_child(
        parent: NodePtr<K, V, D::B>,
        old: NodePtr<K, V, D::B>,
        new: NodePtr<K, V, D::B>,
    ) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        let cell = unsafe {
            if Self::node_lt(new, parent) {
                &(*parent).left
            } else {
                &(*parent).right
            }
        };
        D::c_cas_link(cell, MarkedPtr::new(old), MarkedPtr::new(new)).is_ok()
    }

    /// `Help(u)`: drives whichever operation the update word `u` describes.
    fn help(&self, u: MarkedPtr<Info<K, V, D::B>>) {
        match u.tag() {
            IFLAG => self.help_insert(u.ptr()),
            MARK => self.help_marked(u.ptr()),
            DFLAG => {
                let _ = self.help_delete(u.ptr());
            }
            _ => {}
        }
    }

    /// `HelpInsert(op)`: link the new internal node in place of the leaf,
    /// then unflag.
    fn help_insert(&self, op: *mut Info<K, V, D::B>) {
        debug_assert!(!op.is_null());
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let p = D::load_fixed(&(*op).p);
            let l = D::load_fixed(&(*op).l);
            let ni = D::load_fixed(&(*op).new_internal);
            Self::cas_child(p, l, ni);
            let flagged = MarkedPtr::new(op).with_tag(IFLAG);
            let _ = D::c_cas_link(&(*p).update, flagged, MarkedPtr::new(op).with_tag(CLEAN));
        }
    }

    /// `HelpDelete(op)`: try to mark the parent; on success complete via
    /// [`Self::help_marked`], otherwise help the obstruction and backtrack
    /// the grandparent's flag. Returns whether the delete went through.
    fn help_delete(&self, op: *mut Info<K, V, D::B>) -> bool {
        debug_assert!(!op.is_null());
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let gp = D::load_fixed(&(*op).gp);
            let p = D::load_fixed(&(*op).p);
            let pupdate = MarkedPtr::from_bits_raw(D::load_fixed(&(*op).pupdate));
            let mark_word = MarkedPtr::new(op).with_tag(MARK);
            let result = D::c_cas_link(&(*p).update, pupdate, mark_word);
            let marked = match result {
                Ok(()) => true,
                Err(actual) => actual == mark_word, // someone marked for us
            };
            if marked {
                self.help_marked(op);
                true
            } else {
                let actual = D::c_load_link(&(*p).update);
                self.help(actual);
                // Backtrack: unflag the grandparent so others can proceed.
                let flagged = MarkedPtr::new(op).with_tag(DFLAG);
                let _ =
                    D::c_cas_link(&(*gp).update, flagged, MarkedPtr::new(op).with_tag(CLEAN));
                false
            }
        }
    }

    /// `HelpMarked(op)`: the unique disconnection instruction — splice the
    /// marked parent (and its leaf) out by routing the sibling up, then
    /// unflag the grandparent.
    fn help_marked(&self, op: *mut Info<K, V, D::B>) {
        debug_assert!(!op.is_null());
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let gp = D::load_fixed(&(*op).gp);
            let p = D::load_fixed(&(*op).p);
            let l = D::load_fixed(&(*op).l);
            // p is marked ⇒ frozen ⇒ its children are stable.
            let right = D::c_load_link(&(*p).right);
            let other = if right.ptr() == l {
                D::c_load_link(&(*p).left).ptr()
            } else {
                right.ptr()
            };
            Self::cas_child(gp, p, other);
            let flagged = MarkedPtr::new(op).with_tag(DFLAG);
            let _ = D::c_cas_link(&(*gp).update, flagged, MarkedPtr::new(op).with_tag(CLEAN));
        }
    }

    /// Quiescent in-order walk collecting ordinary leaves.
    fn collect_leaves(
        &self,
        node: NodePtr<K, V, D::B>,
        out: &mut Vec<(K, V)>,
    ) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            if (*node).leaf.load() {
                if (*node).rank.load() == RANK_NORMAL {
                    out.push(((*node).key.load(), (*node).value.load()));
                }
                return;
            }
            self.collect_leaves((*node).left.load().ptr(), out);
            self.collect_leaves((*node).right.load().ptr(), out);
            // nvt-lint: end-allow(raw-pcell-access)
        }
    }

    /// Quiescent: all `(key, value)` pairs in key order.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    /// Quiescent: checks the external-BST invariants, returning the number
    /// of ordinary keys.
    ///
    /// # Errors
    ///
    /// Reports BST-order violations, internal nodes without two children,
    /// and (if `require_clean`) any non-`CLEAN` update word.
    pub fn check_consistency(&self, require_clean: bool) -> Result<usize, String> {
        fn walk<K: Word + Ord, V: Word, D: Durability>(
            node: NodePtr<K, V, D::B>,
            require_clean: bool,
            count: &mut usize,
        ) -> Result<(), String> {
            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
            unsafe {
                if node.is_null() {
                    return Err("null child in tree".into());
                }
                // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
                if (*node).leaf.load() {
                    if (*node).rank.load() == RANK_NORMAL {
                        *count += 1;
                    }
                    return Ok(());
                }
                if require_clean && (*node).update.load().tag() != CLEAN {
                    return Err("non-clean update word after recovery".into());
                }
                let l = (*node).left.load().ptr();
                let r = (*node).right.load().ptr();
                // Routing invariant: left subtree < node ≤ right subtree.
                if !EllenBst::<K, V, D>::node_lt(l, node)
                    && (*l).rank.load() == RANK_NORMAL
                    // nvt-lint: end-allow(raw-pcell-access)
                {
                    return Err("left child not below routing key".into());
                }
                walk::<K, V, D>(l, require_clean, count)?;
                walk::<K, V, D>(r, require_clean, count)
            }
        }
        let mut count = 0;
        walk::<K, V, D>(self.root, require_clean, &mut count)?;
        // Keys must also be globally sorted and unique.
        let snap = self.iter_snapshot();
        for w in snap.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err("leaf keys not strictly increasing".into());
            }
        }
        Ok(count)
    }

    /// Recovery (Supplement 1): help every pending operation to completion.
    /// After the pass no update word is flagged or marked and no marked
    /// internal node is reachable.
    pub fn recover_tree(&self) {
        if !D::DURABLE {
            return;
        }
        let _guard = self.collector.pin();
        // Repeat until a full pass finds everything clean (helping a DFLAG
        // can expose the MARK it installs).
        loop {
            let mut dirty = false;
            self.recover_walk(self.root, &mut dirty);
            if !dirty {
                break;
            }
        }
        D::before_return();
    }

    fn recover_walk(&self, node: NodePtr<K, V, D::B>, dirty: &mut bool) {
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
            if node.is_null() || (*node).leaf.load() {
                return;
            }
            let u = (*node).update.load();
            if u.tag() != CLEAN {
                *dirty = true;
                self.help(u);
            }
            self.recover_walk((*node).left.load().ptr(), dirty);
            self.recover_walk((*node).right.load().ptr(), dirty);
            // nvt-lint: end-allow(raw-pcell-access)
        }
    }

}

impl<K: Word, V: Word, D: Durability> EllenBst<K, V, D> {
    /// Teardown-safe child read: poisoned words (unrecovered crash) read as
    /// null, leaking the unreachable remainder.
    fn teardown_child(cell: &ChildCell<K, V, D>) -> NodePtr<K, V, D::B> {
        // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
        let bits = cell.peek_bits();
        if bits == nvtraverse_pmem::POISON {
            std::ptr::null_mut()
        } else {
            MarkedPtr::<BstNode<K, V, D::B>>::from_bits_raw(bits).ptr()
        }
    }

    fn free_subtree(node: NodePtr<K, V, D::B>) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            if node.is_null() {
                return;
            }
            // nvt-lint: allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
            let leaf_bits = (*node).leaf.peek_bits();
            if leaf_bits != nvtraverse_pmem::POISON && !bool::from_bits(leaf_bits) {
                Self::free_subtree(Self::teardown_child(&(*node).left));
                Self::free_subtree(Self::teardown_child(&(*node).right));
            }
            free(node);
        }
    }
}

impl<K, V, D> TraversalOps for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = SetOp<K, V>;
    type Output = Option<V>;
    type Entry = NodePtr<K, V, D::B>;
    type Window = SeekRecord<K, V, D::B>;

    fn find_entry(&self, _guard: &Guard, _input: Self::Input) -> Self::Entry {
        self.root
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        let key = match input {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            let mut gp: NodePtr<K, V, D::B> = std::ptr::null_mut();
            let mut p: NodePtr<K, V, D::B> = std::ptr::null_mut();
            let mut l = entry;
            let mut gpupdate = MarkedPtr::null();
            let mut pupdate = MarkedPtr::null();
            let mut anc_link: *const u8 = std::ptr::null();
            let mut gp_link: *const u8 = std::ptr::null();
            let mut p_link: *const u8 = std::ptr::null();
            while !D::load_fixed(&(*l).leaf) {
                gp = p;
                p = l;
                gpupdate = pupdate;
                pupdate = D::t_load_link(&(*p).update);
                let cell = if Self::goes_left(key, p) {
                    &(*p).left
                } else {
                    &(*p).right
                };
                anc_link = gp_link;
                gp_link = p_link;
                p_link = cell.addr();
                l = D::t_load_link(cell).ptr();
            }
            SeekRecord {
                gp,
                p,
                l,
                gpupdate,
                pupdate,
                anc_link,
                gp_link,
                p_link,
            }
        }
    }

    fn collect_persist_set(&self, w: &Self::Window, out: &mut PersistSet) {
        // ensureReachable: the child cell that links the window's topmost
        // node (gp, or p when the tree is shallow) — Lemma 4.1 with k = 1,
        // since an insert links exactly one new internal node whose own
        // subtree was persisted before publication.
        if !w.anc_link.is_null() {
            out.set_parent(w.anc_link);
        } else if !w.gp_link.is_null() {
            out.set_parent(w.gp_link);
        }
        // makePersistent: every mutable field the traversal read in the
        // returned window — the two update words and the followed links.
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            if !w.gp.is_null() {
                out.push((*w.gp).update.addr());
            }
            if !w.p.is_null() {
                out.push((*w.p).update.addr());
            }
        }
        if !w.gp_link.is_null() {
            out.push(w.gp_link);
        }
        if !w.p_link.is_null() {
            out.push(w.p_link);
        }
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        match input {
            SetOp::Get(key) => {
                if Self::leaf_is(w.l, key) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    Critical::Done(Some(D::load_fixed(unsafe { &(*w.l).value })))
                } else {
                    Critical::Done(None)
                }
            }
            SetOp::Insert(key, value) => {
                if Self::leaf_is(w.l, key) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    return Critical::Done(Some(D::load_fixed(unsafe { &(*w.l).value })));
                }
                if w.pupdate.tag() != CLEAN {
                    self.help(w.pupdate);
                    return Critical::Restart;
                }
                // Build the replacement subtree: a new internal whose
                // children are the new leaf and a copy of l, ordered by key.
                let new_leaf = Self::alloc_leaf_ranked(key, value, RANK_NORMAL);
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let l_copy = unsafe {
                    Self::alloc_leaf_ranked(
                        D::load_fixed(&(*w.l).key),
                        D::load_fixed(&(*w.l).value),
                        D::load_fixed(&(*w.l).rank),
                    )
                };
                let (lc, rc, ikey, irank) = if Self::node_lt(new_leaf, l_copy) {
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    unsafe {
                        (
                            new_leaf,
                            l_copy,
                            D::load_fixed(&(*w.l).key),
                            D::load_fixed(&(*w.l).rank),
                        )
                    }
                } else {
                    (l_copy, new_leaf, key, RANK_NORMAL)
                };
                let new_internal = alloc_node::<_, D::B>(BstNode {
                    key: PCell::new(ikey),
                    value: PCell::new(V::from_bits(0)),
                    rank: PCell::new(irank),
                    leaf: PCell::new(false),
                    left: PCell::new(MarkedPtr::new(lc)),
                    right: PCell::new(MarkedPtr::new(rc)),
                    update: PCell::new(MarkedPtr::null()),
                });
                let op = alloc_node::<_, D::B>(Info {
                    gp: PCell::new(std::ptr::null_mut()),
                    p: PCell::new(w.p),
                    l: PCell::new(w.l),
                    new_internal: PCell::new(new_internal),
                    pupdate: PCell::new(0),
                });
                let node_size = std::mem::size_of::<BstNode<K, V, D::B>>();
                D::persist_new_node(new_leaf as *const u8, node_size);
                D::persist_new_node(l_copy as *const u8, node_size);
                D::persist_new_node(new_internal as *const u8, node_size);
                D::persist_new_node(op as *const u8, std::mem::size_of::<Info<K, V, D::B>>());
                let iflag = MarkedPtr::new(op).with_tag(IFLAG);
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                match D::c_cas_link(unsafe { &(*w.p).update }, w.pupdate, iflag) {
                    Ok(()) => {
                        self.help_insert(op);
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        unsafe {
                            // The old leaf was replaced by its copy.
                            guard.retire(w.l);
                            guard.retire(op);
                        }
                        Critical::Done(None)
                    }
                    Err(actual) => {
                        self.help(actual);
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        unsafe {
                            free(new_leaf);
                            free(l_copy);
                            free(new_internal);
                            free(op);
                        }
                        Critical::Restart
                    }
                }
            }
            SetOp::Remove(key) => {
                if !Self::leaf_is(w.l, key) {
                    return Critical::Done(None);
                }
                if w.gp.is_null() {
                    // Ordinary leaves sit at depth ≥ 2; a missing
                    // grandparent means our picture is stale.
                    return Critical::Restart;
                }
                if w.gpupdate.tag() != CLEAN {
                    self.help(w.gpupdate);
                    return Critical::Restart;
                }
                if w.pupdate.tag() != CLEAN {
                    self.help(w.pupdate);
                    return Critical::Restart;
                }
                let op = alloc_node::<_, D::B>(Info {
                    gp: PCell::new(w.gp),
                    p: PCell::new(w.p),
                    l: PCell::new(w.l),
                    new_internal: PCell::new(std::ptr::null_mut()),
                    pupdate: PCell::new(w.pupdate.bits()),
                });
                D::persist_new_node(op as *const u8, std::mem::size_of::<Info<K, V, D::B>>());
                let dflag = MarkedPtr::new(op).with_tag(DFLAG);
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                match D::c_cas_link(unsafe { &(*w.gp).update }, w.gpupdate, dflag) {
                    Ok(()) => {
                        if self.help_delete(op) {
                            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                            let value = D::load_fixed(unsafe { &(*w.l).value });
                            // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                            unsafe {
                                guard.retire(w.p);
                                guard.retire(w.l);
                                guard.retire(op);
                            }
                            Critical::Done(Some(value))
                        } else {
                            // Backtracked; op stays published as CLEAN bits.
                            // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                            unsafe { guard.retire(op) };
                            Critical::Restart
                        }
                    }
                    Err(actual) => {
                        self.help(actual);
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { free(op) };
                        Critical::Restart
                    }
                }
            }
        }
    }
}

impl<K, V, D> DurableSet<K, V> for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Insert(key, value)).is_none()
    }

    fn remove(&self, key: K) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Remove(key)).is_some()
    }

    fn get(&self, key: K) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Get(key))
    }

    fn len(&self) -> usize {
        self.iter_snapshot().len()
    }

    fn recover(&self) {
        self.recover_tree();
    }
}

impl<K, V, D> PoolAttach for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let t = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, t.root)?;
        Ok(t)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let root = pool.attach_root_ptr::<BstNode<K, V, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(root, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover_tree();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: the walk covers everything `recover_tree`'s helping can touch.
// Child links are followed with tags stripped; every internal node's
// update word is inspected, and a non-`CLEAN` word's `Info` record is
// marked **along with every node it names** (`gp`/`p`/`l`/`new_internal`
// as whole subtrees): `help_insert` links `new_internal` — a subtree that
// is *not yet* reachable through child pointers — and `help_marked`
// dereferences `p` and its children even when the splice already
// disconnected them, so all of those must survive the sweep. A `CLEAN`
// word's record pointer is only ever *compared* (never dereferenced), so
// retired-but-unreclaimed CLEAN records are provably garbage and are left
// for the sweep. The bitmap's newly-marked result bounds the worklist:
// shared nodes enqueue their children once.
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<K, V, D> nvtraverse::PoolTrace for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        let mut work: Vec<NodePtr<K, V, D::B>> = vec![root as NodePtr<K, V, D::B>];
        while let Some(node) = work.pop() {
            if node.is_null() || !marker.mark(node as *const u8) {
                continue;
            }
            // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
            unsafe {
                // nvt-lint: begin-allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
                if (*node).leaf.load() {
                    continue; // leaves carry no links
                }
                let u = (*node).update.load();
                if u.tag() != CLEAN {
                    let op = u.ptr();
                    if !op.is_null() && marker.mark(op as *const u8) {
                        work.push((*op).gp.load());
                        work.push((*op).p.load());
                        work.push((*op).l.load());
                        work.push((*op).new_internal.load());
                    }
                }
                work.push((*node).left.load().ptr());
                work.push((*node).right.load().ptr());
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
    }
}

impl<K, V, D> Default for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D> fmt::Debug for EllenBst<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EllenBst")
            .field("len", &self.len())
            .finish()
    }
}

impl<K: Word, V: Word, D: Durability> Drop for EllenBst<K, V, D> {
    fn drop(&mut self) {
        // Quiescent teardown: free the reachable tree. Unreachable (retired)
        // nodes belong to the collector.
        Self::free_subtree(self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Izraelevitz, LinkPersist, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn smoke<D: Durability>() {
        let t: EllenBst<u64, u64, D> = EllenBst::new();
        assert!(t.is_empty());
        assert!(t.insert(5, 50));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert!(!t.insert(5, 99));
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.len(), 3);
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.get(5), None);
        assert_eq!(t.iter_snapshot(), vec![(3, 30), (8, 80)]);
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn volatile_semantics() {
        smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_semantics() {
        smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_semantics() {
        smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn link_persist_semantics() {
        smoke::<LinkPersist<Clwb>>();
    }

    #[test]
    fn ascending_and_descending_insertions() {
        let t: EllenBst<u64, u64, Volatile> = EllenBst::new();
        for k in 0..200u64 {
            assert!(t.insert(k, k));
        }
        for k in (200..400u64).rev() {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.check_consistency(false).unwrap(), 400);
        for k in 0..400u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn delete_down_to_empty_and_reuse() {
        let t: EllenBst<u64, u64, NvTraverse<Noop>> = EllenBst::new();
        for k in 0..50u64 {
            t.insert(k, k);
        }
        for k in 0..50u64 {
            assert!(t.remove(k), "remove({k})");
        }
        assert!(t.is_empty());
        assert!(t.insert(7, 70));
        assert_eq!(t.get(7), Some(70));
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn matches_model_on_random_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let t: EllenBst<u64, u64, NvTraverse<Noop>> = EllenBst::new();
        let mut model = ModelSet::new();
        for i in 0..4000u64 {
            let k = rng.random_range(0..128);
            match rng.random_range(0..3) {
                0 => assert_eq!(t.insert(k, i), model.insert(k, i), "insert({k})"),
                1 => assert_eq!(t.remove(k), model.remove(k), "remove({k})"),
                _ => assert_eq!(t.get(k), model.get(k), "get({k})"),
            }
        }
        let pairs: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(t.iter_snapshot(), pairs);
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn signed_keys_route_correctly() {
        let t: EllenBst<i64, u64, Volatile> = EllenBst::new();
        for k in [-10i64, -1, 0, 1, 10] {
            assert!(t.insert(k, 0));
        }
        let keys: Vec<i64> = t.iter_snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![-10, -1, 0, 1, 10]);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let t: EllenBst<u64, u64, NvTraverse<Clwb>> = EllenBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let base = tid * 500;
                    for k in base..base + 500 {
                        assert!(t.insert(k, k));
                    }
                    for k in (base..base + 500).step_by(2) {
                        assert!(t.remove(k));
                    }
                });
            }
        });
        assert_eq!(t.check_consistency(false).unwrap(), 1000);
    }

    #[test]
    fn concurrent_contended_stress() {
        use rand::prelude::*;
        let t: EllenBst<u64, u64, NvTraverse<Clwb>> = EllenBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(tid);
                    for _ in 0..3000 {
                        let k = rng.random_range(0..64);
                        match rng.random_range(0..10) {
                            0..=3 => {
                                t.insert(k, k);
                            }
                            4..=6 => {
                                t.remove(k);
                            }
                            _ => {
                                t.get(k);
                            }
                        }
                    }
                });
            }
        });
        t.check_consistency(false).unwrap();
    }

    #[test]
    fn recovery_completes_pending_delete() {
        // Simulate a crash between the DFLAG and the splice: flag gp by hand
        // with a fabricated DInfo, then let recovery finish the delete.
        let t: EllenBst<u64, u64, NvTraverse<Noop>> = EllenBst::new();
        for k in [10u64, 5, 15] {
            t.insert(k, k);
        }
        // Find leaf 5's gp/p via a raw walk.
        unsafe {
            let root = t.root;
            let mut gp: NodePtr<u64, u64, Noop> = std::ptr::null_mut();
            let mut p: NodePtr<u64, u64, Noop> = std::ptr::null_mut();
            let mut l = root;
            while !(*l).leaf.load() {
                gp = p;
                p = l;
                l = if EllenBst::<u64, u64, NvTraverse<Noop>>::goes_left(5, l) {
                    (*l).left.load().ptr()
                } else {
                    (*l).right.load().ptr()
                };
            }
            assert_eq!((*l).key.load(), 5);
            let op = alloc_node::<_, Noop>(Info {
                gp: PCell::new(gp),
                p: PCell::new(p),
                l: PCell::new(l),
                new_internal: PCell::new(std::ptr::null_mut()),
                pupdate: PCell::new((*p).update.load().bits()),
            });
            let dflag = MarkedPtr::new(op).with_tag(DFLAG);
            (*gp).update.store(dflag);
        }
        assert!(t.check_consistency(true).is_err(), "flag must be visible");
        t.recover();
        assert_eq!(t.get(5), None, "recovery must complete the delete");
        t.check_consistency(true).unwrap();
        assert!(t.insert(5, 55), "tree must be usable after recovery");
    }
}
