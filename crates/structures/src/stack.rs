//! A Treiber stack in traversal form — the smallest possible traversal data
//! structure (paper §3: stacks are traversal data structures; the traversal
//! is empty and the entry point is the top-of-stack anchor).

use nvtraverse::alloc::{alloc_node, free, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::PoolAttach;
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;

/// A stack node; `value` and `next` are immutable after initialization
/// (a popped node is disconnected, never relinked).
#[repr(C)]
pub struct StackNode<V: Word, B: Backend> {
    value: PCell<V, B>,
    next: PCell<MarkedPtr<StackNode<V, B>>, B>,
}

impl<V: Word, B: Backend> fmt::Debug for StackNode<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StackNode")
    }
}

/// One stack operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp<V> {
    /// Push a value.
    Push(V),
    /// Pop the most recent value.
    Pop,
}

/// A lock-free LIFO stack.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::stack::TreiberStack;
///
/// let s: TreiberStack<u64, NvTraverse<Clwb>> = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<V: Word, D: Durability> {
    top: *mut PCell<MarkedPtr<StackNode<V, D::B>>, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<V: Word, D: Durability> Send for TreiberStack<V, D> {}
// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<V: Word, D: Durability> Sync for TreiberStack<V, D> {}

impl<V, D> TreiberStack<V, D>
where
    V: Word,
    D: Durability,
{
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty stack retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let top = alloc_node::<_, D::B>(PCell::new(MarkedPtr::null()));
        D::persist_new_node(top as *const u8, 8);
        D::before_return();
        TreiberStack {
            top,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// Pushes `value`.
    pub fn push(&self, value: V) {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        let _ = run_operation(self, &guard, StackOp::Push(value));
    }

    /// Pops the most recently pushed value.
    pub fn pop(&self) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, StackOp::Pop)
    }

    /// Quiescent: number of values.
    pub fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.top).load().ptr();
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load().ptr();
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
        n
    }

    /// Quiescent: whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        // nvt-lint: allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
        unsafe { (*self.top).load().is_null() }
    }

    /// Post-crash recovery — deliberately (almost) a no-op, and *correctly*
    /// so. The stack's durable core is exactly the `top` word plus the chain
    /// below it, and both are already consistent at every instant:
    ///
    /// * node `value`/`next` fields are immutable and persisted (flushed +
    ///   fenced by `persist_new_node`) **before** the publishing CAS, so the
    ///   durable `top` can only ever point at a fully persisted chain;
    /// * every successful push/pop CAS on `top` is flushed by Protocol 2
    ///   before the operation returns, so an acked operation is durable;
    /// * popped nodes are disconnected and never relinked — a stack has no
    ///   logically-deleted (marked) state, hence no `disconnect(root)` pass
    ///   (Supplement 1 degenerates to nothing);
    /// * there is no volatile auxiliary structure to rebuild (contrast the
    ///   skiplist's towers or the queue's tail shortcut).
    ///
    /// The one deferred obligation is the link-and-persist policy's dirty
    /// bit: a crash can leave the durable `top` word dirty-tagged. The
    /// critical re-read below clears and flushes it eagerly, instead of
    /// lazily on the first post-restart operation — so recovery still
    /// upholds the §2 contract that after it returns, no pre-crash write is
    /// left in a half-published state.
    pub fn recover(&self) {
        if !D::DURABLE {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        let _ = D::c_load_link(unsafe { &*self.top });
        D::before_return();
    }

    /// Quiescent: the stacked values, top first, without popping
    /// (crash-test oracles audit the surviving contents non-destructively).
    pub fn iter_snapshot(&self) -> Vec<V> {
        let mut out = Vec::new();
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*self.top).load().ptr();
            while !cur.is_null() {
                out.push((*cur).value.load());
                cur = (*cur).next.load().ptr();
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
        out
    }

    /// The top-of-stack cell (for pool root registration below).
    fn top_ptr(&self) -> *mut PCell<MarkedPtr<StackNode<V, D::B>>, D::B> {
        self.top
    }

    /// Rebuilds a stack handle around an existing top cell — the attach half
    /// of the pool lifecycle.
    ///
    /// # Safety
    ///
    /// `top` must be the top cell of a stack built with the *same* `V`/`D`
    /// parameters, reachable and quiescent, and the caller must not drop two
    /// handles to the same stack (the pooled lifecycle never drops — see
    /// `nvtraverse::PooledHandle`).
    unsafe fn attach_at(
        top: *mut PCell<MarkedPtr<StackNode<V, D::B>>, D::B>,
        collector: Collector,
    ) -> Self {
        TreiberStack {
            top,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }
}

impl<V, D> TraversalOps for TreiberStack<V, D>
where
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = StackOp<V>;
    type Output = Option<V>;
    type Entry = ();
    /// The window is the observed top word.
    type Window = MarkedPtr<StackNode<V, D::B>>;

    fn find_entry(&self, _guard: &Guard, _input: Self::Input) {}

    fn traverse(&self, _guard: &Guard, _entry: (), _input: Self::Input) -> Self::Window {
        // The "journey" is empty: the destination is the top word itself.
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        D::t_load_link(unsafe { &*self.top })
    }

    fn collect_persist_set(&self, _w: &Self::Window, out: &mut PersistSet) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        out.push(unsafe { (*self.top).addr() });
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        let top = unsafe { &*self.top };
        match input {
            StackOp::Push(value) => {
                let node = alloc_node::<_, D::B>(StackNode {
                    value: PCell::new(value),
                    next: PCell::new(w),
                });
                D::persist_new_node(node as *const u8, std::mem::size_of::<StackNode<V, D::B>>());
                match D::c_cas_link(top, w, MarkedPtr::new(node)) {
                    Ok(()) => Critical::Done(None),
                    Err(_) => {
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { free(node) };
                        Critical::Restart
                    }
                }
            }
            StackOp::Pop => {
                if w.is_null() {
                    return Critical::Done(None);
                }
                let node = w.ptr();
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let next = D::load_fixed(unsafe { &(*node).next });
                match D::c_cas_link(top, w, next) {
                    Ok(()) => {
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        let value = D::load_fixed(unsafe { &(*node).value });
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { guard.retire(node) };
                        Critical::Done(Some(value))
                    }
                    Err(_) => Critical::Restart,
                }
            }
        }
    }
}

impl<V, D> PoolAttach for TreiberStack<V, D>
where
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let s = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, s.top_ptr())?;
        Ok(s)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let top = pool.attach_root_ptr::<PCell<MarkedPtr<StackNode<V, D::B>>, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(top, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: the durable state is exactly the top cell plus the immutable
// chain below it — the same fact that makes `recover` a near-no-op. Popped
// nodes are disconnected, never relinked, and a stack has no marked state,
// so the top chain is the complete reachable set.
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<V, D> nvtraverse::PoolTrace for TreiberStack<V, D>
where
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        if !marker.mark(root) {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let top = root as *mut PCell<MarkedPtr<StackNode<V, D::B>>, D::B>;
            // `.ptr()` strips the link-and-persist dirty bit a crash can
            // leave on the top word.
            // nvt-lint: allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
            crate::trace_chain(marker, (*top).load().ptr(), |n| (*n).next.load().ptr());
        }
    }
}

impl<V: Word, D: Durability> Default for TreiberStack<V, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Word, D: Durability> fmt::Debug for TreiberStack<V, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack")
            .field("len", &self.len())
            .finish()
    }
}

impl<V: Word, D: Durability> Drop for TreiberStack<V, D> {
    fn drop(&mut self) {
        // Poisoned links (unrecovered crash) end the walk; the tail leaks.
        let teardown = |bits: u64| {
            if bits == nvtraverse_pmem::POISON {
                std::ptr::null_mut()
            } else {
                MarkedPtr::<StackNode<V, D::B>>::from_bits_raw(bits).ptr()
            }
        };
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
            let mut cur = teardown((*self.top).peek_bits());
            while !cur.is_null() {
                let nxt = teardown((*cur).next.peek_bits());
                // nvt-lint: end-allow(raw-pcell-access)
                free(cur);
                cur = nxt;
            }
            free(self.top);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::policy::{Izraelevitz, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn lifo_smoke<D: Durability>() {
        let s: TreiberStack<u64, D> = TreiberStack::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        for v in 0..50u64 {
            s.push(v);
        }
        assert_eq!(s.len(), 50);
        for v in (0..50u64).rev() {
            assert_eq!(s.pop(), Some(v), "LIFO order violated");
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn volatile_lifo() {
        lifo_smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_lifo() {
        lifo_smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_lifo() {
        lifo_smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn push_pop_interleaving() {
        let s: TreiberStack<u64, NvTraverse<Noop>> = TreiberStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn concurrent_push_pop_conserves_items() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const THREADS: u64 = 4;
        const PER: u64 = 1500;
        let s: TreiberStack<u64, NvTraverse<Clwb>> = TreiberStack::new();
        let popped = Mutex::new(HashSet::new());
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                let popped = &popped;
                sc.spawn(move || {
                    let mut local = HashSet::new();
                    for i in 0..PER {
                        s.push(t * PER + i);
                        if i % 2 == 0 {
                            if let Some(v) = s.pop() {
                                local.insert(v);
                            }
                        }
                    }
                    popped.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = popped.into_inner().unwrap();
        while let Some(v) = s.pop() {
            assert!(all.insert(v), "duplicate value {v}");
        }
        assert_eq!(all.len(), (THREADS * PER) as usize, "lost items");
    }
}
