//! A Michael–Scott queue in traversal form.
//!
//! The paper (§3) notes that traversal data structures capture "not just set
//! data structures, but also queues, stacks, priority queues…" — a queue is
//! a degenerate core tree (a path) with *two* entry points, the head and the
//! tail (§3: "data structures with several entry points, like a queue with a
//! head and a tail, can be traversal data structures as well").
//!
//! Durability follows the same split the paper's DurableQueue ancestor
//! (Friedman et al., PPoPP 2018) uses:
//!
//! * the node chain and the `head` pointer are the persistent core — node
//!   contents are persisted before linking, the link CAS and the head-swing
//!   CAS go through Protocol 2;
//! * the `tail` pointer is a volatile shortcut (an auxiliary entry point):
//!   it is never flushed, and recovery recomputes it by walking from `head`
//!   to the end of the chain.

use nvtraverse::alloc::{alloc_node, free, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::PoolAttach;
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{Backend, PCell, Word};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;

/// A queue node; `value` is immutable, `next` is the persistent link.
#[repr(C)]
pub struct QueueNode<V: Word, B: Backend> {
    value: PCell<V, B>,
    next: PCell<MarkedPtr<QueueNode<V, B>>, B>,
}

impl<V: Word, B: Backend> fmt::Debug for QueueNode<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("QueueNode")
    }
}

type NodePtr<V, B> = *mut QueueNode<V, B>;

/// The two persistent-root cells plus the volatile tail shortcut.
#[repr(C)]
struct Anchor<V: Word, B: Backend> {
    /// Persistent: points at the current sentinel.
    head: PCell<MarkedPtr<QueueNode<V, B>>, B>,
    /// Volatile shortcut: at or behind the real last node; never flushed.
    tail: PCell<MarkedPtr<QueueNode<V, B>>, B>,
}

/// One queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp<V> {
    /// Append a value at the tail.
    Enqueue(V),
    /// Remove the value at the head.
    Dequeue,
}

/// The traversal window for a queue operation.
#[derive(Debug)]
pub struct QueueWindow<V: Word, B: Backend> {
    /// Enqueue: the last node; dequeue: the current sentinel.
    node: NodePtr<V, B>,
    /// The word read from `node.next` during the traversal.
    next: MarkedPtr<QueueNode<V, B>>,
    /// Whether this window was built for an enqueue.
    enq: bool,
}

/// A lock-free multi-producer multi-consumer FIFO queue.
///
/// # Example
///
/// ```
/// use nvtraverse::policy::NvTraverse;
/// use nvtraverse_pmem::Clwb;
/// use nvtraverse_structures::queue::MsQueue;
///
/// let q: MsQueue<u64, NvTraverse<Clwb>> = MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct MsQueue<V: Word, D: Durability> {
    anchor: *mut Anchor<V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from — its own pool for a
    /// pooled instance, the volatile heap otherwise. Captured at
    /// construction (from the enclosing allocation scope) and re-entered
    /// around every allocating operation, so concurrent structures in
    /// different pools allocate from the right files.
    ctx: PoolCtx,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<V: Word, D: Durability> Send for MsQueue<V, D> {}
// SAFETY: all shared mutation goes through atomics/PCells; raw node pointers are only dereferenced under EBR guards.
unsafe impl<V: Word, D: Durability> Sync for MsQueue<V, D> {}

impl<V, D> MsQueue<V, D>
where
    V: Word,
    D: Durability,
{
    /// Creates an empty queue (one sentinel node).
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty queue retiring into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let sentinel = alloc_node::<_, D::B>(QueueNode {
            value: PCell::new(V::from_bits(0)),
            next: PCell::new(MarkedPtr::null()),
        });
        let anchor = alloc_node::<_, D::B>(Anchor {
            head: PCell::new(MarkedPtr::new(sentinel)),
            tail: PCell::new(MarkedPtr::new(sentinel)),
        });
        // The tail shortcut is volatile by design (recomputed by `recover`);
        // tell any vet observer so it is exempt from durability rules.
        // SAFETY: `anchor` was just allocated and is exclusively ours.
        nvtraverse_pmem::sim::current_mark_volatile_range(
            unsafe { (*anchor).tail.addr() as usize },
            8,
        );
        D::persist_new_node(sentinel as *const u8, std::mem::size_of::<QueueNode<V, D::B>>());
        D::persist_new_node(anchor as *const u8, std::mem::size_of::<Anchor<V, D::B>>());
        D::before_return();
        MsQueue {
            anchor,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, value: V) {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        let _ = run_operation(self, &guard, QueueOp::Enqueue(value));
    }

    /// Removes and returns the oldest value, or `None` when empty.
    pub fn dequeue(&self) -> Option<V> {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, QueueOp::Dequeue)
    }

    /// Quiescent: number of queued values.
    pub fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*(*self.anchor).head.load().ptr()).next.load().ptr();
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load().ptr();
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
        n
    }

    /// Quiescent: whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Post-crash recovery: recompute the volatile tail shortcut by walking
    /// the persistent chain from `head` (no marked nodes exist in a queue).
    ///
    /// The walk reads every link through the policy's *critical* load, which
    /// flushes the word (and clears link-and-persist dirty bits): a node
    /// that a crashed enqueue managed to link — whether or not its link CAS
    /// had been flushed at the kill — is thereby durably **adopted** before
    /// any post-restart operation builds on it, and the closing fence makes
    /// the whole chain's reachability persistent at once.
    pub fn recover(&self) {
        if !D::DURABLE {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let mut last = D::c_load_link(&(*self.anchor).head).ptr();
            loop {
                let next = D::c_load_link(&(*last).next);
                if next.is_null() {
                    break;
                }
                last = next.ptr();
            }
            // Volatile store: the shortcut needs no flush.
            // nvt-lint: allow(raw-pcell-access): single-threaded recovery reads raw bits (marks, flags, poison) by design
            (*self.anchor).tail.store(MarkedPtr::new(last));
        }
        D::before_return();
    }

    /// Quiescent: the queued values, oldest first, without dequeuing
    /// (crash-test oracles audit the surviving contents non-destructively).
    pub fn iter_snapshot(&self) -> Vec<V> {
        let mut out = Vec::new();
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): quiescent inspection walk — no concurrent mutators, no durability obligations
            let mut cur = (*(*self.anchor).head.load().ptr()).next.load().ptr();
            while !cur.is_null() {
                out.push((*cur).value.load());
                cur = (*cur).next.load().ptr();
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
        out
    }

    /// The anchor block (for pool root registration below).
    fn anchor_ptr(&self) -> *mut Anchor<V, D::B> {
        self.anchor
    }

    /// Rebuilds a queue handle around an existing anchor — the attach half
    /// of the pool lifecycle. The caller must run [`MsQueue::recover`]
    /// before any operation: the persisted tail shortcut is stale until the
    /// head walk recomputes it.
    ///
    /// # Safety
    ///
    /// `anchor` must be the anchor of a queue built with the *same* `V`/`D`
    /// parameters, reachable and quiescent, and the caller must not drop two
    /// handles to the same queue (the pooled lifecycle never drops — see
    /// `nvtraverse::PooledHandle`).
    unsafe fn attach_at(anchor: *mut Anchor<V, D::B>, collector: Collector) -> Self {
        MsQueue {
            anchor,
            collector,
            ctx: PoolCtx::current(),
            _marker: PhantomData,
        }
    }

    /// Quiescent: drains into a vector (test helper).
    pub fn drain_to_vec(&self) -> Vec<V> {
        let mut out = Vec::new();
        while let Some(v) = self.dequeue() {
            out.push(v);
        }
        out
    }
}

impl<V, D> TraversalOps for MsQueue<V, D>
where
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = QueueOp<V>;
    type Output = Option<V>;
    type Entry = NodePtr<V, D::B>;
    type Window = QueueWindow<V, D::B>;

    fn find_entry(&self, _guard: &Guard, input: Self::Input) -> Self::Entry {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            match input {
                // The tail shortcut is the auxiliary entry point; it may lag.
                // nvt-lint: begin-allow(raw-pcell-access): volatile tail shortcut — never flushed, recomputed on recovery
                QueueOp::Enqueue(_) => (*self.anchor).tail.load().ptr(),
                QueueOp::Dequeue => (*self.anchor).head.load().ptr(),
                // nvt-lint: end-allow(raw-pcell-access)
            }
        }
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            match input {
                QueueOp::Enqueue(_) => {
                    // Walk from the shortcut to the true last node.
                    let mut node = entry;
                    let mut next = D::t_load_link(&(*node).next);
                    while !next.is_null() {
                        node = next.ptr();
                        next = D::t_load_link(&(*node).next);
                    }
                    QueueWindow { node, next, enq: true }
                }
                QueueOp::Dequeue => {
                    let node = entry;
                    let next = D::t_load_link(&(*node).next);
                    QueueWindow { node, next, enq: false }
                }
            }
        }
    }

    fn collect_persist_set(&self, w: &Self::Window, out: &mut PersistSet) {
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // Dequeue windows hang off the head root cell. An enqueue's
            // window (the last node) is instead reachable through persisted
            // links — every link CAS was flushed when installed — so the
            // head flush would be pure overhead and is skipped (Lemma 4.1).
            if !w.enq {
                out.set_parent((*self.anchor).head.addr());
            }
            out.push((*w.node).next.addr());
        }
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        match input {
            QueueOp::Enqueue(value) => {
                let node = alloc_node::<_, D::B>(QueueNode {
                    value: PCell::new(value),
                    next: PCell::new(MarkedPtr::null()),
                });
                D::persist_new_node(node as *const u8, std::mem::size_of::<QueueNode<V, D::B>>());
                match D::c_cas_link(
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    unsafe { &(*w.node).next },
                    MarkedPtr::null(),
                    MarkedPtr::new(node),
                ) {
                    Ok(()) => {
                        // Advance the volatile shortcut (best effort).
                        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                        unsafe {
                            // nvt-lint: begin-allow(raw-pcell-access): volatile tail shortcut — never flushed, recomputed on recovery
                            let t = (*self.anchor).tail.load();
                            let _ = (*self.anchor)
                                .tail
                                .compare_exchange(t, MarkedPtr::new(node));
                                // nvt-lint: end-allow(raw-pcell-access)
                        }
                        Critical::Done(None)
                    }
                    Err(_) => {
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { free(node) };
                        Critical::Restart
                    }
                }
            }
            QueueOp::Dequeue => {
                if w.next.is_null() {
                    return Critical::Done(None);
                }
                let first = w.next.ptr();
                // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                let value = D::load_fixed(unsafe { &(*first).value });
                match D::c_cas_link(
                    // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
                    unsafe { &(*self.anchor).head },
                    MarkedPtr::new(w.node),
                    MarkedPtr::new(first),
                ) {
                    Ok(()) => {
                        // SAFETY: the node is unlinked (no new traversal can reach it); EBR defers the actual free until all pre-retire guards drop.
                        unsafe { guard.retire(w.node) };
                        Critical::Done(Some(value))
                    }
                    Err(_) => Critical::Restart,
                }
            }
        }
    }
}

impl<V, D> PoolAttach for MsQueue<V, D>
where
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let q = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, q.anchor_ptr())?;
        Ok(q)
    }

    // SAFETY: see `TraversalOps::attach_to_pool` — the caller guarantees the pool was created by this structure type under `name` and is quiescent.
    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let anchor = pool.attach_root_ptr::<Anchor<V, D::B>>(name)?;
        // Entered so `attach_at`'s context snapshot captures this pool.
        let _scope = PoolCtx::of(pool).enter();
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        Some(unsafe { Self::attach_at(anchor, Collector::new()) })
    }

    fn recover_attached(&self) {
        self.recover();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: mirrors `recover`'s adoption walk — the anchor block, then the
// node chain from the durable `head` pointer to the end. The persisted
// `tail` word is a volatile shortcut recovery recomputes without reading
// (it can trail arbitrarily far behind, even pointing at long-dequeued
// nodes), so the trace ignores it; every node recovery or any later
// operation can reach is on the head chain.
// SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
unsafe impl<V, D> nvtraverse::PoolTrace for MsQueue<V, D>
where
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        if !marker.mark(root) {
            return;
        }
        // SAFETY: recovery/attach runs single-threaded on a quiescent structure; every pointer read comes from the durable heap being rebuilt.
        unsafe {
            let anchor = root as *mut Anchor<V, D::B>;
            // nvt-lint: begin-allow(raw-pcell-access): GC tracer follows raw pointers on a quiescent heap
            crate::trace_chain(marker, (*anchor).head.load().ptr(), |n| {
                (*n).next.load().ptr()
                // nvt-lint: end-allow(raw-pcell-access)
            });
        }
    }
}

impl<V: Word, D: Durability> Default for MsQueue<V, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Word, D: Durability> fmt::Debug for MsQueue<V, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue").field("len", &self.len()).finish()
    }
}

impl<V: Word, D: Durability> Drop for MsQueue<V, D> {
    fn drop(&mut self) {
        // Poisoned links (unrecovered crash) end the walk; the tail leaks.
        let teardown = |bits: u64| {
            if bits == nvtraverse_pmem::POISON {
                std::ptr::null_mut()
            } else {
                MarkedPtr::<QueueNode<V, D::B>>::from_bits_raw(bits).ptr()
            }
        };
        // SAFETY: the pointer came from a live link read under this op's EBR guard; retired nodes are not freed until every guard from before the retire drops.
        unsafe {
            // nvt-lint: begin-allow(raw-pcell-access): teardown/drop owns the structure exclusively; nothing durable happens after it
            let mut cur = teardown((*self.anchor).head.peek_bits());
            while !cur.is_null() {
                let nxt = teardown((*cur).next.peek_bits());
                // nvt-lint: end-allow(raw-pcell-access)
                free(cur);
                cur = nxt;
            }
            free(self.anchor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::policy::{Izraelevitz, NvTraverse, Volatile};
    use nvtraverse_pmem::{Clwb, Noop};

    fn fifo_smoke<D: Durability>() {
        let q: MsQueue<u64, D> = MsQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        for v in 0..100u64 {
            q.enqueue(v);
        }
        assert_eq!(q.len(), 100);
        for v in 0..100u64 {
            assert_eq!(q.dequeue(), Some(v), "FIFO order violated");
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn volatile_fifo() {
        fifo_smoke::<Volatile>();
    }

    #[test]
    fn nvtraverse_fifo() {
        fifo_smoke::<NvTraverse<Clwb>>();
    }

    #[test]
    fn izraelevitz_fifo() {
        fifo_smoke::<Izraelevitz<Clwb>>();
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q: MsQueue<u64, NvTraverse<Noop>> = MsQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(4));
    }

    #[test]
    fn concurrent_producers_consumers_preserve_multiset() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const PRODUCERS: u64 = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 2000;
        let q: MsQueue<u64, NvTraverse<Clwb>> = MsQueue::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER {
                        q.enqueue(p * PER + i);
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut misses = 0;
                    while local.len() < (PRODUCERS * PER) as usize && misses < 1_000_000 {
                        match q.dequeue() {
                            Some(v) => local.push(v),
                            None => misses += 1,
                        }
                        if seen.lock().unwrap().len() + local.len()
                            >= (PRODUCERS * PER) as usize
                        {
                            break;
                        }
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        // Drain leftovers.
        while let Some(v) = q.dequeue() {
            seen.lock().unwrap().insert(v);
        }
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), (PRODUCERS * PER) as usize, "lost or duplicated items");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let q: MsQueue<u64, NvTraverse<Clwb>> = MsQueue::new();
        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000 {
                        q.enqueue((p << 32) | i);
                    }
                });
            }
        });
        let all = q.drain_to_vec();
        for p in 0..2u64 {
            let mine: Vec<u64> = all
                .iter()
                .copied()
                .filter(|v| v >> 32 == p)
                .collect();
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "producer {p}'s items out of order"
            );
        }
    }

    #[test]
    fn recovery_rebuilds_tail_shortcut() {
        let q: MsQueue<u64, NvTraverse<Noop>> = MsQueue::new();
        for v in 0..10u64 {
            q.enqueue(v);
        }
        // Wreck the volatile tail (points back at the sentinel).
        unsafe {
            let h = (*q.anchor).head.load();
            (*q.anchor).tail.store(h);
        }
        q.recover();
        q.enqueue(10);
        let all = q.drain_to_vec();
        assert_eq!(all, (0..=10u64).collect::<Vec<_>>());
    }
}
