//! SOFT-style sorted linked list: minimal-flush durability via per-node
//! validity words and **volatile links**.
//!
//! This is the repository's rendition of Zuriel et al., "Efficient Lock-Free
//! Durable Sets" (OOPSLA 2019) — the related-work system that goes one step
//! past NVTraverse: where NVTraverse flushes the destination (the critical
//! section's links), SOFT flushes *nothing structural at all*. Every node
//! carries a persistent validity header (sealed on insert, tombstoned on
//! remove); links are ordinary volatile words; and recovery rebuilds the
//! entire list by collecting the sealed nodes and re-linking them in key
//! order. The per-operation persistence cost is the floor the hardware
//! allows: **one flush + one fence** per update, **zero flushes** per
//! lookup (pinned by `tests/persist_bounds.rs`).
//!
//! # Node layout and the validity protocol
//!
//! A node is six 64-bit words; the first five are the *persistent header*,
//! the last is the volatile link:
//!
//! ```text
//! [ vstart | key | value | owner | vend ]  [ next ]
//!   ^--------- flushed once ----------^    never flushed
//! ```
//!
//! * insert: initialize the header with `vstart = vend = SEAL`, flush the
//!   header (one cache line on the volatile path — the node is 64-aligned),
//!   link with a plain CAS, fence before returning. The insert is durably
//!   linearized at that fence.
//! * remove: CAS `vstart` from `SEAL` to `TOMB` and flush it (the durable
//!   linearization point, made durable by the closing fence), then unlink
//!   with plain volatile CASes exactly like Harris's list.
//! * `vend` seals the far end of the header so a torn header (crash while
//!   the flush was in flight) can never be mistaken for a valid node; the
//!   `owner` word names the owning list (its head sentinel's address), so
//!   recovery in a pool shared by several structures attributes each node
//!   to the right one.
//!
//! # Recovery-rebuild contract
//!
//! The list keeps a volatile *registry* of its allocated nodes (maintained
//! at allocate/retire time; reconstructed from the pool's allocated-block
//! inventory on attach). [`SoftList::recover_soft`] scans the registry,
//! keeps exactly the nodes whose header survives as
//! `vstart == vend == SEAL`, sorts them by key, and rewrites the whole
//! chain with plain stores. A node whose seal never became durable was an
//! in-flight insert (its operation had not fenced, hence had not returned):
//! dropping it is durably linearizable. A sealed node that was never linked
//! (crash between flush and the link CAS) is *kept* — which is also
//! correct, because its insert had not returned either, and resurrecting an
//! in-flight insert is one of the two allowed outcomes. The same rule is
//! why the recovery GC's tracer must keep valid-but-unlinked nodes (see
//! `PoolTrace` below).
//!
//! # Concurrency caveat
//!
//! Like the original SOFT, readers here do not help persist concurrently
//! in-flight updates: an operation's effect is durable only once *its own*
//! closing fence ran. The exhaustive crash sweep (`tests/crash_soft.rs`)
//! drives sequential histories, where the gap is unobservable; a
//! multi-threaded deployment that needs strict durable linearizability for
//! dependent readers would add SOFT's `pValid` helping bit.

use nvtraverse::alloc::{clear_pool_full, free, pool_full_seen, try_alloc_node, PoolCtx};
use nvtraverse::marked::MarkedPtr;
use nvtraverse::ops::{run_operation, Critical, PersistSet, TraversalOps};
use nvtraverse::policy::Durability;
use nvtraverse::set::{DurableSet, PoolAttach, SetOp};
use nvtraverse_ebr::{Collector, Guard};
use nvtraverse_pmem::{heap, Backend, PCell, Word, POISON};
use nvtraverse_pool::Pool;
use std::fmt;
use std::io;
use std::marker::PhantomData;
use std::sync::Mutex;

/// `vstart`/`vend` value of a live (inserted) node. Distinctive bit pattern:
/// a stray word is effectively never mistaken for a seal.
pub(crate) const SEAL: u64 = 0x5EA1_5EA1_5EA1_5EA1;
/// `vstart` value of a durably removed node.
pub(crate) const TOMB: u64 = 0x70B5_70B5_70B5_70B5;

/// The persistent header prefix of a [`SoftNode`]: `vstart`, `key`,
/// `value`, `owner`, `vend` — everything **except** the volatile link.
pub(crate) const PERSIST_HDR: usize = 5 * 8;

/// One SOFT node. Field order is the layout contract documented in the
/// [module docs](self): five persistent header words, then the volatile
/// link. Exposed (with private fields) because it appears in the
/// [`TraversalOps`] associated types; user code never constructs nodes.
#[repr(C)]
pub struct SoftNode<K: Word, V: Word, B: Backend> {
    /// Validity word: `SEAL` while the node is live, `TOMB` once removed.
    pub(crate) vstart: PCell<u64, B>,
    pub(crate) key: PCell<K, B>,
    pub(crate) value: PCell<V, B>,
    /// Address of the owning list's head sentinel (0 for sentinels):
    /// attributes the node to its structure when a pool holds several.
    pub(crate) owner: PCell<u64, B>,
    /// Far-end seal: proves the header flush was not torn.
    pub(crate) vend: PCell<u64, B>,
    /// Volatile link: never flushed, rebuilt by recovery.
    pub(crate) next: PCell<MarkedPtr<SoftNode<K, V, B>>, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for SoftNode<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftNode").finish_non_exhaustive()
    }
}

/// Cache-line-aligned box for the volatile allocation path: a 64-aligned
/// node puts the 40-byte persistent header in exactly one cache line, so
/// the insert's header flush is deterministically one flush under the
/// counting backend (the pool path provides 16-byte alignment and its own
/// backend). `repr(C)` wrapper: a `*mut AlignedNode` is a `*mut SoftNode`.
#[repr(C, align(64))]
struct AlignedNode<K: Word, V: Word, B: Backend>(SoftNode<K, V, B>);

type NodePtr<K, V, B> = *mut SoftNode<K, V, B>;

/// The traversal window: same shape as the Harris list's (left, the word
/// read from `left.next`, right), minus the parent — SOFT has no
/// `ensureReachable` to feed.
pub struct SoftWindow<K: Word, V: Word, B: Backend> {
    left: NodePtr<K, V, B>,
    left_succ: MarkedPtr<SoftNode<K, V, B>>,
    right: NodePtr<K, V, B>,
}

impl<K: Word, V: Word, B: Backend> fmt::Debug for SoftWindow<K, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftWindow")
            .field("left", &self.left)
            .field("right", &self.right)
            .finish()
    }
}

/// SOFT sorted linked list, parameterized by durability policy.
///
/// Intended for [`Soft<B>`](nvtraverse::policy::Soft) (and the volatile
/// baseline); see the [module docs](self) for the protocol. All operations
/// are lock-free; recovery and the snapshot/consistency helpers are
/// quiescent.
pub struct SoftList<K: Word, V: Word, D: Durability> {
    head: NodePtr<K, V, D::B>,
    collector: Collector,
    /// Which heap this structure's nodes come from (see `HarrisList::ctx`).
    ctx: PoolCtx,
    /// Live-node inventory for the recovery rebuild: every node currently
    /// allocated to this list (pushed at allocation, dropped at
    /// retire/free; rebuilt from the pool's block inventory on attach).
    /// Stored as addresses: raw pointers are not `Send`.
    registry: Mutex<Vec<usize>>,
    /// `head as u64` — the value written into every node's `owner` word.
    owner_tag: u64,
    _marker: PhantomData<fn() -> D>,
}

// SAFETY: same argument as `HarrisList` — the raw pointers are only
// dereferenced through the lock-free protocol or quiescently; the registry
// is mutex-protected.
unsafe impl<K: Word, V: Word, D: Durability> Send for SoftList<K, V, D> {}
unsafe impl<K: Word, V: Word, D: Durability> Sync for SoftList<K, V, D> {}

impl<K, V, D> SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    /// Creates an empty list (its own collector).
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty list that retires nodes into `collector`.
    pub fn with_collector(collector: Collector) -> Self {
        let head = Self::alloc_soft(SoftNode {
            vstart: PCell::new(0), // sentinel: never a resurrection candidate
            key: PCell::new(K::from_bits(0)),
            value: PCell::new(V::from_bits(0)),
            owner: PCell::new(0),
            vend: PCell::new(0),
            next: PCell::new(MarkedPtr::null()),
        })
        .expect("persistent pool exhausted while allocating list head");
        // Persist the empty list so it survives a crash at time zero.
        D::persist_new_node(head as *const u8, PERSIST_HDR);
        D::before_return();
        SoftList {
            head,
            collector,
            ctx: PoolCtx::current(),
            registry: Mutex::new(Vec::new()),
            owner_tag: head as u64,
            _marker: PhantomData,
        }
    }

    /// The collector nodes are retired into.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The head sentinel (for pool root registration by this crate).
    pub(crate) fn head_ptr(&self) -> NodePtr<K, V, D::B> {
        self.head
    }

    /// Rebuilds a list handle around an existing head sentinel with an
    /// **empty registry** — the attach half of the pool lifecycle. The
    /// caller must repopulate the registry (directly from the pool's block
    /// inventory, or via the hash table's shared distribution pass) before
    /// recovery.
    ///
    /// # Safety
    ///
    /// `head` must be the head sentinel of a SOFT list built with the same
    /// `K`/`V`/`D` parameters, reachable and quiescent, and the caller must
    /// not create two dropping handles to the same list.
    pub(crate) unsafe fn attach_at(head: NodePtr<K, V, D::B>, collector: Collector) -> Self {
        SoftList {
            head,
            collector,
            ctx: PoolCtx::current(),
            registry: Mutex::new(Vec::new()),
            owner_tag: head as u64,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn key_of(node: NodePtr<K, V, D::B>) -> K {
        debug_assert!(!node.is_null());
        D::load_fixed(unsafe { &(*node).key })
    }
}

// Allocation plumbing, kept free of the `K: Ord` bound so `Drop` (which
// must match the struct's own bounds) can reach it.
impl<K: Word, V: Word, D: Durability> SoftList<K, V, D> {
    /// Allocates a node: from the entered pool context when one is active
    /// (the pool registers the node's words with any simulator itself), or
    /// as a cache-line-aligned `Box` on the volatile path — registering
    /// only the node's own words with the simulator, never the alignment
    /// padding (a registration over padding would dangle after free).
    fn alloc_soft(node: SoftNode<K, V, D::B>) -> Option<NodePtr<K, V, D::B>> {
        if PoolCtx::current().is_pooled() {
            try_alloc_node::<_, D::B>(node)
        } else {
            let p = Box::into_raw(Box::new(AlignedNode(node))) as NodePtr<K, V, D::B>;
            if D::B::SIM {
                nvtraverse_pmem::sim::current_register_range(
                    p as usize,
                    std::mem::size_of::<SoftNode<K, V, D::B>>(),
                );
            }
            Some(p)
        }
    }

    /// Frees a node immediately (never-published or teardown path),
    /// routing through the layout it was allocated with: pool blocks as
    /// `SoftNode`, volatile boxes as the 64-aligned wrapper.
    unsafe fn free_soft(p: NodePtr<K, V, D::B>) {
        if heap::owner_of(p as *const u8).is_some() {
            unsafe { free(p) };
        } else {
            unsafe { free(p as *mut AlignedNode<K, V, D::B>) };
        }
    }

    /// Unregisters `p` and retires it into the collector (same layout
    /// dispatch as [`Self::free_soft`]).
    unsafe fn retire_soft(&self, guard: &Guard, p: NodePtr<K, V, D::B>) {
        self.unregister(p);
        if heap::owner_of(p as *const u8).is_some() {
            unsafe { guard.retire(p) };
        } else {
            unsafe { guard.retire(p as *mut AlignedNode<K, V, D::B>) };
        }
    }

    pub(crate) fn register(&self, p: NodePtr<K, V, D::B>) {
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(p as usize);
    }

    fn unregister(&self, p: NodePtr<K, V, D::B>) {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = reg.iter().position(|&a| a == p as usize) {
            reg.swap_remove(i);
        }
    }
}

impl<K, V, D> SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    #[inline]
    fn word_of(node: NodePtr<K, V, D::B>) -> MarkedPtr<SoftNode<K, V, D::B>> {
        if node.is_null() {
            MarkedPtr::null()
        } else {
            MarkedPtr::new(node)
        }
    }

    /// Physically disconnects the marked chain between `left` and `right`
    /// (volatile CASes; retired nodes leave the registry). Returns `false`
    /// if the caller must re-traverse.
    fn trim(&self, guard: &Guard, w: &SoftWindow<K, V, D::B>) -> bool {
        if w.left_succ.ptr() == w.right {
            return true;
        }
        let left_next = unsafe { &(*w.left).next };
        match D::c_cas_link(left_next, w.left_succ, Self::word_of(w.right)) {
            Ok(()) => {
                let mut cur = w.left_succ.ptr();
                while !cur.is_null() && cur != w.right {
                    let nxt = unsafe { (*cur).next.load() };
                    debug_assert!(nxt.is_marked(), "trimmed an unmarked node");
                    unsafe { self.retire_soft(guard, cur) };
                    cur = nxt.ptr();
                }
                if !w.right.is_null() {
                    let rn = D::c_load_link(unsafe { &(*w.right).next });
                    if rn.is_marked() {
                        return false;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    fn quiescent_len(&self) -> usize {
        let mut n = 0;
        unsafe {
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if !nw.is_marked() {
                    n += 1;
                }
                cur = nw.ptr();
            }
        }
        n
    }

    /// Quiescent: collects the unmarked `(key, value)` pairs in list order.
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        unsafe {
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if !nw.is_marked() {
                    out.push(((*cur).key.load(), (*cur).value.load()));
                }
                cur = nw.ptr();
            }
        }
        out
    }

    /// Quiescent: verifies structural invariants, returning the number of
    /// live (unmarked) nodes.
    ///
    /// # Errors
    ///
    /// Describes the violation: unsorted keys, a reachable unmarked node
    /// that is not sealed, or (when `allow_marked` is false, e.g. right
    /// after recovery) a reachable marked node.
    pub fn check_consistency(&self, allow_marked: bool) -> Result<usize, String> {
        let mut live = 0;
        let mut last_key: Option<K> = None;
        unsafe {
            let mut cur = (*self.head).next.load().ptr();
            while !cur.is_null() {
                let nw = (*cur).next.load();
                if nw.is_marked() {
                    if !allow_marked {
                        return Err("reachable marked node after recovery".into());
                    }
                } else {
                    if (*cur).vstart.peek_bits() != SEAL {
                        return Err("reachable unmarked node is not sealed".into());
                    }
                    let k = (*cur).key.load();
                    if let Some(prev) = last_key.take() {
                        if prev >= k {
                            return Err("keys not strictly increasing".into());
                        }
                    }
                    last_key = Some(k);
                    live += 1;
                }
                cur = nw.ptr();
            }
        }
        Ok(live)
    }

    /// The SOFT recovery procedure: rebuild all links from the surviving
    /// valid nodes (see the [module docs](self) for why each keep/drop
    /// decision is durably linearizable). Quiescent.
    pub fn recover_soft(&self) {
        if !D::DURABLE {
            return;
        }
        let candidates: Vec<usize> = self
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        type Live<K, V, B> = Vec<(K, NodePtr<K, V, B>)>;
        let mut live: Live<K, V, D::B> = Vec::new();
        for a in candidates {
            let n = a as NodePtr<K, V, D::B>;
            unsafe {
                // Raw peeks: any of these words may have rolled back to
                // poison (never persisted) under the simulator.
                if (*n).vstart.peek_bits() == SEAL
                    && (*n).vend.peek_bits() == SEAL
                    && (*n).key.peek_bits() != POISON
                    && (*n).value.peek_bits() != POISON
                {
                    live.push((K::from_bits((*n).key.peek_bits()), n));
                }
            }
        }
        live.sort_by_key(|&(k, _)| k);
        live.dedup_by(|a, b| a.0 == b.0);
        unsafe {
            let mut pred = self.head;
            for &(_, n) in &live {
                (*pred).next.store(MarkedPtr::new(n));
                pred = n;
            }
            (*pred).next.store(MarkedPtr::null());
        }
        D::before_return();
    }
}

impl<K, V, D> TraversalOps for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    type D = D;
    type Input = SetOp<K, V>;
    /// `Insert` → existing value if the key was present (failure);
    /// `Remove`/`Get` → the value found.
    type Output = Option<V>;
    type Entry = NodePtr<K, V, D::B>;
    type Window = SoftWindow<K, V, D::B>;

    fn find_entry(&self, _guard: &Guard, _input: Self::Input) -> Self::Entry {
        self.head
    }

    fn traverse(&self, _guard: &Guard, entry: Self::Entry, input: Self::Input) -> Self::Window {
        let key = match input {
            SetOp::Insert(k, _) | SetOp::Remove(k) | SetOp::Get(k) => k,
        };
        unsafe {
            let head = entry;
            let mut left = head;
            let mut left_succ = D::t_load_link(&(*head).next);
            let mut curr = head;
            let mut succ = left_succ;
            loop {
                if !succ.is_marked() {
                    if curr != head && Self::key_of(curr) >= key {
                        break;
                    }
                    left = curr;
                    left_succ = succ;
                }
                let nxt = succ.ptr();
                if nxt.is_null() {
                    curr = std::ptr::null_mut();
                    break;
                }
                curr = nxt;
                succ = D::t_load_link(&(*curr).next);
            }
            SoftWindow {
                left,
                left_succ,
                right: curr,
            }
        }
    }

    fn collect_persist_set(&self, _w: &Self::Window, _out: &mut PersistSet) {
        // Protocol 1 is empty under SOFT: there are no persistent links to
        // make reachable, and the policy's `make_persistent` is a no-op.
    }

    fn critical(
        &self,
        guard: &Guard,
        w: Self::Window,
        input: Self::Input,
    ) -> Critical<Self::Output> {
        match input {
            SetOp::Get(key) => {
                if w.right.is_null() || Self::key_of(w.right) != key {
                    Critical::Done(None)
                } else if D::c_load(unsafe { &(*w.right).vstart }) != SEAL {
                    // Tombstoned but not yet unlinked: logically absent.
                    Critical::Done(None)
                } else {
                    Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })))
                }
            }
            SetOp::Insert(key, value) => {
                if !self.trim(guard, &w) {
                    return Critical::Restart;
                }
                if !w.right.is_null() && Self::key_of(w.right) == key {
                    if D::c_load(unsafe { &(*w.right).vstart }) == SEAL {
                        // Duplicate of a live node: insert fails.
                        return Critical::Done(Some(D::load_fixed(unsafe { &(*w.right).value })));
                    }
                    // Tombstoned twin still linked: help mark it out of the
                    // way, then retry against the updated list.
                    let rn = unsafe { (*w.right).next.load() };
                    if !rn.is_marked() {
                        let _ = D::c_cas_link(unsafe { &(*w.right).next }, rn, rn.with_mark());
                    }
                    return Critical::Restart;
                }
                let Some(node) = Self::alloc_soft(SoftNode {
                    vstart: PCell::new(SEAL),
                    key: PCell::new(key),
                    value: PCell::new(value),
                    owner: PCell::new(self.owner_tag),
                    vend: PCell::new(SEAL),
                    next: PCell::new(Self::word_of(w.right)),
                }) else {
                    // Pool exhausted: report "no effect" through the
                    // duplicate-shaped output (see `HarrisList::critical`).
                    return Critical::Done(Some(value));
                };
                self.register(node);
                // The insert's one flush: the persistent header (not the
                // volatile link word behind it).
                D::persist_new_node(node as *const u8, PERSIST_HDR);
                let left_next = unsafe { &(*w.left).next };
                match D::c_cas_link(left_next, Self::word_of(w.right), MarkedPtr::new(node)) {
                    Ok(()) => Critical::Done(None),
                    Err(_) => {
                        self.unregister(node);
                        unsafe { Self::free_soft(node) };
                        Critical::Restart
                    }
                }
            }
            SetOp::Remove(key) => {
                if !self.trim(guard, &w) {
                    return Critical::Restart;
                }
                if w.right.is_null() || Self::key_of(w.right) != key {
                    return Critical::Done(None);
                }
                // The durable linearization point: seal → tombstone, one
                // flush, fenced by the operation's closing `before_return`.
                match D::c_cas(unsafe { &(*w.right).vstart }, SEAL, TOMB) {
                    Ok(_) => {
                        let value = D::load_fixed(unsafe { &(*w.right).value });
                        // Logical deletion done; now the volatile unlink,
                        // Harris-style: mark, then best-effort splice (a
                        // failed splice is finished by a later trim).
                        loop {
                            let rn = unsafe { (*w.right).next.load() };
                            debug_assert!(!rn.is_marked(), "tombstoned node already marked");
                            if D::c_cas_link(unsafe { &(*w.right).next }, rn, rn.with_mark())
                                .is_ok()
                            {
                                let left_next = unsafe { &(*w.left).next };
                                if D::c_cas_link(left_next, Self::word_of(w.right), rn).is_ok() {
                                    unsafe { self.retire_soft(guard, w.right) };
                                }
                                break;
                            }
                        }
                        Critical::Done(Some(value))
                    }
                    // Already tombstoned by a concurrent remove: a miss.
                    Err(_) => Critical::Done(None),
                }
            }
        }
    }
}

impl<K, V, D> DurableSet<K, V> for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.try_insert(key, value)
            .expect("persistent pool exhausted (and volatile fallback would lose data)")
    }

    fn remove(&self, key: K) -> bool {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Remove(key)).is_some()
    }

    fn get(&self, key: K) -> Option<V> {
        let guard = self.collector.pin();
        run_operation(self, &guard, SetOp::Get(key))
    }

    fn len(&self) -> usize {
        self.quiescent_len()
    }

    fn recover(&self) {
        self.recover_soft();
    }

    fn try_insert(&self, key: K, value: V) -> Result<bool, OpError> {
        let _scope = self.ctx.enter();
        let guard = self.collector.pin();
        clear_pool_full();
        let existing = run_operation(self, &guard, SetOp::Insert(key, value));
        if pool_full_seen() {
            return Err(OpError::PoolFull);
        }
        Ok(existing.is_none())
    }

    fn try_remove(&self, key: K) -> Result<bool, OpError> {
        Ok(self.remove(key))
    }
}

use nvtraverse::detect::OpError;

impl<K, V, D> PoolAttach for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn create_in_pool(pool: &Pool, name: &str) -> io::Result<Self> {
        let _scope = PoolCtx::of(pool).enter();
        let list = Self::with_collector(Collector::new());
        pool.set_root_ptr_checked(name, list.head)?;
        Ok(list)
    }

    unsafe fn attach_to_pool(pool: &Pool, name: &str) -> Option<Self> {
        let head = pool.attach_root_ptr::<SoftNode<K, V, D::B>>(name)?;
        let _scope = PoolCtx::of(pool).enter();
        let list = unsafe { Self::attach_at(head, Collector::new()) };
        // Rebuild the node inventory from the pool's allocated blocks:
        // links are volatile, so membership is proved by each candidate's
        // persistent header (sealed, and owned by this list's head).
        let node_size = std::mem::size_of::<SoftNode<K, V, D::B>>() as u64;
        for (off, cap) in pool.live_payloads() {
            if cap < node_size {
                continue;
            }
            let p = pool.at(off) as NodePtr<K, V, D::B>;
            if p == head {
                continue;
            }
            unsafe {
                if (*p).vstart.peek_bits() == SEAL
                    && (*p).vend.peek_bits() == SEAL
                    && (*p).owner.peek_bits() == head as u64
                {
                    list.register(p);
                }
            }
        }
        Some(list)
    }

    fn recover_attached(&self) {
        self.recover_soft();
    }

    fn collector_of(&self) -> &Collector {
        &self.collector
    }
}

// SAFETY: SOFT reachability is not link-based — recovery keeps exactly the
// sealed nodes owned by this list, linked or not — so the walk enumerates
// the heap's allocated blocks and marks the ones whose persistent header
// proves membership (`vstart == vend == SEAL`, `owner` = this root). A
// valid-but-unlinked node (crash between the header flush and the link CAS)
// is therefore kept, as the recovery-rebuild contract requires; in-flight
// (unsealed) and tombstoned nodes are left for the sweep. Every candidate
// pointer comes from `Marker::at`, which validates it first.
unsafe impl<K, V, D> nvtraverse::PoolTrace for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    unsafe fn trace(root: *mut u8, marker: &mut nvtraverse_pool::Marker<'_>) {
        if !marker.mark(root) {
            return;
        }
        unsafe {
            crate::soft_list::soft_mark_owned::<K, V, D::B>(marker, &[root as u64]);
        }
    }
}

/// Shared SOFT mark helper: marks every allocated block whose persistent
/// header is sealed and whose `owner` word is one of `owners` (sorted or
/// not — the list is tiny for the list tracer, binary-searched for the hash
/// tracer after sorting).
///
/// # Safety
///
/// Same contract as [`nvtraverse_pool::gc::TraceFn`]: called on a validated
/// quiescent heap; only peeks header words of blocks `Marker::at` vouches
/// for.
pub(crate) unsafe fn soft_mark_owned<K: Word, V: Word, B: Backend>(
    marker: &mut nvtraverse_pool::Marker<'_>,
    owners: &[u64],
) {
    let node_size = std::mem::size_of::<SoftNode<K, V, B>>() as u64;
    for (off, cap) in marker.allocated_payloads() {
        if cap < node_size {
            continue;
        }
        let Some(p) = marker.at(off) else { continue };
        if owners.contains(&(p as u64)) {
            continue; // a head sentinel itself
        }
        let n = p as *const SoftNode<K, V, B>;
        unsafe {
            if (*n).vstart.peek_bits() == SEAL
                && (*n).vend.peek_bits() == SEAL
                && owners.contains(&(*n).owner.peek_bits())
            {
                marker.mark(p);
            }
        }
    }
}

impl<K, V, D> Default for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, D> fmt::Debug for SoftList<K, V, D>
where
    K: Word + Ord,
    V: Word,
    D: Durability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftList")
            .field("len", &self.quiescent_len())
            .field("durable", &D::DURABLE)
            .finish()
    }
}

impl<K: Word, V: Word, D: Durability> Drop for SoftList<K, V, D> {
    fn drop(&mut self) {
        // Exclusive access: the registry is exactly the set of nodes still
        // owned by the list (live, tombstoned-but-unspliced, or crash
        // garbage); trimmed nodes were unregistered and handed to the
        // collector. No link walk needed — poisoned links can't mislead us.
        let reg = std::mem::take(&mut *self.registry.lock().unwrap_or_else(|e| e.into_inner()));
        unsafe {
            for a in reg {
                Self::free_soft(a as NodePtr<K, V, D::B>);
            }
            Self::free_soft(self.head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvtraverse::model::ModelSet;
    use nvtraverse::policy::{Soft, Volatile};
    use nvtraverse_pmem::{Clwb, Noop, Sim, SimHandle};

    fn soft_smoke<D: Durability>() {
        let l: SoftList<u64, u64, D> = SoftList::new();
        assert!(l.is_empty());
        assert!(l.insert(2, 20));
        assert!(l.insert(1, 10));
        assert!(l.insert(3, 30));
        assert!(!l.insert(2, 99), "duplicate insert must fail");
        assert_eq!(l.get(2), Some(20), "failed insert must not overwrite");
        assert_eq!(l.len(), 3);
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.get(2), None);
        assert_eq!(l.check_consistency(true).unwrap(), 2);
        assert_eq!(l.iter_snapshot(), vec![(1, 10), (3, 30)], "must stay sorted");
    }

    #[test]
    fn soft_semantics() {
        soft_smoke::<Soft<Clwb>>();
    }

    #[test]
    fn volatile_semantics() {
        soft_smoke::<Volatile>();
    }

    #[test]
    fn matches_model_on_random_sequential_workload() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let l: SoftList<u64, u64, Soft<Noop>> = SoftList::new();
        let mut model = ModelSet::new();
        for i in 0..3000u64 {
            let k = rng.random_range(0..64);
            match rng.random_range(0..3) {
                0 => assert_eq!(l.insert(k, i), model.insert(k, i), "insert({k})"),
                1 => assert_eq!(l.remove(k), model.remove(k), "remove({k})"),
                _ => assert_eq!(l.get(k), model.get(k), "get({k})"),
            }
        }
        assert_eq!(l.len(), model.len());
        let pairs: Vec<(u64, u64)> = model.iter().collect();
        assert_eq!(l.iter_snapshot(), pairs);
    }

    #[test]
    fn concurrent_disjoint_ranges_keep_all_inserts() {
        const THREADS: u64 = 4;
        const PER: u64 = 300;
        let l: SoftList<u64, u64, Soft<Clwb>> = SoftList::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let l = &l;
                s.spawn(move || {
                    let base = t * PER;
                    for k in base..base + PER {
                        assert!(l.insert(k, k));
                    }
                    for k in (base..base + PER).step_by(3) {
                        assert!(l.remove(k));
                    }
                });
            }
        });
        let expected = (THREADS * PER) as usize - (THREADS as usize * PER.div_ceil(3) as usize);
        assert_eq!(l.check_consistency(true).unwrap(), expected);
    }

    #[test]
    fn concurrent_contended_single_key_is_coherent() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let l: SoftList<u64, u64, Soft<Clwb>> = SoftList::new();
        let balance = AtomicI64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let balance = &balance;
                s.spawn(move || {
                    for i in 0..2000 {
                        if i % 2 == 0 {
                            if l.insert(42, 1) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if l.remove(42) {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let final_present = l.contains(42) as i64;
        assert_eq!(balance.load(Ordering::Relaxed), final_present);
        l.check_consistency(true).unwrap();
    }

    #[test]
    fn recovery_rebuilds_links_from_sealed_nodes() {
        let sim = SimHandle::new();
        let guard = sim.enter();
        let l: SoftList<u64, u64, Soft<Sim>> = SoftList::with_collector(Collector::leaking());
        for k in [5u64, 1, 3, 2, 4] {
            assert!(l.insert(k, k * 10));
        }
        assert!(l.remove(3));
        // Crash: all link words (never flushed) roll back to poison; the
        // validity headers survive.
        unsafe { sim.crash_and_rollback() };
        l.recover_soft();
        assert_eq!(l.check_consistency(false).unwrap(), 4);
        assert_eq!(
            l.iter_snapshot(),
            vec![(1, 10), (2, 20), (4, 40), (5, 50)],
            "recovery must rebuild the sorted chain without the tombstoned key"
        );
        assert!(l.insert(3, 33), "list must be fully usable after recovery");
        drop(l);
        drop(guard);
    }

    #[test]
    fn empty_list_operations() {
        let l: SoftList<u64, u64, Soft<Noop>> = SoftList::new();
        assert_eq!(l.get(1), None);
        assert!(!l.remove(1));
        assert_eq!(l.len(), 0);
        assert!(l.is_empty());
        assert_eq!(l.check_consistency(false).unwrap(), 0);
        l.recover();
        assert!(l.is_empty());
    }

    #[test]
    fn debug_format_mentions_len() {
        let l: SoftList<u64, u64, Volatile> = SoftList::new();
        l.insert(1, 1);
        let s = format!("{l:?}");
        assert!(s.contains("len"), "{s}");
    }

    /// The GC reachability rule, white-box: a sealed node no link reaches
    /// (an insert that crashed between its header flush and its volatile
    /// link CAS) must survive the open-time mark-sweep and be resurrected
    /// by recovery, while a torn header (far-end seal missing) is garbage.
    #[test]
    fn gc_keeps_sealed_but_unlinked_nodes_and_sweeps_torn_ones() {
        use nvtraverse::TypedRoots;
        use nvtraverse_pmem::MmapBackend;
        type L = SoftList<u64, u64, Soft<MmapBackend>>;

        let path = std::env::temp_dir().join(format!(
            "nvt-soft-orphan-{}.pool",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        {
            let pool = Pool::builder().path(&path).capacity(1 << 20).create().unwrap();
            let list = pool.create_root::<L>("s").unwrap();
            assert!(list.insert(1, 10));
            assert!(list.insert(2, 20));
            let _scope = PoolCtx::of(list.pool()).enter();
            // The durable footprint of an insert that crashed after its
            // header flush, before publication: sealed + owned, unlinked,
            // unregistered.
            L::alloc_soft(SoftNode {
                vstart: PCell::new(SEAL),
                key: PCell::new(9u64),
                value: PCell::new(90u64),
                owner: PCell::new(list.head_ptr() as u64),
                vend: PCell::new(SEAL),
                next: PCell::new(MarkedPtr::null()),
            })
            .unwrap();
            // And one that crashed *mid*-header-flush: vend never sealed.
            L::alloc_soft(SoftNode {
                vstart: PCell::new(SEAL),
                key: PCell::new(11u64),
                value: PCell::new(110u64),
                owner: PCell::new(list.head_ptr() as u64),
                vend: PCell::new(0),
                next: PCell::new(MarkedPtr::null()),
            })
            .unwrap();
            list.close().unwrap();
        }

        let pool = Pool::builder().path(&path).open().unwrap();
        let report = pool.recovery_report();
        assert!(report.gc_ran);
        assert_eq!(report.reclaimed_blocks, 1, "exactly the torn node is garbage");
        let list = pool.root::<L>("s").unwrap();
        assert_eq!(
            list.iter_snapshot(),
            vec![(1, 10), (2, 20), (9, 90)],
            "sealed-but-unlinked must be resurrected; torn must be dropped"
        );
        assert_eq!(list.check_consistency(false).unwrap(), 3);
        drop(list);
        drop(pool);
        std::fs::remove_file(&path).unwrap();
    }
}
